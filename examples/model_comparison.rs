//! Compare one detector per category head-to-head — a miniature of the
//! paper's Table II, showing the accuracy/cost trade-off (§IV-F's point:
//! complex models cost orders of magnitude more time).
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_models::{
    Detector, EscortConfig, EscortDetector, HscDetector, LanguageConfig, ScsGuardDetector,
    VisionConfig, VisionDetector,
};
use std::time::Instant;

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 400,
        seed: 21,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();
    let split = codes.len() * 4 / 5;
    let (train_x, test_x) = codes.split_at(split);
    let (train_y, test_y) = labels.split_at(split);

    let contenders: Vec<(&str, Box<dyn Detector>)> = vec![
        ("Histogram", Box::new(HscDetector::random_forest(3))),
        (
            "Vision",
            Box::new(VisionDetector::eca_efficientnet(VisionConfig {
                epochs: 10,
                lr: 6e-3,
                ..VisionConfig::default()
            })),
        ),
        (
            "Language",
            Box::new(ScsGuardDetector::new(LanguageConfig {
                epochs: 6,
                lr: 3e-3,
                ..LanguageConfig::default()
            })),
        ),
        (
            "Vulnerability",
            Box::new(EscortDetector::new(EscortConfig::default())),
        ),
    ];

    println!(
        "{:<14} {:<18} {:>6} {:>6} {:>10} {:>10}",
        "Category", "Model", "Acc%", "F1%", "Train(s)", "Infer(ms)"
    );
    println!("{}", "-".repeat(70));
    for (category, mut det) in contenders {
        let name = det.name().to_owned();
        let t0 = Instant::now();
        det.fit(train_x, train_y);
        let train_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let preds = det.predict(test_x);
        let infer_ms = t1.elapsed().as_secs_f64() * 1e3;
        let m = BinaryMetrics::from_predictions(&preds, test_y);
        println!(
            "{category:<14} {name:<18} {:>6.1} {:>6.1} {:>10.2} {:>10.1}",
            m.accuracy * 100.0,
            m.f1 * 100.0,
            train_secs,
            infer_ms
        );
    }
    println!("\nexpected shape (paper Table II + Fig. 7): the histogram model wins on");
    println!("accuracy AND cost; the language model is competitive but orders of");
    println!("magnitude slower; ESCORT's vulnerability transfer fails on phishing.");
}
