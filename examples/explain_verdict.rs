//! Interpretability scenario: explain *why* a contract was flagged, using
//! exact TreeSHAP over the Random Forest — the per-contract version of the
//! paper's Fig. 9 analysis.
//!
//! ```text
//! cargo run --release --example explain_verdict
//! ```

use phishinghook_data::{Corpus, CorpusConfig, Label};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, Matrix, RandomForest};
use phishinghook_stats::{forest_expected_value, forest_shap};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 600,
        seed: 5,
        ..Default::default()
    });
    let split = corpus.records.len() * 4 / 5;
    let codes: Vec<&[u8]> = corpus
        .records
        .iter()
        .map(|r| r.bytecode.as_slice())
        .collect();
    let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();

    // Train the histogram random forest directly (we need the tree internals
    // for SHAP, so we use the ML-layer API rather than the Detector wrapper).
    let extractor = HistogramExtractor::fit(&codes[..split]);
    let x_train = extractor.transform(&codes[..split]);
    let mut forest = RandomForest::new(ForestConfig {
        n_trees: 40,
        max_depth: 12,
        seed: 11,
        ..ForestConfig::default()
    });
    forest.fit(&x_train, &labels[..split]);
    let base = forest_expected_value(&forest);
    println!("model trained; base phishing probability = {base:.3}\n");

    // Explain the first flagged phishing contract and the first benign one.
    for want in [Label::Phishing, Label::Benign] {
        let record = corpus.records[split..]
            .iter()
            .find(|r| r.label == want)
            .expect("both classes present in the held-out set");
        let features = extractor.transform_one(&record.bytecode);
        let proba = forest.predict_proba(&Matrix::from_rows(std::slice::from_ref(&features)))[0];
        let phi = forest_shap(&forest, &features);

        println!(
            "{} [{}] — actual {}, P(phishing) = {proba:.3}",
            record.address_hex(),
            record.family,
            record.label
        );
        // Top contributions by |SHAP|, with the opcode's count for context.
        let mut ranked: Vec<(usize, f64)> = phi.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
        for (j, value) in ranked.into_iter().take(6) {
            let direction = if value > 0.0 {
                "→ phishing"
            } else {
                "→ benign "
            };
            println!(
                "   {direction}  {:<16} SHAP {value:+.3}  (used {}×)",
                extractor.columns()[j],
                features[j] as u64
            );
        }
        // Additivity: contributions + base reconstruct the prediction.
        let reconstructed = base + phi.iter().sum::<f64>();
        println!("   additivity check: base + Σφ = {reconstructed:.3} (model says {proba:.3})\n");
    }
}
