//! Wallet-integration scenario: scan contracts *by address* against a
//! simulated chain, exactly the deployment the paper's intro motivates
//! ("users interact with smart contracts in real-time, often signing
//! transactions within seconds").
//!
//! The detector is **not** retrained per run: the first invocation trains
//! and snapshots `results/scan_address_rf.snap`; every later run restores
//! the fitted model in milliseconds — the security vendor trains offline,
//! the wallet ships the snapshot.
//!
//! Pipeline per address: `eth_getCode` (BEM) → disassemble (BDM) → model
//! verdict, with a latency report per stage.
//!
//! ```text
//! cargo run --release --example scan_address
//! ```

use phishinghook_data::{Corpus, CorpusConfig, Label, SimulatedChain};
use phishinghook_evm::disasm::disassemble;
use phishinghook_models::{Detector, DetectorRegistry, Scanner};
use std::path::Path;
use std::time::Instant;

/// Loads the snapshot from a previous run, or trains once and saves it
/// (the "security vendor" side of the deployment).
fn load_or_train(snap_path: &Path) -> Scanner {
    if let Ok(engine) = Scanner::load(snap_path) {
        println!(
            "loaded {} snapshot from {} (no retraining)",
            engine.model_name(),
            snap_path.display()
        );
        return engine;
    }
    let train_corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 800,
        seed: 1,
        ..Default::default()
    });
    let (codes, labels) = train_corpus.as_dataset();
    let mut detector = DetectorRegistry::global()
        .build_str("rf:seed=99", 99)
        .expect("valid spec");
    let t = Instant::now();
    detector.fit(&codes, &labels);
    println!(
        "detector trained on {} contracts in {:.2}s",
        codes.len(),
        t.elapsed().as_secs_f64()
    );
    std::fs::create_dir_all("results").expect("create results/");
    detector.save_snapshot(snap_path).expect("save snapshot");
    println!("saved snapshot to {}", snap_path.display());
    Scanner::new(detector).expect("fitted detector")
}

fn main() {
    let t_boot = Instant::now();
    let mut engine = load_or_train(Path::new("results/scan_address_rf.snap"));
    println!(
        "detector ready in {:.1} ms",
        t_boot.elapsed().as_secs_f64() * 1e3
    );

    // A fresh chain the wallet user is about to interact with.
    let live_corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 40,
        seed: 2,
        ..Default::default()
    });
    let chain = SimulatedChain::from_records(&live_corpus.records);

    println!("\nscanning {} live addresses:", live_corpus.records.len());
    let mut correct = 0;
    let mut total_latency = 0.0;
    for record in &live_corpus.records {
        let t0 = Instant::now();
        // BEM: pull the runtime bytecode over the (simulated) RPC endpoint.
        let code = chain.eth_get_code(record.address);
        assert!(!code.is_empty(), "address must be a contract");
        // BDM: disassembly (histogram models embed this in their pipeline;
        // shown here for the latency budget).
        let n_instructions = disassemble(code).len();
        // MEM: verdict through the batched serving engine.
        let proba = engine.score_batch(&[code])[0];
        let verdict = Label::from_index(usize::from(proba >= 0.5));
        let latency = t0.elapsed().as_secs_f64();
        total_latency += latency;
        if verdict == record.label {
            correct += 1;
        }
        if verdict == Label::Phishing {
            println!(
                "  ⚠ {} ({n_instructions} instructions): flagged PHISHING (p={proba:.2}) in {:.1} ms [{}]",
                record.address_hex(),
                latency * 1e3,
                record.family
            );
        }
    }
    println!(
        "\n{}/{} verdicts correct; mean scan latency {:.1} ms per contract",
        correct,
        live_corpus.records.len(),
        total_latency / live_corpus.records.len() as f64 * 1e3
    );
    println!("(the paper's timeliness argument: warnings must land before the user signs)");
}
