//! Wallet-integration scenario: scan contracts *by address* against a
//! simulated chain, exactly the deployment the paper's intro motivates
//! ("users interact with smart contracts in real-time, often signing
//! transactions within seconds").
//!
//! Pipeline per address: `eth_getCode` (BEM) → disassemble (BDM) → model
//! verdict, with a latency report per stage.
//!
//! ```text
//! cargo run --release --example scan_address
//! ```

use phishinghook_data::{Corpus, CorpusConfig, Label, SimulatedChain};
use phishinghook_evm::disasm::disassemble;
use phishinghook_models::{Detector, HscDetector};
use std::time::Instant;

fn main() {
    // Train a detector on a labeled corpus (the "security vendor" side).
    let train_corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 800,
        seed: 1,
        ..Default::default()
    });
    let (codes, labels) = train_corpus.as_dataset();
    let mut detector = HscDetector::random_forest(99);
    let t = Instant::now();
    detector.fit(&codes, &labels);
    println!(
        "detector trained on {} contracts in {:.2}s",
        codes.len(),
        t.elapsed().as_secs_f64()
    );

    // A fresh chain the wallet user is about to interact with.
    let live_corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 40,
        seed: 2,
        ..Default::default()
    });
    let chain = SimulatedChain::from_records(&live_corpus.records);

    println!("\nscanning {} live addresses:", live_corpus.records.len());
    let mut correct = 0;
    let mut total_latency = 0.0;
    for record in &live_corpus.records {
        let t0 = Instant::now();
        // BEM: pull the runtime bytecode over the (simulated) RPC endpoint.
        let code = chain.eth_get_code(record.address);
        assert!(!code.is_empty(), "address must be a contract");
        // BDM: disassembly (histogram models embed this in their pipeline;
        // shown here for the latency budget).
        let n_instructions = disassemble(code).len();
        // MEM: verdict.
        let verdict = Label::from_index(detector.predict(&[code])[0]);
        let latency = t0.elapsed().as_secs_f64();
        total_latency += latency;
        if verdict == record.label {
            correct += 1;
        }
        if verdict == Label::Phishing {
            println!(
                "  ⚠ {} ({n_instructions} instructions): flagged PHISHING in {:.1} ms [{}]",
                record.address_hex(),
                latency * 1e3,
                record.family
            );
        }
    }
    println!(
        "\n{}/{} verdicts correct; mean scan latency {:.1} ms per contract",
        correct,
        live_corpus.records.len(),
        total_latency / live_corpus.records.len() as f64 * 1e3
    );
    println!("(the paper's timeliness argument: warnings must land before the user signs)");
}
