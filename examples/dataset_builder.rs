//! Dataset-construction scenario: the paper's data-gathering pipeline end
//! to end — simulated BigQuery address list → Etherscan-style "Phish/Hack"
//! oracle → `eth_getCode` extraction → deduplication → CSV release.
//!
//! ```text
//! cargo run --release --example dataset_builder
//! ```

use phishinghook_data::csv::to_csv;
use phishinghook_data::{
    extract_labeled_bytecodes, Corpus, CorpusConfig, Label, LabelOracle, SimulatedChain,
};
use phishinghook_evm::keccak::keccak256;
use std::collections::HashSet;

fn main() {
    // The raw deployment stream (duplicates included), as BigQuery sees it.
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 500,
        seed: 9,
        ..Default::default()
    });
    let mut all_records = corpus.raw_phishing.clone();
    all_records.extend(corpus.benign().cloned());
    println!(
        "➊ address list from the (simulated) public dataset: {} contracts",
        all_records.len()
    );

    // Etherscan-style labeling with a small miss rate — community labels lag.
    let chain = SimulatedChain::from_records(&all_records);
    let oracle = LabelOracle::from_records(&all_records).with_noise(0.05, 0.0, 0xE7);
    println!(
        "➋ labeling oracle ready ({} known addresses, 5% phishing miss rate)",
        oracle.len()
    );

    // BEM: eth_getCode for every address.
    let addresses: Vec<[u8; 20]> = all_records.iter().map(|r| r.address).collect();
    let labeled = extract_labeled_bytecodes(&chain, &oracle, &addresses);
    let flagged = labeled
        .iter()
        .filter(|(_, l)| *l == Label::Phishing)
        .count();
    println!(
        "➌ bytecode extraction: {} bytecodes, {flagged} flagged Phish/Hack",
        labeled.len()
    );

    // Deduplicate bit-identical bytecodes (the paper: 17,455 → 3,458).
    let mut seen = HashSet::new();
    let mut unique_phishing = 0usize;
    for (code, label) in &labeled {
        if *label == Label::Phishing && seen.insert(keccak256(code)) {
            unique_phishing += 1;
        }
    }
    println!(
        "➍ deduplication: {flagged} obtained phishing → {unique_phishing} unique ({}x clone factor)",
        flagged / unique_phishing.max(1)
    );

    // Release as CSV (the interchange format of this reproduction).
    let csv = to_csv(&corpus.records);
    let path = "results/dataset_release.csv";
    if std::fs::create_dir_all("results").is_ok() && std::fs::write(path, &csv).is_ok() {
        println!(
            "➎ released deduplicated, balanced dataset to {path} ({} rows)",
            corpus.records.len()
        );
    }

    // Family breakdown, so downstream users know what they're getting.
    let mut families: Vec<(&str, usize)> = Vec::new();
    for r in &corpus.records {
        match families.iter_mut().find(|(f, _)| *f == r.family) {
            Some((_, n)) => *n += 1,
            None => families.push((r.family, 1)),
        }
    }
    families.sort_by_key(|f| std::cmp::Reverse(f.1));
    println!("\nfamily breakdown:");
    for (family, n) in families {
        println!("  {family:<18} {n}");
    }
}
