//! Quickstart: generate a corpus, train the paper's best model (Random
//! Forest on opcode histograms) **once**, snapshot it, and classify fresh
//! contracts through the restored model.
//!
//! The first run trains and saves `results/quickstart_rf.snap`; later runs
//! load the snapshot and skip training entirely (delete the file to force a
//! retrain). This is the train-once/score-forever deployment shape the
//! `phishinghook train`/`serve` subcommands productionize.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_data::{Corpus, CorpusConfig, Label};
use phishinghook_evm::disasm::disassemble;
use phishinghook_models::{AnyDetector, Detector, DetectorRegistry, Scanner};
use std::path::Path;

fn main() {
    // 1. Build a synthetic contract corpus (the offline stand-in for the
    //    paper's 7,000 Etherscan-labeled contracts).
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 600,
        seed: 42,
        ..Default::default()
    });
    println!(
        "corpus: {} contracts ({} phishing / {} benign, {} raw phishing deployments)",
        corpus.records.len(),
        corpus.phishing().count(),
        corpus.benign().count(),
        corpus.raw_phishing.len(),
    );

    // 2. Peek at one contract through the BDM (bytecode disassembler).
    let sample = &corpus.records[0];
    let instructions = disassemble(&sample.bytecode);
    println!(
        "\nfirst contract: {} — {} ({} bytes, {} instructions)",
        sample.address_hex(),
        sample.family,
        sample.bytecode.len(),
        instructions.len()
    );
    for ins in instructions.iter().take(5) {
        println!("  {ins}");
    }
    println!("  …");

    // 3. Load the detector from a previous run's snapshot, or train the
    //    paper's best model once on an 80/20 split and save it. Any decode
    //    problem (missing file, corruption, version skew) surfaces as a
    //    typed error and falls back to retraining.
    let snap_path = Path::new("results/quickstart_rf.snap");
    let split = corpus.records.len() * 4 / 5;
    let codes: Vec<&[u8]> = corpus
        .records
        .iter()
        .map(|r| r.bytecode.as_slice())
        .collect();
    let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
    let detector = match AnyDetector::load_snapshot(snap_path) {
        Ok(det) => {
            println!(
                "\nloaded {} snapshot from {}",
                det.name(),
                snap_path.display()
            );
            det
        }
        Err(why) => {
            println!("\nno usable snapshot ({why}); training once");
            // Spec-based construction: the same string works for any
            // family, including ensembles ("ensemble:rf+lgbm:vote=soft").
            let mut det = DetectorRegistry::global()
                .build_str("rf:seed=7", 7)
                .expect("valid spec");
            let t0 = std::time::Instant::now();
            det.fit(&codes[..split], &labels[..split]);
            println!("trained in {:.2}s", t0.elapsed().as_secs_f64());
            std::fs::create_dir_all("results").expect("create results/");
            det.save_snapshot(snap_path).expect("save snapshot");
            println!(
                "saved snapshot to {} ({} bytes)",
                snap_path.display(),
                std::fs::metadata(snap_path).map(|m| m.len()).unwrap_or(0)
            );
            det
        }
    };

    // 4. Evaluate on the held-out contracts through the batched Scanner
    //    facade (the same hot path `phishinghook serve` runs).
    let mut engine = Scanner::new(detector).expect("fitted detector");
    let predictions = engine.classify_batch(&codes[split..]);
    let metrics = BinaryMetrics::from_predictions(&predictions, &labels[split..]);
    println!(
        "\n{} on held-out contracts: accuracy {:.1}%, F1 {:.1}%, precision {:.1}%, recall {:.1}%",
        engine.model_name(),
        metrics.accuracy * 100.0,
        metrics.f1 * 100.0,
        metrics.precision * 100.0,
        metrics.recall * 100.0
    );

    // 5. Flag individual contracts, the way a wallet integration would.
    println!("\nsample verdicts:");
    for (record, &pred) in corpus.records[split..].iter().zip(&predictions).take(6) {
        let verdict = Label::from_index(pred);
        let marker = if verdict == record.label {
            "✓"
        } else {
            "✗"
        };
        println!(
            "  {marker} {} [{}] → predicted {verdict}, actually {}",
            record.address_hex(),
            record.family,
            record.label
        );
    }
    println!("\n(rerun this example: it now loads the snapshot instead of retraining)");
}
