//! Quickstart: generate a corpus, train the paper's best model (Random
//! Forest on opcode histograms), and classify fresh contracts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_data::{Corpus, CorpusConfig, Label};
use phishinghook_evm::disasm::disassemble;
use phishinghook_models::{Detector, HscDetector};

fn main() {
    // 1. Build a synthetic contract corpus (the offline stand-in for the
    //    paper's 7,000 Etherscan-labeled contracts).
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 600,
        seed: 42,
        ..Default::default()
    });
    println!(
        "corpus: {} contracts ({} phishing / {} benign, {} raw phishing deployments)",
        corpus.records.len(),
        corpus.phishing().count(),
        corpus.benign().count(),
        corpus.raw_phishing.len(),
    );

    // 2. Peek at one contract through the BDM (bytecode disassembler).
    let sample = &corpus.records[0];
    let instructions = disassemble(&sample.bytecode);
    println!(
        "\nfirst contract: {} — {} ({} bytes, {} instructions)",
        sample.address_hex(),
        sample.family,
        sample.bytecode.len(),
        instructions.len()
    );
    for ins in instructions.iter().take(5) {
        println!("  {ins}");
    }
    println!("  …");

    // 3. Train the paper's best model on an 80/20 split.
    let split = corpus.records.len() * 4 / 5;
    let codes: Vec<&[u8]> = corpus
        .records
        .iter()
        .map(|r| r.bytecode.as_slice())
        .collect();
    let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
    let mut detector = HscDetector::random_forest(7);
    detector.fit(&codes[..split], &labels[..split]);

    // 4. Evaluate on the held-out contracts.
    let predictions = detector.predict(&codes[split..]);
    let metrics = BinaryMetrics::from_predictions(&predictions, &labels[split..]);
    println!(
        "\nRandom Forest on held-out contracts: accuracy {:.1}%, F1 {:.1}%, precision {:.1}%, recall {:.1}%",
        metrics.accuracy * 100.0,
        metrics.f1 * 100.0,
        metrics.precision * 100.0,
        metrics.recall * 100.0
    );

    // 5. Flag individual contracts, the way a wallet integration would.
    println!("\nsample verdicts:");
    for (record, &pred) in corpus.records[split..].iter().zip(&predictions).take(6) {
        let verdict = Label::from_index(pred);
        let marker = if verdict == record.label {
            "✓"
        } else {
            "✗"
        };
        println!(
            "  {marker} {} [{}] → predicted {verdict}, actually {}",
            record.address_hex(),
            record.family,
            record.label
        );
    }
}
