//! PhishingHook suite: umbrella crate re-exporting the workspace libraries.
//!
//! This crate exists so the repository's `examples/` and `tests/` can exercise
//! the whole stack through a single dependency. Use the individual crates
//! (`phishinghook-core`, `phishinghook-evm`, …) directly in downstream code.

pub use phishinghook_core as core;
pub use phishinghook_data as data;
pub use phishinghook_evm as evm;
pub use phishinghook_features as features;
pub use phishinghook_ml as ml;
pub use phishinghook_models as models;
pub use phishinghook_persist as persist;
pub use phishinghook_serve as serve;
pub use phishinghook_stats as stats;
