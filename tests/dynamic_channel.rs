//! The dynamic channel earns its keep: on the honeypot scenario — rigged
//! contracts whose benign twins share an *identical* opcode histogram —
//! a static-only detector is pinned at chance by construction, while the
//! same model family trained on `features=hist+trace` separates the pairs
//! through the dispatcher explorer's execution traces.
//!
//! This is the end-to-end claim the CI `dynamic-smoke` job guards: the
//! selector-driven EVM execution layer must buy real detection power, not
//! just extra columns.

use phishinghook::data::{Corpus, CorpusConfig, Scenario};
use phishinghook::models::{Detector, DetectorRegistry, FeatureSet};
use std::sync::OnceLock;

struct Fixture {
    train_x: Vec<Vec<u8>>,
    train_y: Vec<usize>,
    test_x: Vec<Vec<u8>>,
    test_y: Vec<usize>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 160,
            seed: 41,
            scenario: Scenario::Honeypot,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        let split = 100;
        Fixture {
            train_x: codes[..split].to_vec(),
            train_y: labels[..split].to_vec(),
            test_x: codes[split..].to_vec(),
            test_y: labels[split..].to_vec(),
        }
    })
}

/// Trains `spec` on the fixture and returns held-out accuracy.
fn held_out_accuracy(spec: &str) -> f64 {
    let fx = fixture();
    let train: Vec<&[u8]> = fx.train_x.iter().map(Vec::as_slice).collect();
    let test: Vec<&[u8]> = fx.test_x.iter().map(Vec::as_slice).collect();
    let mut det = DetectorRegistry::global()
        .build_str(spec, 7)
        .unwrap_or_else(|e| panic!("`{spec}` must parse: {e}"));
    det.fit(&train, &fx.train_y);
    let predictions = det.predict(&test);
    let correct = predictions
        .iter()
        .zip(&fx.test_y)
        .filter(|(p, y)| p == y)
        .count();
    correct as f64 / test.len() as f64
}

#[test]
fn static_histograms_sit_near_chance_on_honeypots() {
    // Rigged contract and benign twin differ only in PUSH immediates, so
    // the opcode histogram carries no label signal. Anything the static
    // model scores above chance here is train/test family leakage noise;
    // 0.65 gives the forest generous slack while still pinning it well
    // below a usable detector.
    let acc = held_out_accuracy("rf:seed=7");
    assert!(
        acc <= 0.65,
        "static-only accuracy {acc:.3} on honeypots — the scenario no longer \
         blinds opcode histograms"
    );
}

#[test]
fn trace_features_separate_honeypots_that_statics_cannot() {
    let static_acc = held_out_accuracy("rf:seed=7");
    let dynamic_acc = held_out_accuracy("rf:features=hist+trace:seed=7");
    assert!(
        dynamic_acc >= 0.85,
        "trace-augmented accuracy {dynamic_acc:.3} below floor — the \
         dispatcher explorer is not separating rigged contracts from twins"
    );
    assert!(
        dynamic_acc > static_acc + 0.15,
        "trace features must clearly beat static-only on honeypots \
         (static {static_acc:.3}, hist+trace {dynamic_acc:.3})"
    );
}

#[test]
fn the_pure_trace_channel_also_beats_static() {
    // Even without the histogram columns, the 20 trace features alone
    // carry the honeypot signal — the win is the dynamic channel, not an
    // interaction artifact of the stacked matrix.
    let static_acc = held_out_accuracy("rf:seed=7");
    let trace_acc = held_out_accuracy("rf:features=trace:seed=7");
    assert!(
        trace_acc > static_acc,
        "trace-only accuracy {trace_acc:.3} did not beat static {static_acc:.3}"
    );
}

#[test]
fn the_feature_axis_reports_what_it_trained_on() {
    let registry = DetectorRegistry::global();
    let det = registry
        .build_str("rf:features=hist+trace", 7)
        .expect("spec parses");
    assert_eq!(det.features(), FeatureSet::HistogramTrace);
    let det = registry.build_str("rf", 7).expect("spec parses");
    assert_eq!(det.features(), FeatureSet::Histogram);
}
