#![allow(deprecated)] // legacy `all_hscs` stays covered until removal

//! Cross-crate integration tests: the full PhishingHook pipeline from
//! simulated chain to model verdicts and post hoc statistics.

use phishinghook_core::cv::stratified_kfold;
use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_core::pipeline::{evaluate, summarize};
use phishinghook_data::{
    extract_labeled_bytecodes, Corpus, CorpusConfig, Label, LabelOracle, SimulatedChain,
};
use phishinghook_models::{all_hscs, Detector, HscDetector};

fn corpus(n: usize, seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        n_contracts: n,
        seed,
        ..Default::default()
    })
}

#[test]
fn chain_to_verdict_pipeline() {
    // Fig. 1 end to end: chain → oracle → BEM → detector → verdicts.
    let c = corpus(240, 1);
    let chain = SimulatedChain::from_records(&c.records);
    let oracle = LabelOracle::from_records(&c.records);
    let addresses: Vec<[u8; 20]> = c.records.iter().map(|r| r.address).collect();
    let labeled = extract_labeled_bytecodes(&chain, &oracle, &addresses);
    assert_eq!(labeled.len(), c.records.len());

    let split = labeled.len() * 3 / 4;
    let codes: Vec<&[u8]> = labeled.iter().map(|(c, _)| c.as_slice()).collect();
    let labels: Vec<usize> = labeled.iter().map(|(_, l)| l.as_index()).collect();
    let mut det = HscDetector::random_forest(5);
    det.fit(&codes[..split], &labels[..split]);
    let preds = det.predict(&codes[split..]);
    let m = BinaryMetrics::from_predictions(&preds, &labels[split..]);
    assert!(m.accuracy > 0.75, "end-to-end accuracy {}", m.accuracy);
}

#[test]
fn labels_come_from_oracle_not_generator() {
    // With a noisy oracle, the extracted labels must differ from ground
    // truth at roughly the configured miss rate.
    let c = corpus(300, 2);
    let chain = SimulatedChain::from_records(&c.records);
    let oracle = LabelOracle::from_records(&c.records).with_noise(0.2, 0.0, 7);
    let addresses: Vec<[u8; 20]> = c.records.iter().map(|r| r.address).collect();
    let labeled = extract_labeled_bytecodes(&chain, &oracle, &addresses);
    let flips = c
        .records
        .iter()
        .zip(&labeled)
        .filter(|(r, (_, l))| r.label == Label::Phishing && *l == Label::Benign)
        .count();
    let phishing = c.phishing().count();
    let rate = flips as f64 / phishing as f64;
    assert!((0.08..=0.35).contains(&rate), "miss rate {rate}");
}

#[test]
fn full_hsc_cross_validation_beats_chance_everywhere() {
    let c = corpus(300, 3);
    let (codes, labels) = c.as_dataset();
    let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
        all_hscs(seed)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn Detector>)
            .collect()
    };
    let trials = evaluate(&codes, &labels, &factory, 3, 1, 11);
    assert_eq!(trials.len(), 7 * 3);
    let summaries = summarize(&trials);
    for s in &summaries {
        assert!(
            s.metrics.accuracy > 0.6,
            "{} at {}",
            s.model,
            s.metrics.accuracy
        );
        assert!(s.metrics.f1 > 0.5, "{} f1 {}", s.model, s.metrics.f1);
    }
    // Tree models should lead the pack (the paper's headline result).
    let acc = |name: &str| {
        summaries
            .iter()
            .find(|s| s.model == name)
            .expect("model present")
            .metrics
            .accuracy
    };
    assert!(acc("Random Forest") > acc("Logistic Regression"));
}

#[test]
fn no_test_fold_leakage_in_feature_extraction() {
    // Vocabulary-dependent models must behave identically whether or not
    // test contracts were visible at corpus-generation time: train on fold
    // A, predict unseen codes, and assert the histogram width matches the
    // training vocabulary.
    let c = corpus(160, 4);
    let (codes, labels) = c.as_dataset();
    let folds = stratified_kfold(&labels, 4, 9);
    let fold = &folds[0];
    let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
    let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();

    let extractor = phishinghook_features::HistogramExtractor::fit(&train_x);
    let width = extractor.n_features();
    // Transforming *any* bytecode — even ones with unseen opcodes — must
    // keep the training-set width.
    let weird_code = vec![0x0C, 0x0D, 0x0E, 0xEF];
    assert_eq!(extractor.transform_one(&weird_code).len(), width);

    let mut det = HscDetector::random_forest(1);
    det.fit(&train_x, &train_y);
    let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
    let preds = det.predict(&test_x);
    assert_eq!(preds.len(), test_x.len());
}

#[test]
fn corpus_regeneration_is_bit_identical() {
    let a = corpus(150, 99);
    let b = corpus(150, 99);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.bytecode, rb.bytecode);
        assert_eq!(ra.address, rb.address);
    }
}
