#![allow(deprecated)] // legacy `all_hscs` stays covered until removal

//! Smoke tests for every experiment driver: each paper table/figure
//! regenerates at reduced scale with the expected output shape.

use phishinghook_core::experiments::{
    dataset_stats, posthoc, scalability, shap_analysis, time_resistance, ExperimentScale,
};
use phishinghook_core::pipeline::evaluate;
use phishinghook_models::{all_hscs, Detector};

fn tiny() -> ExperimentScale {
    ExperimentScale {
        n_contracts: 240,
        ..ExperimentScale::smoke()
    }
}

#[test]
fn fig2_and_fig3_shapes() {
    let stats = dataset_stats::run(&tiny());
    assert_eq!(stats.monthly.len(), 13);
    assert_eq!(stats.usage.len(), 20);
    assert!(stats.obtained_phishing > stats.unique_phishing);
    // Fig. 2's shape: mid-2024 months dominate early ones.
    let early: usize = stats.monthly[..3].iter().map(|r| r.obtained).sum();
    let mid: usize = stats.monthly[5..9].iter().map(|r| r.obtained).sum();
    assert!(mid > early, "mid={mid} early={early}");
}

#[test]
fn table3_and_fig4_shapes() {
    // HSC-only trials keep this fast while exercising the full PAM path.
    let corpus = phishinghook_data::Corpus::generate(&phishinghook_data::CorpusConfig {
        n_contracts: 240,
        seed: 5,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();
    let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
        all_hscs(seed)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn Detector>)
            .collect()
    };
    let trials = evaluate(&codes, &labels, &factory, 4, 2, 3);
    let analysis = posthoc::run(&trials);

    assert_eq!(analysis.kruskal.len(), 4);
    for row in &analysis.kruskal {
        assert!(row.p_adjusted >= row.p);
        assert!(row.h >= 0.0);
    }
    // 7 models → 21 pairs × 4 metrics.
    assert_eq!(analysis.pairwise.len(), 84);
    assert_eq!(analysis.normality_tests, 28);
    for (_, rates) in &analysis.rates {
        assert!((0.0..=1.0).contains(&rates.overall));
    }
}

#[test]
fn fig5_to_fig7_shapes() {
    let result = scalability::run(&tiny());
    assert_eq!(result.measurements.len(), 9);
    assert_eq!(result.cdd.len(), 4);
    // All measurements carry positive timing.
    for m in &result.measurements {
        assert!(m.train_secs > 0.0);
        assert!(m.infer_secs >= 0.0);
    }
    // The CDD's pairwise p-values are valid probabilities.
    for (_, cdd) in &result.cdd {
        for (_, p) in &cdd.pairwise_p {
            assert!((0.0..=1.0).contains(p));
        }
    }
}

#[test]
fn fig8_shape() {
    let scale = ExperimentScale {
        n_contracts: 520,
        ..ExperimentScale::smoke()
    };
    let result = time_resistance::run(&scale);
    assert_eq!(result.curves.len(), 3);
    let names: Vec<&str> = result.curves.iter().map(|c| c.model).collect();
    assert_eq!(names, vec!["Random Forest", "ECA+EfficientNet", "SCSGuard"]);
    for curve in &result.curves {
        assert!(!curve.months.is_empty());
        assert!((0.0..=1.0).contains(&curve.aut_f1));
    }
}

#[test]
fn fig9_shape() {
    let analysis = shap_analysis::run(&tiny());
    assert!(analysis.top.len() <= 20 && !analysis.top.is_empty());
    assert!(analysis.max_additivity_error < 1e-9);
    // Influence ranking is descending.
    for w in analysis.top.windows(2) {
        assert!(w[0].mean_abs_shap >= w[1].mean_abs_shap);
    }
}
