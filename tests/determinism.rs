//! Reproducibility guarantees: every pipeline stage is deterministic under
//! a fixed seed — the property the paper's "full set of instructions to
//! reproduce our experiments" implicitly promises.

use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_models::{
    all_detectors, Detector, HscDetector, LanguageConfig, Preset, ScsGuardDetector,
};

fn dataset(seed: u64) -> (Vec<Vec<u8>>, Vec<usize>) {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 120,
        seed,
        ..Default::default()
    });
    (
        corpus.records.iter().map(|r| r.bytecode.clone()).collect(),
        corpus.records.iter().map(|r| r.label.as_index()).collect(),
    )
}

#[test]
fn corpus_seeds_are_independent_of_call_order() {
    let a = Corpus::generate(&CorpusConfig {
        n_contracts: 60,
        seed: 5,
        ..Default::default()
    });
    let _noise = Corpus::generate(&CorpusConfig {
        n_contracts: 30,
        seed: 6,
        ..Default::default()
    });
    let b = Corpus::generate(&CorpusConfig {
        n_contracts: 60,
        seed: 5,
        ..Default::default()
    });
    assert_eq!(a.records, b.records);
}

#[test]
fn hsc_training_is_deterministic() {
    let (codes, labels) = dataset(7);
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let mut first = HscDetector::random_forest(42);
    let mut second = HscDetector::random_forest(42);
    first.fit(&refs, &labels);
    second.fit(&refs, &labels);
    assert_eq!(first.predict(&refs), second.predict(&refs));
}

#[test]
fn deep_model_training_is_deterministic() {
    let (codes, labels) = dataset(8);
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let config = LanguageConfig {
        epochs: 1,
        max_len: 32,
        ..LanguageConfig::default()
    };
    let mut first = ScsGuardDetector::new(config.clone());
    let mut second = ScsGuardDetector::new(config);
    first.fit(&refs, &labels);
    second.fit(&refs, &labels);
    assert_eq!(first.predict(&refs), second.predict(&refs));
}

#[test]
fn detector_registry_is_stable() {
    let first = all_detectors(Preset::Fast, 1);
    let second = all_detectors(Preset::Fast, 1);
    let names: Vec<&str> = first.iter().map(|d| d.name()).collect();
    let again: Vec<&str> = second.iter().map(|d| d.name()).collect();
    assert_eq!(names, again);
    assert_eq!(names.len(), 16);
}
