//! The train-once/score-forever contract: a snapshotted-then-restored
//! detector must be indistinguishable — *bit-identical*, not just close —
//! from the in-memory one it was saved from, for every HSC family member.
//!
//! Each detector is trained exactly once (shared through `OnceLock`, per
//! this repo's heavy-test convention) and paired with its snapshot
//! round-trip; the tests then compare the pair on the full held-out corpus
//! and on property-generated adversarial bytecodes, and check that every
//! way a snapshot can go bad surfaces as the right typed error.

#![allow(deprecated)] // the legacy ScoringEngine contract stays covered until removal

use phishinghook::data::{Corpus, CorpusConfig};
use phishinghook::models::hsc::SNAPSHOT_KIND;
use phishinghook::models::{all_hscs, Detector, DetectorRegistry, EnsembleDetector, ScoringEngine};
use phishinghook::persist::{open_envelope, PersistError};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    /// Held-out bytecodes none of the detectors saw at fit time.
    probes: Vec<Vec<u8>>,
    /// `(name, in-memory engine, snapshot-restored engine)` per HSC.
    pairs: Vec<(String, ScoringEngine, ScoringEngine)>,
    /// One raw snapshot (the Random Forest's) for envelope-level tests.
    snapshot: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 100,
            seed: 23,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, _) = refs.split_at(60);
        let (train_y, _) = labels.split_at(60);

        let mut snapshot = Vec::new();
        let pairs = all_hscs(7)
            .into_iter()
            .map(|mut det| {
                let name = det.name().to_owned();
                det.fit(train_x, train_y);
                let bytes = det.to_snapshot_bytes();
                // Determinism: saving the same fitted model twice must yield
                // byte-identical snapshots (HashMap-backed artifacts sort).
                assert_eq!(bytes, det.to_snapshot_bytes(), "{name}");
                if name == "Random Forest" {
                    snapshot = bytes.clone();
                }
                let restored = ScoringEngine::from_snapshot_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{name} snapshot failed to restore: {e}"));
                let original = ScoringEngine::new(det).expect("fitted");
                (name, original, restored)
            })
            .collect();
        Fixture {
            probes: codes[60..].to_vec(),
            pairs,
            snapshot,
        }
    })
}

/// Bit-exact comparison helper: `f64` equality would treat `-0.0 == 0.0`
/// and NaN unequal to itself; the contract here is stronger — identical
/// bit patterns.
fn bits(probs: &[f64]) -> Vec<u64> {
    probs.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn every_hsc_round_trips_bit_identically_on_the_held_out_corpus() {
    let fx = fixture();
    let probes: Vec<&[u8]> = fx.probes.iter().map(Vec::as_slice).collect();
    for (name, original, restored) in &fx.pairs {
        let a = original.worker().score_batch(&probes);
        let b = restored.worker().score_batch(&probes);
        assert_eq!(bits(&a), bits(&b), "{name}: restored scores diverge");
        // And through the hard-verdict path.
        assert_eq!(
            original.worker().classify_batch(&probes),
            restored.worker().classify_batch(&probes),
            "{name}: restored verdicts diverge"
        );
    }
}

#[test]
fn restored_metadata_matches() {
    let fx = fixture();
    for (name, original, restored) in &fx.pairs {
        assert_eq!(restored.model_name(), *name);
        assert_eq!(restored.n_features(), original.n_features(), "{name}");
        assert_eq!(
            restored.detector().extractor().unwrap().columns(),
            original.detector().extractor().unwrap().columns(),
            "{name}"
        );
    }
}

proptest! {
    #[test]
    fn round_trip_holds_on_arbitrary_bytecodes(
        code in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Adversarial inputs — out-of-vocabulary opcodes, truncated PUSH
        // operands, empty code — must score identically through the
        // restored detector, for every HSC.
        let fx = fixture();
        let batch: [&[u8]; 1] = [code.as_slice()];
        for (name, original, restored) in &fx.pairs {
            let a = original.worker().score_batch(&batch);
            let b = restored.worker().score_batch(&batch);
            prop_assert_eq!(bits(&a), bits(&b), "{}", name);
        }
    }
}

// --- Typed rejection of bad snapshots --------------------------------------

#[test]
fn corrupted_snapshot_is_rejected_with_checksum_error() {
    let fx = fixture();
    // Flip one bit in the middle of the payload.
    let mut corrupt = fx.snapshot.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    match ScoringEngine::from_snapshot_bytes(&corrupt).unwrap_err() {
        PersistError::ChecksumMismatch { stored, computed } => assert_ne!(stored, computed),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncated_snapshot_is_rejected() {
    let fx = fixture();
    for keep in [0, 7, 11, fx.snapshot.len() / 2, fx.snapshot.len() - 1] {
        let err = ScoringEngine::from_snapshot_bytes(&fx.snapshot[..keep]).unwrap_err();
        assert!(
            matches!(err, PersistError::Truncated { .. }),
            "keeping {keep} bytes: expected Truncated, got {err:?}"
        );
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let fx = fixture();
    let mut future = fx.snapshot.clone();
    // The format version is the u16 at offset 8 (after the 8-byte magic).
    future[8] = 0xFF;
    future[9] = 0x7F;
    match ScoringEngine::from_snapshot_bytes(&future).unwrap_err() {
        PersistError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, 0x7FFF);
            assert_eq!(supported, phishinghook::persist::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn non_snapshot_bytes_are_rejected_as_bad_magic() {
    assert!(matches!(
        ScoringEngine::from_snapshot_bytes(b"address,month,label,family,bytecode"),
        Err(PersistError::BadMagic)
    ));
    assert!(matches!(
        ScoringEngine::from_snapshot_bytes(&[]),
        Err(PersistError::Truncated { .. })
    ));
}

// --- Ensemble snapshots ----------------------------------------------------

/// `(probes, in-memory scanner, snapshot-restored scanner, raw snapshot)`
/// for a 3-member soft-vote ensemble, trained once.
struct EnsembleFixture {
    probes: Vec<Vec<u8>>,
    original: phishinghook::models::Scanner,
    restored: phishinghook::models::Scanner,
    snapshot: Vec<u8>,
}

fn ensemble_fixture() -> &'static EnsembleFixture {
    static FIXTURE: OnceLock<EnsembleFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 100,
            seed: 29,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = DetectorRegistry::global()
            .build_str("ensemble:rf+lgbm+catboost:vote=soft", 7)
            .expect("valid spec");
        det.fit(&refs[..60], &labels[..60]);
        let bytes = det.to_snapshot_bytes();
        assert_eq!(bytes, det.to_snapshot_bytes(), "deterministic snapshot");
        let restored =
            phishinghook::models::Scanner::from_snapshot_bytes(&bytes).expect("restores");
        let original = phishinghook::models::Scanner::new(det).expect("fitted");
        EnsembleFixture {
            probes: codes[60..].to_vec(),
            original,
            restored,
            snapshot: bytes,
        }
    })
}

#[test]
fn ensemble_round_trips_bit_identically_on_the_held_out_corpus() {
    let fx = ensemble_fixture();
    let refs: Vec<&[u8]> = fx.probes.iter().map(Vec::as_slice).collect();
    let a = fx.original.worker().score_batch(&refs);
    let b = fx.restored.worker().score_batch(&refs);
    assert_eq!(bits(&a), bits(&b), "restored ensemble scores diverge");
    assert_eq!(fx.restored.model_name(), fx.original.model_name());
    assert_eq!(fx.restored.n_models(), 3);
    assert_eq!(fx.restored.model_version(), "hsc-ensemble/v1");
}

proptest! {
    #[test]
    fn ensemble_round_trip_holds_on_arbitrary_bytecodes(
        code in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let fx = ensemble_fixture();
        let batch: [&[u8]; 1] = [code.as_slice()];
        let a = fx.original.worker().score_batch(&batch);
        let b = fx.restored.worker().score_batch(&batch);
        prop_assert_eq!(bits(&a), bits(&b));
    }
}

#[test]
fn ensemble_per_model_probabilities_survive_the_round_trip() {
    let fx = ensemble_fixture();
    let requests: Vec<phishinghook::models::ScanRequest> = fx.probes[..8]
        .iter()
        .enumerate()
        .map(|(i, code)| {
            phishinghook::models::ScanRequest::bytecode(format!("probe-{i}"), code.clone())
        })
        .collect();
    let a = fx.original.worker().scan_batch(&requests, None);
    let b = fx.restored.worker().scan_batch(&requests, None);
    for (ra, rb) in a.iter().zip(&b) {
        let (ra, rb) = (
            ra.as_ref().expect("bytecode targets score"),
            rb.as_ref().expect("bytecode targets score"),
        );
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.proba.to_bits(), rb.proba.to_bits());
        assert_eq!(ra.per_model.len(), 3);
        for ((na, pa), (nb, pb)) in ra.per_model.iter().zip(&rb.per_model) {
            assert_eq!(na, nb);
            assert_eq!(pa.to_bits(), pb.to_bits(), "{na}");
        }
    }
}

#[test]
fn ensemble_snapshot_corruption_is_rejected_with_typed_errors() {
    let snapshot = &ensemble_fixture().snapshot;
    // Bit flip → checksum.
    let mut corrupt = snapshot.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x04;
    assert!(matches!(
        EnsembleDetector::from_snapshot_bytes(&corrupt),
        Err(PersistError::ChecksumMismatch { .. })
    ));
    // Truncation.
    assert!(matches!(
        EnsembleDetector::from_snapshot_bytes(&snapshot[..snapshot.len() / 3]),
        Err(PersistError::Truncated { .. })
    ));
    // Kind mismatch both ways: an HSC snapshot is not an ensemble and vice
    // versa — and the generic Scanner front door accepts both.
    let hsc_snapshot = &fixture().snapshot;
    match EnsembleDetector::from_snapshot_bytes(hsc_snapshot).unwrap_err() {
        PersistError::WrongKind { expected, found } => {
            assert_eq!(expected, phishinghook::models::ensemble::SNAPSHOT_KIND);
            assert_eq!(found, SNAPSHOT_KIND);
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
    assert!(phishinghook::models::Scanner::from_snapshot_bytes(hsc_snapshot).is_ok());
    assert!(phishinghook::models::Scanner::from_snapshot_bytes(snapshot).is_ok());
}

// --- Trace-channel snapshots ------------------------------------------------

/// `(probes, in-memory scanner, restored scanner, raw snapshot)` per
/// trace-bearing spec, trained once on a honeypot corpus (the scenario the
/// dynamic channel exists for).
struct TraceFixture {
    probes: Vec<Vec<u8>>,
    pairs: Vec<(
        String,
        phishinghook::models::Scanner,
        phishinghook::models::Scanner,
        Vec<u8>,
    )>,
}

fn trace_fixture() -> &'static TraceFixture {
    static FIXTURE: OnceLock<TraceFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 80,
            seed: 37,
            scenario: phishinghook::data::Scenario::Honeypot,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let pairs = ["rf:features=trace", "lr:features=hist+trace"]
            .into_iter()
            .map(|spec| {
                let mut det = DetectorRegistry::global()
                    .build_str(spec, 7)
                    .expect("valid spec");
                det.fit(&refs[..50], &labels[..50]);
                let bytes = det.to_snapshot_bytes();
                assert_eq!(bytes, det.to_snapshot_bytes(), "{spec}: deterministic");
                let restored = phishinghook::models::Scanner::from_snapshot_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("{spec} snapshot failed to restore: {e}"));
                let original = phishinghook::models::Scanner::new(det).expect("fitted");
                (spec.to_owned(), original, restored, bytes)
            })
            .collect();
        TraceFixture {
            probes: codes[50..].to_vec(),
            pairs,
        }
    })
}

#[test]
fn trace_detectors_round_trip_bit_identically_on_held_out_honeypots() {
    let fx = trace_fixture();
    let refs: Vec<&[u8]> = fx.probes.iter().map(Vec::as_slice).collect();
    for (spec, original, restored, _) in &fx.pairs {
        let a = original.worker().score_batch(&refs);
        let b = restored.worker().score_batch(&refs);
        assert_eq!(bits(&a), bits(&b), "{spec}: restored scores diverge");
        assert_eq!(restored.n_features(), original.n_features(), "{spec}");
        assert_eq!(
            restored.model().features(),
            original.model().features(),
            "{spec}"
        );
    }
}

proptest! {
    #[test]
    fn trace_round_trip_holds_on_arbitrary_bytecodes(
        code in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Adversarial inputs run through the *explorer* here, not just the
        // disassembler — the restored extractor must replay the exact same
        // execution budgets and land on the same bits.
        let fx = trace_fixture();
        let batch: [&[u8]; 1] = [code.as_slice()];
        for (spec, original, restored, _) in &fx.pairs {
            let a = original.worker().score_batch(&batch);
            let b = restored.worker().score_batch(&batch);
            prop_assert_eq!(bits(&a), bits(&b), "{}", spec);
        }
    }
}

#[test]
fn trace_snapshot_corruption_is_rejected_with_typed_errors() {
    for (spec, _, _, snapshot) in &trace_fixture().pairs {
        // Bit flip → checksum. The flip lands in the payload's back half,
        // where the appended feature-set tag and trace extractor live.
        let mut corrupt = snapshot.clone();
        let at = snapshot.len() - 9;
        corrupt[at] ^= 0x20;
        assert!(
            matches!(
                phishinghook::models::Scanner::from_snapshot_bytes(&corrupt),
                Err(PersistError::ChecksumMismatch { .. })
            ),
            "{spec}"
        );
        // Truncation anywhere, including inside the trailing trace fields.
        for keep in [snapshot.len() / 2, snapshot.len() - 4] {
            let err =
                phishinghook::models::Scanner::from_snapshot_bytes(&snapshot[..keep]).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated { .. }),
                "{spec} keeping {keep}: {err:?}"
            );
        }
    }
}

#[test]
fn the_envelope_kind_is_the_documented_one() {
    let fx = fixture();
    // The snapshot self-describes as an HSC detector…
    assert!(open_envelope(SNAPSHOT_KIND, &fx.snapshot).is_ok());
    // …and refuses to open as anything else.
    match open_envelope("random-forest", &fx.snapshot).unwrap_err() {
        PersistError::WrongKind { expected, found } => {
            assert_eq!(expected, "random-forest");
            assert_eq!(found, SNAPSHOT_KIND);
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
}
