//! Tier-1 coverage of the serving core through the umbrella crate: the
//! scheduler's headline guarantees (cross-connection sharing, bit-identical
//! caching, ordering, graceful drain) exercised end to end on a small model.

use phishinghook::evm::keccak::to_hex;
use phishinghook::models::Scanner;
use phishinghook::serve::{
    run_watch, serve_lines, Protocol, Scheduler, SchedulerOptions, WatchOptions,
};

/// This suite's probe-corpus seed (distinct per suite so per-process cache
/// state never aliases across suites).
const PROBE_SEED: u64 = 91;

fn scanner() -> &'static Scanner {
    phishinghook::serve::fixture::rf_scanner()
}

fn probes(n: usize) -> (String, Vec<Vec<u8>>) {
    phishinghook::serve::fixture::probe_lines(n, PROBE_SEED)
}

#[test]
fn scheduler_serves_cached_and_cold_requests_bit_identically() {
    let (input, codes) = probes(8);
    let scheduler = Scheduler::new(scanner(), &SchedulerOptions::default());

    // Two passes over the same stream: the first scores cold, the second is
    // answered from the keccak-keyed verdict cache — responses must match
    // byte for byte, and per-connection order must hold both times.
    let mut first = Vec::new();
    let report_cold =
        serve_lines(&scheduler, Protocol::V2, input.as_bytes(), &mut first).expect("serves");
    let mut second = Vec::new();
    let report_hot =
        serve_lines(&scheduler, Protocol::V2, input.as_bytes(), &mut second).expect("serves");
    assert_eq!(first, second, "cache hits must replay identical responses");
    assert_eq!(report_cold.contracts, codes.len() as u64);
    assert_eq!(report_hot.cache_hits, codes.len() as u64);

    // Responses also carry the scanner's own probabilities, in order.
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let expected = scanner().worker().score_batch(&refs);
    let text = String::from_utf8(first).expect("utf8");
    for (i, (line, p)) in text.lines().zip(&expected).enumerate() {
        assert!(
            line.starts_with(&format!("{{\"proto\":2,\"id\":\"{i}\",")),
            "{line}"
        );
        assert!(line.contains(&format!("\"proba\":{p:.6}")), "{line}");
    }

    let stats = scheduler.shutdown();
    assert_eq!(stats.scheduler.scored, codes.len() as u64, "one cold pass");
    assert_eq!(
        stats.cache.expect("cache on").hits,
        codes.len() as u64,
        "one cached pass"
    );
}

#[test]
fn http_gateway_replies_bit_identically_over_the_umbrella_crate() {
    use phishinghook::serve::{serve_http, TcpLimits};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    let (_, codes) = probes(1);
    let scheduler = Scheduler::new(scanner(), &SchedulerOptions::default());

    // The JSONL reference verdict (this also warms the verdict cache, so
    // the HTTP round below must replay the exact same bytes from it).
    let body = format!("{{\"id\":\"t\",\"bytecode\":\"0x{}\"}}", to_hex(&codes[0]));
    let mut jsonl = Vec::new();
    serve_lines(
        &scheduler,
        Protocol::V2,
        format!("{body}\n").as_bytes(),
        &mut jsonl,
    )
    .expect("jsonl serves");
    let jsonl = String::from_utf8(jsonl).expect("utf8");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let response = std::thread::scope(|scope| {
        let scheduler = &scheduler;
        let server = scope.spawn(move || {
            serve_http(
                &listener,
                scheduler,
                TcpLimits {
                    max_conns: None,
                    accept_total: Some(1),
                },
            )
            .expect("gateway serves")
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Two pipelined requests on one keep-alive connection.
        let raw = format!(
            "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}\
             GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(raw.as_bytes()).expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        server.join().expect("server thread");
        response
    });

    // The /predict body is byte-for-byte the JSONL v2 verdict line.
    assert!(response.contains(jsonl.trim_end()), "{response}");
    assert!(
        response.contains("phishinghook_request_latency_seconds_bucket"),
        "{response}"
    );
    let snap = scheduler.metrics_snapshot();
    assert_eq!(snap.http.requests, 2);
    assert_eq!(
        snap.cache.expect("cache on").hits,
        1,
        "HTTP shares the cache"
    );
    scheduler.shutdown();
}

#[test]
fn serve_config_builder_validates_through_the_umbrella_crate() {
    use phishinghook::serve::ServeConfig;
    let config = ServeConfig::builder()
        .batch(4)
        .workers(1)
        .build()
        .expect("valid config");
    assert_eq!(config.scheduler().batch, 4);
    assert_eq!(config.tcp(), None);
    assert!(ServeConfig::builder().workers(0).build().is_err());
    assert!(ServeConfig::builder().max_conns(2).build().is_err());
}

#[test]
fn watch_firehose_round_trips_through_the_serving_core() {
    let report = run_watch(
        scanner(),
        &WatchOptions {
            events: 80,
            ..WatchOptions::quick()
        },
    );
    assert_eq!(report.events, 80);
    assert_eq!(report.errors, 0);
    assert_eq!(report.cache_hits + report.cache_misses, 80);
    assert!(report.unique_bytecodes <= 16);
    assert!(report.alerts > 0, "a phishing-heavy stream must alert");
}
