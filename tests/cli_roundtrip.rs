//! Workspace-level CLI round-trip: `generate <n> <csv>` followed by
//! `eval <csv>` must succeed and report metrics for every HSC detector.
//!
//! This is the user-facing path the README quickstart advertises, so it runs
//! as a root integration test (and CI smoke-runs the same pair of commands
//! against the release binary).

use phishinghook_cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_string()).collect()
}

/// The seven histogram-based single classifiers `eval` cross-validates
/// (paper Table II's histogram family).
const HSC_NAMES: [&str; 7] = [
    "Random Forest",
    "k-NN",
    "SVM",
    "Logistic Regression",
    "XGBoost",
    "LightGBM",
    "CatBoost",
];

#[test]
fn generate_then_eval_round_trip() {
    let dir = std::env::temp_dir().join("phishinghook-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("corpus.csv");
    let csv_str = csv.to_str().expect("utf8 path");

    let generated = run(&args(&["generate", "120", csv_str, "42"])).expect("generate succeeds");
    assert!(
        generated.contains("wrote 120 contracts"),
        "unexpected generate output:\n{generated}"
    );
    assert!(csv.exists(), "generate must write the dataset CSV");

    let report = run(&args(&["eval", csv_str, "3"])).expect("eval succeeds");
    assert!(
        report.contains("3-fold cross-validation on 120 contracts"),
        "unexpected eval header:\n{report}"
    );
    for model in HSC_NAMES {
        let line = report
            .lines()
            .find(|l| l.starts_with(model))
            .unwrap_or_else(|| panic!("no metrics line for {model} in:\n{report}"));
        // Four metric columns (Acc/F1/Prec/Rec), each a percentage in [0, 100].
        let metrics: Vec<f64> = line[model.len()..]
            .split_whitespace()
            .map(|v| v.parse().expect("numeric metric"))
            .collect();
        assert_eq!(metrics.len(), 4, "expected 4 metrics for {model}: {line}");
        for m in metrics {
            assert!((0.0..=100.0).contains(&m), "metric out of range in: {line}");
        }
    }
}

#[test]
fn round_trip_is_seed_deterministic() {
    let dir = std::env::temp_dir().join("phishinghook-roundtrip-det");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (a, b) = (dir.join("a.csv"), dir.join("b.csv"));

    run(&args(&["generate", "40", a.to_str().expect("utf8"), "7"])).expect("generate a");
    run(&args(&["generate", "40", b.to_str().expect("utf8"), "7"])).expect("generate b");
    let (csv_a, csv_b) = (
        std::fs::read_to_string(&a).expect("read a"),
        std::fs::read_to_string(&b).expect("read b"),
    );
    assert_eq!(csv_a, csv_b, "same seed must yield byte-identical datasets");
}
