//! Behavioural contracts of the detection models that the paper's claims
//! rest on, tested across crates.

use phishinghook_data::{Corpus, CorpusConfig, Label};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::gbdt::GbdtConfig;
use phishinghook_ml::{BoostVariant, Classifier, GradientBoosting, SplitMix};
use phishinghook_models::{Detector, HscDetector};

fn corpus(n: usize, seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        n_contracts: n,
        seed,
        ..Default::default()
    })
}

#[test]
fn boosting_variants_agree_on_easy_data_but_are_distinct_models() {
    // The three GBDT flavours must reach similar accuracy while producing
    // genuinely different decision functions (they are three models in the
    // paper's Table II, not one model under three names).
    let c = corpus(300, 21);
    let (codes, labels) = c.as_dataset();
    let ex = HistogramExtractor::fit(&codes);
    let x = ex.transform(&codes);

    let mut predictions = Vec::new();
    for variant in [
        BoostVariant::Exact,
        BoostVariant::Histogram,
        BoostVariant::Oblivious,
    ] {
        let mut m = GradientBoosting::new(GbdtConfig {
            variant,
            seed: 5,
            ..Default::default()
        });
        m.fit(&x, &labels);
        let correct = m
            .predict(&x)
            .iter()
            .zip(&labels)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            correct as f64 / labels.len() as f64 > 0.9,
            "{variant:?} weak on train: {correct}/{}",
            labels.len()
        );
        predictions.push(m.predict_proba(&x));
    }
    // Distinct probability surfaces.
    assert_ne!(predictions[0], predictions[1]);
    assert_ne!(predictions[1], predictions[2]);
    assert_ne!(predictions[0], predictions[2]);
}

#[test]
fn detector_is_robust_to_unseen_garbage_input() {
    // A deployed scanner sees arbitrary bytes; prediction must not panic on
    // inputs wildly unlike the training distribution.
    let c = corpus(160, 22);
    let (codes, labels) = c.as_dataset();
    let mut det = HscDetector::random_forest(1);
    det.fit(&codes, &labels);

    let mut rng = SplitMix::new(77);
    let garbage: Vec<Vec<u8>> = (0..20)
        .map(|i| {
            (0..(i * 37) % 900)
                .map(|_| (rng.next_u64() & 0xFF) as u8)
                .collect()
        })
        .collect();
    let mut inputs: Vec<&[u8]> = garbage.iter().map(Vec::as_slice).collect();
    inputs.push(&[]); // empty bytecode (an EOA's "code")
    let preds = det.predict(&inputs);
    assert_eq!(preds.len(), inputs.len());
    assert!(preds.iter().all(|&p| p <= 1));
}

#[test]
fn minimal_proxies_are_classified_by_their_bodies_not_crashes() {
    // EIP-1167 proxies are 45 bytes — the shortest real inputs. They must
    // flow through every feature path without panicking.
    let c = corpus(200, 23);
    let (codes, labels) = c.as_dataset();
    let proxies: Vec<&[u8]> = c
        .records
        .iter()
        .filter(|r| r.family == "minimal-proxy")
        .map(|r| r.bytecode.as_slice())
        .collect();
    assert!(!proxies.is_empty(), "corpus should contain proxies");
    let mut det = HscDetector::random_forest(3);
    det.fit(&codes, &labels);
    let preds = det.predict(&proxies);
    assert_eq!(preds.len(), proxies.len());
}

#[test]
fn label_flip_symmetry_of_metrics() {
    // Swapping the positive class must swap precision/recall consistently
    // (guards the Fig. 8 dual-class plot).
    let c = corpus(160, 24);
    let (codes, labels) = c.as_dataset();
    let split = codes.len() * 3 / 4;
    let mut det = HscDetector::random_forest(9);
    det.fit(&codes[..split], &labels[..split]);
    let preds = det.predict(&codes[split..]);
    let truth = &labels[split..];

    use phishinghook_core::metrics::BinaryMetrics;
    let phishing = BinaryMetrics::from_predictions_for_class(&preds, truth, 1);
    let benign = BinaryMetrics::from_predictions_for_class(&preds, truth, 0);
    assert!((phishing.accuracy - benign.accuracy).abs() < 1e-12);
    // Total error mass is shared: FN of one class are FP of the other.
    let n_phish = truth.iter().filter(|&&y| y == 1).count() as f64;
    let n_benign = truth.len() as f64 - n_phish;
    let missed_phish = (1.0 - phishing.recall) * n_phish;
    let flagged_benign = (1.0 - benign.recall) * n_benign;
    let false_preds = preds.iter().zip(truth).filter(|(p, y)| p != y).count() as f64;
    assert!((missed_phish + flagged_benign - false_preds).abs() < 1e-6);
}

#[test]
fn families_receive_plausible_verdicts() {
    // Trained on one corpus, the detector should flag drainers far more
    // often than ERC-20s from a *fresh* corpus (generalization across
    // generator seeds, not memorization).
    let train = corpus(500, 25);
    let (codes, labels) = train.as_dataset();
    let mut det = HscDetector::random_forest(4);
    det.fit(&codes, &labels);

    let fresh = corpus(400, 26);
    let rate = |family: &str| -> f64 {
        let members: Vec<&[u8]> = fresh
            .records
            .iter()
            .filter(|r| r.family == family)
            .map(|r| r.bytecode.as_slice())
            .collect();
        if members.is_empty() {
            return f64::NAN;
        }
        let preds = det.predict(&members);
        preds.iter().sum::<usize>() as f64 / preds.len() as f64
    };
    let drainer = rate("approval-drainer");
    let erc20 = rate("erc20");
    assert!(drainer > 0.7, "drainer flag rate {drainer}");
    assert!(erc20 < 0.3, "erc20 flag rate {erc20}");

    // Ground truth sanity: families carry the right labels.
    for r in &fresh.records {
        match r.family {
            "approval-drainer" | "fake-airdrop" | "sweeper" | "hidden-fee-token"
            | "wallet-verifier" | "fake-vault" => assert_eq!(r.label, Label::Phishing),
            _ => assert_eq!(r.label, Label::Benign),
        }
    }
}
