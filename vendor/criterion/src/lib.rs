//! Offline stand-in for the crates.io [`criterion`] benchmark harness.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the real `criterion` cannot be fetched. This crate
//! implements the small API subset the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize` and the `criterion_group!` / `criterion_main!` macros — with
//! a simple wall-clock harness: per sample it times one routine invocation
//! and reports min / median / mean over the sample set.
//!
//! It is intentionally dependency-free and deterministic in structure (not
//! in timings). Swapping back to the real crate is a one-line change in
//! `Cargo.toml`; no bench source needs to change.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement; accepted for API
/// compatibility. This harness always times one routine call per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few per allocation.
    LargeInput,
    /// One setup call per routine call (what this harness always does).
    PerIteration,
}

/// Throughput annotation attached to a benchmark group, echoed in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per routine call.
    Bytes(u64),
    /// Abstract elements processed per routine call.
    Elements(u64),
}

/// Timing engine handed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call to populate caches and lazy state.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` product per sample; the setup
    /// cost is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let mut sorted = self.durations.clone();
        sorted.sort();
        if sorted.is_empty() {
            println!("{name:<40} no samples recorded");
            return;
        }
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let mut line = format!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
        if let Some(tp) = throughput {
            let secs = median.as_secs_f64().max(f64::MIN_POSITIVE);
            match tp {
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  {:.1} MiB/s",
                        n as f64 / secs / (1024.0 * 1024.0)
                    ));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.0} elem/s", n as f64 / secs));
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group (report flushing is immediate here; kept for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, one per process.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real criterion defaults to 100 samples; 20 keeps the heavier
        // model-training benches tolerable without a statistics engine.
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Overrides the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(id, None);
        self
    }
}

/// Prevents the optimizer from eliding a value; forwards to
/// [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name (simple `(name, targets…)` form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running each group, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.durations.len(), 5);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.durations.len(), 3);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8)).sample_size(2);
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }
}
