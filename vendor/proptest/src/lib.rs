//! Offline stand-in for the crates.io [`proptest`] property-testing crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the real `proptest` cannot be fetched. This crate
//! implements the subset the workspace test suites use:
//!
//! * the [`proptest!`] macro (simple `#[test] fn name(arg in strategy)` form),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`arbitrary::any`] for primitive integers,
//! * numeric range strategies (`lo..hi`, `lo..=hi`, `lo..`), and
//! * [`collection::vec`].
//!
//! Each property runs a fixed number of cases (default 64) drawn from a
//! deterministic SplitMix64 stream, so failures reproduce across runs.
//! There is no shrinking: a failing case panics with the sampled inputs
//! visible via the assertion message. Swapping back to the real crate is a
//! one-line change in `Cargo.toml`; no test source needs to change.
//!
//! [`proptest`]: https://docs.rs/proptest

/// Number of cases sampled per property.
pub const DEFAULT_CASES: usize = 64;

pub mod test_runner {
    //! Deterministic random source driving every property.

    /// SplitMix64 stream; identical sequence on every run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed constructor used by the [`crate::proptest!`] expansion.
        pub fn deterministic() -> Self {
            Self {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 128-bit draw.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its range implementations.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The sampled type.
        type Value;
        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Primitive types that can be drawn uniformly from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
        fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        /// Largest representable value (closes `lo..` ranges).
        const MAX_VALUE: Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty => $wide:ty, $draw:ident);+ $(;)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    let span = (hi as $wide).wrapping_sub(lo as $wide);
                    lo.wrapping_add((rng.$draw() % span) as $t)
                }
                fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    let span = (hi as $wide).wrapping_sub(lo as $wide);
                    if span == <$wide>::MAX {
                        return rng.$draw() as $t;
                    }
                    lo.wrapping_add((rng.$draw() % (span + 1)) as $t)
                }
                const MAX_VALUE: Self = <$t>::MAX;
            }
        )+};
    }

    impl_sample_uniform_int! {
        u8 => u64, next_u64;
        u16 => u64, next_u64;
        u32 => u64, next_u64;
        u64 => u64, next_u64;
        usize => u64, next_u64;
        u128 => u128, next_u128;
    }

    impl SampleUniform for f64 {
        fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            lo + rng.unit_f64() * (hi - lo)
        }
        fn sample_closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            // Treat the closed upper bound as reachable by rounding: draw in
            // [lo, hi) and occasionally return hi exactly.
            if rng.next_u64().is_multiple_of(64) {
                return hi;
            }
            lo + rng.unit_f64() * (hi - lo)
        }
        const MAX_VALUE: Self = f64::MAX;
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty range strategy");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(self.start() <= self.end(), "empty range strategy");
            T::sample_closed(*self.start(), *self.end(), rng)
        }
    }

    impl<T: SampleUniform> Strategy for RangeFrom<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_closed(self.start, T::MAX_VALUE, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u128()
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u128() as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Full-domain strategy for `T`; the value behind [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy covering all of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from `size` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy, L: Strategy<Value = usize>>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs each contained `#[test] fn name(arg in strategy, …) { … }` as a
/// property over [`DEFAULT_CASES`] deterministic cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prop_rng = $crate::test_runner::TestRng::deterministic();
                for _ in 0..$crate::DEFAULT_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a property-body condition; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_stream_is_stable() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 0.0f64..=1.0, z in 1u128..) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(z >= 1);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }
}
