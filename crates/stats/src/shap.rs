//! TreeSHAP — exact Shapley values for tree ensembles (paper Fig. 9).
//!
//! Implements Lundberg's polynomial-time TreeSHAP (Algorithm 2 of the
//! TreeSHAP paper) over this workspace's CART trees and random forests,
//! using the path-dependent feature perturbation the SHAP package defaults
//! to. Correctness is pinned by two test suites: additivity
//! (`Σφ + E[f] = f(x)`) and equality with brute-force Shapley values
//! computed from the exponential-time definition on small trees.

use phishinghook_ml::classical::tree::{DecisionTree, Node};
use phishinghook_ml::RandomForest;

#[derive(Clone, Debug)]
struct PathElement {
    /// Feature index (`usize::MAX` for the dummy root element).
    d: usize,
    /// Fraction of "zero" (feature-unknown) paths flowing through.
    z: f64,
    /// Fraction of "one" (feature-known) paths flowing through.
    o: f64,
    /// Permutation weight.
    w: f64,
}

fn extend(m: &mut Vec<PathElement>, pz: f64, po: f64, pi: usize) {
    let l = m.len();
    m.push(PathElement {
        d: pi,
        z: pz,
        o: po,
        w: if l == 0 { 1.0 } else { 0.0 },
    });
    for i in (0..l).rev() {
        m[i + 1].w += po * m[i].w * (i + 1) as f64 / (l + 1) as f64;
        m[i].w = pz * m[i].w * (l - i) as f64 / (l + 1) as f64;
    }
}

fn unwind(m: &mut Vec<PathElement>, i: usize) {
    let l = m.len();
    let (oi, zi) = (m[i].o, m[i].z);
    let mut n = m[l - 1].w;
    for j in (0..l - 1).rev() {
        if oi != 0.0 {
            let t = m[j].w;
            m[j].w = n * l as f64 / ((j + 1) as f64 * oi);
            n = t - m[j].w * zi * (l - j - 1) as f64 / l as f64;
        } else {
            m[j].w = m[j].w * l as f64 / (zi * (l - j - 1) as f64);
        }
    }
    for j in i..l - 1 {
        m[j].d = m[j + 1].d;
        m[j].z = m[j + 1].z;
        m[j].o = m[j + 1].o;
    }
    m.pop();
}

fn unwound_sum(m: &[PathElement], i: usize) -> f64 {
    let l = m.len();
    let (oi, zi) = (m[i].o, m[i].z);
    let mut n = m[l - 1].w;
    let mut total = 0.0;
    for j in (0..l - 1).rev() {
        if oi != 0.0 {
            let tmp = n * l as f64 / ((j + 1) as f64 * oi);
            total += tmp;
            n = m[j].w - tmp * zi * (l - j - 1) as f64 / l as f64;
        } else {
            total += m[j].w * l as f64 / (zi * (l - j - 1) as f64);
        }
    }
    total
}

fn node_cover(nodes: &[Node], id: usize) -> f64 {
    match nodes[id] {
        Node::Leaf { cover, .. } | Node::Split { cover, .. } => cover,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors Lundberg's published TreeSHAP recursion
fn recurse(
    nodes: &[Node],
    x: &[f64],
    phi: &mut [f64],
    j: usize,
    mut m: Vec<PathElement>,
    pz: f64,
    po: f64,
    pi: usize,
) {
    extend(&mut m, pz, po, pi);
    match nodes[j] {
        Node::Leaf { proba, .. } => {
            for i in 1..m.len() {
                let w = unwound_sum(&m, i);
                phi[m[i].d] += w * (m[i].o - m[i].z) * proba;
            }
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
            cover,
        } => {
            let (hot, cold) = if x[feature] <= threshold {
                (left, right)
            } else {
                (right, left)
            };
            let mut iz = 1.0;
            let mut io = 1.0;
            // Undo an earlier occurrence of this feature on the path.
            if let Some(k) = (1..m.len()).find(|&k| m[k].d == feature) {
                iz = m[k].z;
                io = m[k].o;
                unwind(&mut m, k);
            }
            let hot_frac = node_cover(nodes, hot) / cover;
            let cold_frac = node_cover(nodes, cold) / cover;
            recurse(nodes, x, phi, hot, m.clone(), iz * hot_frac, io, feature);
            recurse(nodes, x, phi, cold, m, iz * cold_frac, 0.0, feature);
        }
    }
}

/// SHAP values of one sample under a fitted tree (`phi[f]` per feature).
///
/// # Panics
/// Panics when the tree is unfitted or `x` is shorter than the tree's
/// feature count.
pub fn tree_shap(tree: &DecisionTree, x: &[f64]) -> Vec<f64> {
    assert!(!tree.nodes().is_empty(), "SHAP on an unfitted tree");
    assert!(x.len() >= tree.n_features(), "sample has too few features");
    let mut phi = vec![0.0; tree.n_features()];
    // The dummy root path element (sentinel feature id) sits at index 0 of
    // the path and is skipped by the leaf loop, so phi only receives real
    // feature indices.
    recurse(
        tree.nodes(),
        x,
        &mut phi,
        0,
        Vec::new(),
        1.0,
        1.0,
        usize::MAX - 1,
    );
    phi
}

/// Cover-weighted expected prediction of a tree (the SHAP base value).
pub fn tree_expected_value(tree: &DecisionTree) -> f64 {
    fn walk(nodes: &[Node], id: usize) -> f64 {
        match nodes[id] {
            Node::Leaf { proba, cover } => proba * cover,
            Node::Split { left, right, .. } => walk(nodes, left) + walk(nodes, right),
        }
    }
    let total = node_cover(tree.nodes(), 0);
    walk(tree.nodes(), 0) / total
}

/// SHAP values under a random forest: the mean of per-tree SHAP values
/// (forests predict the mean of tree probabilities, and Shapley values are
/// linear in the model).
pub fn forest_shap(forest: &RandomForest, x: &[f64]) -> Vec<f64> {
    let trees = forest.trees();
    assert!(!trees.is_empty(), "SHAP on an unfitted forest");
    let mut phi = vec![0.0; trees[0].n_features()];
    for tree in trees {
        for (acc, v) in phi.iter_mut().zip(tree_shap(tree, x)) {
            *acc += v;
        }
    }
    for v in &mut phi {
        *v /= trees.len() as f64;
    }
    phi
}

/// Expected prediction of a forest (mean of per-tree base values).
pub fn forest_expected_value(forest: &RandomForest) -> f64 {
    let trees = forest.trees();
    trees.iter().map(tree_expected_value).sum::<f64>() / trees.len() as f64
}

/// Brute-force Shapley values from the exponential-time definition, using
/// the tree's path-dependent conditional expectation. Only practical for
/// small feature counts; used to pin TreeSHAP's correctness in tests and
/// exposed for auditability.
///
/// # Panics
/// Panics when the tree has more than 20 features.
pub fn brute_force_shap(tree: &DecisionTree, x: &[f64]) -> Vec<f64> {
    let d = tree.n_features();
    assert!(d <= 20, "brute force is exponential; use tree_shap");

    // Conditional expectation with feature subset S known.
    fn expvalue(nodes: &[Node], id: usize, x: &[f64], s: u32) -> f64 {
        match nodes[id] {
            Node::Leaf { proba, .. } => proba,
            Node::Split {
                feature,
                threshold,
                left,
                right,
                cover,
            } => {
                if s >> feature & 1 == 1 {
                    let next = if x[feature] <= threshold { left } else { right };
                    expvalue(nodes, next, x, s)
                } else {
                    let wl = node_cover(nodes, left) / cover;
                    let wr = node_cover(nodes, right) / cover;
                    wl * expvalue(nodes, left, x, s) + wr * expvalue(nodes, right, x, s)
                }
            }
        }
    }

    let factorial = |n: usize| -> f64 { (1..=n).map(|v| v as f64).product() };
    let mut phi = vec![0.0; d];
    for (i, phi_i) in phi.iter_mut().enumerate() {
        for s in 0u32..(1 << d) {
            if s >> i & 1 == 1 {
                continue;
            }
            let size = s.count_ones() as usize;
            let weight = factorial(size) * factorial(d - size - 1) / factorial(d);
            let without = expvalue(tree.nodes(), 0, x, s);
            let with = expvalue(tree.nodes(), 0, x, s | (1 << i));
            *phi_i += weight * (with - without);
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_ml::classical::forest::ForestConfig;
    use phishinghook_ml::classical::tree::TreeConfig;
    use phishinghook_ml::{Classifier, Matrix, SplitMix};

    fn random_dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.normal()).collect())
            .collect();
        let y: Vec<usize> = rows
            .iter()
            .map(|r| usize::from(r[0] + 0.5 * r[1 % d] > 0.0))
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn additivity_on_single_tree() {
        let (x, y) = random_dataset(200, 4, 1);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 6,
            ..Default::default()
        });
        tree.fit(&x, &y);
        let base = tree_expected_value(&tree);
        for i in 0..20 {
            let row = x.row(i);
            let phi = tree_shap(&tree, row);
            let total: f64 = phi.iter().sum::<f64>() + base;
            let pred = tree.predict_row(row);
            assert!((total - pred).abs() < 1e-9, "row {i}: {total} vs {pred}");
        }
    }

    #[test]
    fn matches_brute_force_exactly() {
        let (x, y) = random_dataset(120, 5, 2);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 4,
            ..Default::default()
        });
        tree.fit(&x, &y);
        for i in 0..8 {
            let row = x.row(i);
            let fast = tree_shap(&tree, row);
            let slow = brute_force_shap(&tree, row);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "row {i}: {fast:?} vs {slow:?}");
            }
        }
    }

    #[test]
    fn repeated_feature_on_path_is_handled() {
        // Deep tree on one feature forces the same feature to appear
        // multiple times along a path — the UNWIND case.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i % 3 == 0)).collect();
        let x = Matrix::from_rows(&rows);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 8,
            ..Default::default()
        });
        tree.fit(&x, &y);
        let base = tree_expected_value(&tree);
        for i in [0, 7, 21, 39] {
            let row = x.row(i);
            let phi = tree_shap(&tree, row);
            let slow = brute_force_shap(&tree, row);
            for (f, s) in phi.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9);
            }
            assert!((phi.iter().sum::<f64>() + base - tree.predict_row(row)).abs() < 1e-9);
        }
    }

    #[test]
    fn additivity_on_forest() {
        let (x, y) = random_dataset(150, 4, 3);
        let mut forest = RandomForest::new(ForestConfig {
            n_trees: 12,
            max_depth: 6,
            ..ForestConfig::default()
        });
        forest.fit(&x, &y);
        let base = forest_expected_value(&forest);
        let probs = forest.predict_proba(&x);
        for (i, prob) in probs.iter().enumerate().take(10) {
            let phi = forest_shap(&forest, x.row(i));
            let total: f64 = phi.iter().sum::<f64>() + base;
            assert!((total - prob).abs() < 1e-9, "row {i}: {total} vs {prob}");
        }
    }

    #[test]
    fn single_leaf_tree_has_zero_shap() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let y = vec![1, 1];
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&x, &y);
        assert_eq!(tree_shap(&tree, &[1.5]), vec![0.0]);
        assert_eq!(tree_expected_value(&tree), 1.0);
    }

    #[test]
    fn influential_feature_gets_larger_attribution() {
        // Label depends only on feature 0.
        let mut rng = SplitMix::new(4);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.normal(), rng.normal(), rng.normal()])
            .collect();
        let y: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.0)).collect();
        let x = Matrix::from_rows(&rows);
        let mut forest = RandomForest::new(ForestConfig {
            n_trees: 10,
            max_depth: 6,
            ..ForestConfig::default()
        });
        forest.fit(&x, &y);
        let mut importance = [0.0f64; 3];
        for i in 0..50 {
            for (imp, phi) in importance.iter_mut().zip(forest_shap(&forest, x.row(i))) {
                *imp += phi.abs();
            }
        }
        assert!(importance[0] > 3.0 * importance[1], "{importance:?}");
        assert!(importance[0] > 3.0 * importance[2], "{importance:?}");
    }
}
