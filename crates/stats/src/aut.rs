//! Area Under Time (AUT) — the time-resistance stability metric of the
//! paper's Fig. 8, following TESSERACT (Pendlebury et al., USENIX Sec '19).
//!
//! `AUT ∈ [0, 1]` is the trapezoidal area under a metric's curve over the
//! test periods, normalized by the number of intervals; higher values mean
//! greater robustness against temporal decay.

/// Computes AUT over a per-period metric series.
///
/// # Panics
/// Panics when the series has fewer than 2 points or values outside `[0, 1]`.
pub fn area_under_time(series: &[f64]) -> f64 {
    assert!(series.len() >= 2, "AUT requires at least two periods");
    assert!(
        series.iter().all(|v| (0.0..=1.0).contains(v)),
        "AUT is defined over metrics in [0, 1]"
    );
    let intervals = (series.len() - 1) as f64;
    series.windows(2).map(|w| (w[0] + w[1]) / 2.0).sum::<f64>() / intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_series_equals_its_value() {
        assert!((area_under_time(&[0.9; 9]) - 0.9).abs() < 1e-12);
        assert!((area_under_time(&[0.0, 0.0]) - 0.0).abs() < 1e-12);
        assert!((area_under_time(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_decay_is_the_midpoint() {
        assert!((area_under_time(&[1.0, 0.75, 0.5, 0.25, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degrading_model_scores_lower() {
        let stable = [0.9, 0.89, 0.9, 0.88, 0.9];
        let decaying = [0.9, 0.8, 0.7, 0.6, 0.5];
        assert!(area_under_time(&stable) > area_under_time(&decaying));
    }

    #[test]
    #[should_panic(expected = "at least two periods")]
    fn single_point_panics() {
        let _ = area_under_time(&[0.5]);
    }

    proptest! {
        #[test]
        fn aut_bounded(series in proptest::collection::vec(0.0f64..=1.0, 2..20)) {
            let aut = area_under_time(&series);
            prop_assert!((0.0..=1.0).contains(&aut));
            let min = series.iter().copied().fold(f64::INFINITY, f64::min);
            let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(aut >= min - 1e-12 && aut <= max + 1e-12);
        }
    }
}
