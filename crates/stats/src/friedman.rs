//! Friedman test, Wilcoxon signed-rank test and Cliff's δ — the machinery
//! behind the paper's critical difference diagram (Fig. 6).

use crate::dist::{chi2_sf, normal_sf};
use crate::ranks::{average_ranks, holm_bonferroni};

/// Result of a Friedman test.
#[derive(Debug, Clone, PartialEq)]
pub struct Friedman {
    /// The χ²_F statistic.
    pub chi2: f64,
    /// P-value (χ² with k−1 degrees of freedom).
    pub p_value: f64,
    /// Mean rank per treatment (lower = better when ranking losses;
    /// interpretation is the caller's).
    pub mean_ranks: Vec<f64>,
}

/// Runs the Friedman test on a `blocks × treatments` table (each row is one
/// block's measurement of every treatment).
///
/// # Panics
/// Panics when there are fewer than 2 blocks or fewer than 2 treatments, or
/// when rows have unequal lengths.
pub fn friedman(blocks: &[Vec<f64>]) -> Friedman {
    let n = blocks.len();
    assert!(n >= 2, "Friedman requires at least two blocks");
    let k = blocks[0].len();
    assert!(k >= 2, "Friedman requires at least two treatments");
    assert!(blocks.iter().all(|b| b.len() == k), "ragged block table");

    let mut rank_sums = vec![0.0; k];
    for row in blocks {
        for (j, r) in average_ranks(row).into_iter().enumerate() {
            rank_sums[j] += r;
        }
    }
    let mean_ranks: Vec<f64> = rank_sums.iter().map(|s| s / n as f64).collect();
    let nf = n as f64;
    let kf = k as f64;
    let chi2 = 12.0 * nf / (kf * (kf + 1.0))
        * mean_ranks
            .iter()
            .map(|r| (r - (kf + 1.0) / 2.0).powi(2))
            .sum::<f64>();
    Friedman {
        chi2,
        p_value: chi2_sf(chi2, k - 1),
        mean_ranks,
    }
}

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wilcoxon {
    /// The smaller of the positive/negative rank sums.
    pub w: f64,
    /// Two-sided p-value (exact for ≤ 25 non-zero pairs, else normal
    /// approximation with tie correction).
    pub p_value: f64,
}

/// Runs the two-sided Wilcoxon signed-rank test on paired samples.
///
/// # Panics
/// Panics when inputs have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Wilcoxon {
    assert_eq!(a.len(), b.len(), "paired test requires equal lengths");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return Wilcoxon {
            w: 0.0,
            p_value: 1.0,
        };
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs);
    let w_plus: f64 = ranks
        .iter()
        .zip(&diffs)
        .filter(|(_, d)| **d > 0.0)
        .map(|(r, _)| r)
        .sum();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;
    let w = w_plus.min(w_minus);

    let has_ties = crate::ranks::tie_group_sizes(&abs).iter().any(|&t| t >= 2);
    let p_value = if n <= 25 && !has_ties {
        exact_wilcoxon_p(w_plus, n)
    } else {
        // Normal approximation with tie correction.
        let nf = n as f64;
        let tie_sum: f64 = crate::ranks::tie_group_sizes(&abs)
            .iter()
            .map(|&t| (t * t * t - t) as f64)
            .sum();
        let sigma = (nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_sum / 48.0).sqrt();
        let mu = nf * (nf + 1.0) / 4.0;
        // Continuity correction toward the mean.
        let z = (w - mu + 0.5) / sigma;
        (2.0 * normal_sf(-z)).min(1.0)
    };
    Wilcoxon { w, p_value }
}

/// Exact two-sided p-value: enumerates the distribution of the positive rank
/// sum over all 2ⁿ sign assignments via dynamic programming.
fn exact_wilcoxon_p(w_plus: f64, n: usize) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of sign assignments with positive rank sum s.
    let mut counts = vec![0.0f64; max_sum + 1];
    counts[0] = 1.0;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            counts[s] += counts[s - rank];
        }
    }
    let total: f64 = counts.iter().sum();
    let mu = max_sum as f64 / 2.0;
    let dev = (w_plus - mu).abs();
    // Two-sided: mass at least `dev` away from the mean.
    let p: f64 = counts
        .iter()
        .enumerate()
        .filter(|(s, _)| (*s as f64 - mu).abs() >= dev - 1e-9)
        .map(|(_, c)| c)
        .sum::<f64>()
        / total;
    p.min(1.0)
}

/// Cliff's δ effect size: `(#(a > b) − #(a < b)) / (|a|·|b|)` over all pairs.
pub fn cliffs_delta(a: &[f64], b: &[f64]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "Cliff's delta needs non-empty samples"
    );
    let mut more = 0i64;
    let mut less = 0i64;
    for x in a {
        for y in b {
            if x > y {
                more += 1;
            } else if x < y {
                less += 1;
            }
        }
    }
    (more - less) as f64 / (a.len() * b.len()) as f64
}

/// The data behind a critical difference diagram (paper Fig. 6): mean ranks
/// per model plus the groups of models that are *not* separated by pairwise
/// Wilcoxon tests (Holm-adjusted) — drawn as the thick connecting bar.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalDifference {
    /// Friedman mean rank per treatment (higher = better here, matching the
    /// paper's right-is-better orientation when ranking performance).
    pub mean_ranks: Vec<f64>,
    /// Friedman test p-value.
    pub friedman_p: f64,
    /// Holm-adjusted pairwise Wilcoxon p-values, indexed `[i][j]` (i < j).
    pub pairwise_p: Vec<((usize, usize), f64)>,
    /// Maximal sets of treatment indices with no significant pairwise
    /// difference (the thick bars).
    pub cliques: Vec<Vec<usize>>,
}

/// Builds critical-difference-diagram data from a `blocks × treatments`
/// performance table.
pub fn critical_difference(blocks: &[Vec<f64>], alpha: f64) -> CriticalDifference {
    let fr = friedman(blocks);
    let k = blocks[0].len();
    let mut pairs = Vec::new();
    let mut raw = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            let a: Vec<f64> = blocks.iter().map(|b| b[i]).collect();
            let b: Vec<f64> = blocks.iter().map(|r| r[j]).collect();
            raw.push(wilcoxon_signed_rank(&a, &b).p_value);
            pairs.push((i, j));
        }
    }
    let adjusted = holm_bonferroni(&raw);
    let pairwise_p: Vec<((usize, usize), f64)> = pairs
        .iter()
        .copied()
        .zip(adjusted.iter().copied())
        .collect();

    // Cliques: grow intervals over rank-sorted treatments while all pairs
    // inside stay non-significant (the standard CDD bar construction).
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        fr.mean_ranks[a]
            .partial_cmp(&fr.mean_ranks[b])
            .expect("finite ranks")
    });
    let not_sig = |a: usize, b: usize| {
        pairwise_p
            .iter()
            .find(|((i, j), _)| (*i == a && *j == b) || (*i == b && *j == a))
            .is_some_and(|(_, p)| *p >= alpha)
    };
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    for start in 0..k {
        let mut end = start;
        while end + 1 < k
            && (start..=end + 1)
                .all(|x| (start..=end + 1).all(|y| x == y || not_sig(order[x], order[y])))
        {
            end += 1;
        }
        if end > start {
            let clique: Vec<usize> = order[start..=end].to_vec();
            if !cliques.iter().any(|c| clique.iter().all(|m| c.contains(m))) {
                cliques.push(clique);
            }
        }
    }
    CriticalDifference {
        mean_ranks: fr.mean_ranks,
        friedman_p: fr.p_value,
        pairwise_p,
        cliques,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_ml::SplitMix;

    #[test]
    fn friedman_equal_treatments_not_significant() {
        let mut rng = SplitMix::new(8);
        let blocks: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                let base = rng.normal();
                vec![
                    base + rng.normal() * 0.1,
                    base + rng.normal() * 0.1,
                    base + rng.normal() * 0.1,
                ]
            })
            .collect();
        assert!(friedman(&blocks).p_value > 0.05);
    }

    #[test]
    fn friedman_detects_dominant_treatment() {
        let mut rng = SplitMix::new(9);
        let blocks: Vec<Vec<f64>> = (0..15)
            .map(|_| vec![rng.normal(), rng.normal() + 0.2, rng.normal() + 3.0])
            .collect();
        let fr = friedman(&blocks);
        assert!(fr.p_value < 0.01, "p = {}", fr.p_value);
        // Treatment 2 should hold the highest mean rank.
        assert!(fr.mean_ranks[2] > fr.mean_ranks[0]);
        assert!(fr.mean_ranks[2] > fr.mean_ranks[1]);
    }

    #[test]
    fn friedman_reference_value() {
        // Conover's worked example-style check: perfectly consistent
        // rankings across n blocks give χ² = n(k−1) for k treatments.
        let blocks: Vec<Vec<f64>> = (0..6).map(|_| vec![1.0, 2.0, 3.0]).collect();
        let fr = friedman(&blocks);
        assert!((fr.chi2 - 12.0).abs() < 1e-9, "chi2 = {}", fr.chi2);
    }

    #[test]
    fn wilcoxon_identical_samples() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(wilcoxon_signed_rank(&a, &a).p_value, 1.0);
    }

    #[test]
    fn wilcoxon_exact_small_sample() {
        // n = 4 distinct positive differences: W⁺ = 10 (all positive) is the
        // most extreme outcome; two-sided exact p = 2/16 = 0.125.
        let a = [2.0, 4.0, 6.0, 8.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let w = wilcoxon_signed_rank(&a, &b);
        assert!((w.p_value - 0.125).abs() < 1e-9, "p = {}", w.p_value);
    }

    #[test]
    fn wilcoxon_paper_style_tiny_n() {
        // The paper's scalability CDD reports p ∈ {0.25, 0.75} — these are
        // the exact two-sided p-values for n = 3 pairs.
        let a = [3.0, 5.0, 9.0];
        let b = [1.0, 2.0, 4.0];
        let w = wilcoxon_signed_rank(&a, &b);
        assert!((w.p_value - 0.25).abs() < 1e-9, "p = {}", w.p_value);
    }

    #[test]
    fn wilcoxon_large_sample_detects_shift() {
        let mut rng = SplitMix::new(10);
        let a: Vec<f64> = (0..60).map(|_| rng.normal()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 1.5 + rng.normal() * 0.2).collect();
        assert!(wilcoxon_signed_rank(&a, &b).p_value < 1e-6);
    }

    #[test]
    fn cliffs_delta_extremes() {
        assert_eq!(cliffs_delta(&[5.0, 6.0], &[1.0, 2.0]), 1.0);
        assert_eq!(cliffs_delta(&[1.0, 2.0], &[5.0, 6.0]), -1.0);
        assert_eq!(cliffs_delta(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn cliffs_delta_partial_overlap() {
        // pairs: (1>0), (1<2), (3>0), (3>2) → (3−1)/4 = 0.5
        assert_eq!(cliffs_delta(&[1.0, 3.0], &[0.0, 2.0]), 0.5);
    }

    #[test]
    fn cdd_groups_equivalent_models() {
        let mut rng = SplitMix::new(11);
        // Models 0 and 1 are statistically identical; model 2 dominates.
        let blocks: Vec<Vec<f64>> = (0..20)
            .map(|_| {
                let x = rng.normal();
                vec![x + rng.normal() * 0.05, x + rng.normal() * 0.05, x + 5.0]
            })
            .collect();
        let cdd = critical_difference(&blocks, 0.05);
        assert!(cdd.friedman_p < 0.05);
        assert!(
            cdd.cliques
                .iter()
                .any(|c| c.contains(&0) && c.contains(&1) && !c.contains(&2)),
            "cliques: {:?}",
            cdd.cliques
        );
        assert!(cdd.mean_ranks[2] > cdd.mean_ranks[0]);
    }
}
