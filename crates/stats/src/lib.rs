//! Post hoc analysis module (PAM) for the PhishingHook reproduction.
//!
//! Everything the paper's R scripts and SHAP tooling compute, from scratch:
//!
//! * [`shapiro`] — Shapiro-Wilk normality test (Royston AS R94), the PAM's
//!   parametric-vs-nonparametric gate;
//! * [`kruskal`] — Kruskal-Wallis H (Table III) and Dunn's pairwise test
//!   with Holm-Bonferroni correction (Fig. 4);
//! * [`friedman`](mod@friedman) — Friedman test, exact/approximate Wilcoxon signed-rank,
//!   Cliff's δ, and critical-difference-diagram construction (Fig. 6);
//! * [`aut`] — the TESSERACT Area-Under-Time stability metric (Fig. 8);
//! * [`shap`] — exact TreeSHAP over this workspace's trees/forests (Fig. 9),
//!   verified against brute-force Shapley values;
//! * [`dist`] / [`ranks`] — the underlying distributions and rank utilities.

pub mod aut;
pub mod dist;
pub mod friedman;
pub mod kruskal;
pub mod ranks;
pub mod shap;
pub mod shapiro;

pub use aut::area_under_time;
pub use friedman::{
    cliffs_delta, critical_difference, friedman, wilcoxon_signed_rank, CriticalDifference,
    Friedman, Wilcoxon,
};
pub use kruskal::{dunn_test, kruskal_wallis, DunnComparison, KruskalWallis};
pub use ranks::holm_bonferroni;
pub use shap::{forest_expected_value, forest_shap, tree_expected_value, tree_shap};
pub use shapiro::{shapiro_wilk, ShapiroWilk};
