//! Kruskal-Wallis H test and Dunn's pairwise post hoc test with
//! Holm-Bonferroni correction — the paper's Table III and Fig. 4 machinery.

use crate::dist::{chi2_sf, normal_sf};
use crate::ranks::{average_ranks, holm_bonferroni, tie_group_sizes};

/// Result of a Kruskal-Wallis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KruskalWallis {
    /// Tie-corrected H statistic.
    pub h: f64,
    /// Raw p-value (χ² with k−1 degrees of freedom).
    pub p_value: f64,
    /// Degrees of freedom (k − 1).
    pub df: usize,
}

/// Runs the Kruskal-Wallis test over `groups` (each a sample of
/// observations).
///
/// # Panics
/// Panics with fewer than 2 groups or any empty group.
pub fn kruskal_wallis(groups: &[Vec<f64>]) -> KruskalWallis {
    let k = groups.len();
    assert!(k >= 2, "Kruskal-Wallis requires at least two groups");
    assert!(
        groups.iter().all(|g| !g.is_empty()),
        "groups must be non-empty"
    );

    let pooled: Vec<f64> = groups.iter().flatten().copied().collect();
    let n = pooled.len() as f64;
    let ranks = average_ranks(&pooled);

    let mut h = 0.0;
    let mut offset = 0;
    for g in groups {
        let ni = g.len();
        let r_sum: f64 = ranks[offset..offset + ni].iter().sum();
        h += r_sum * r_sum / ni as f64;
        offset += ni;
    }
    h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

    // Tie correction: divide by 1 − Σ(t³−t)/(N³−N).
    let tie_sum: f64 = tie_group_sizes(&pooled)
        .iter()
        .map(|&t| (t * t * t - t) as f64)
        .sum();
    let correction = 1.0 - tie_sum / (n * n * n - n);
    if correction > 0.0 {
        h /= correction;
    }

    KruskalWallis {
        h,
        p_value: chi2_sf(h, k - 1),
        df: k - 1,
    }
}

/// One pairwise comparison from Dunn's test.
#[derive(Debug, Clone, PartialEq)]
pub struct DunnComparison {
    /// Index of the first group.
    pub group_a: usize,
    /// Index of the second group.
    pub group_b: usize,
    /// Dunn's z statistic.
    pub z: f64,
    /// Raw two-sided p-value.
    pub p_value: f64,
    /// Holm-Bonferroni adjusted p-value.
    pub p_adjusted: f64,
}

impl DunnComparison {
    /// Whether the comparison is significant at the paper's α = 0.05
    /// (adjusted).
    pub fn significant(&self) -> bool {
        self.p_adjusted < 0.05
    }
}

/// Runs Dunn's test (all pairwise comparisons) with Holm-Bonferroni
/// adjustment — "the appropriate nonparametric pairwise multiple comparison
/// procedure when a Kruskal-Wallis test is rejected".
///
/// # Panics
/// Panics with fewer than 2 groups or any empty group.
pub fn dunn_test(groups: &[Vec<f64>]) -> Vec<DunnComparison> {
    let k = groups.len();
    assert!(k >= 2, "Dunn's test requires at least two groups");
    assert!(
        groups.iter().all(|g| !g.is_empty()),
        "groups must be non-empty"
    );

    let pooled: Vec<f64> = groups.iter().flatten().copied().collect();
    let n = pooled.len() as f64;
    let ranks = average_ranks(&pooled);

    // Mean rank per group.
    let mut mean_ranks = Vec::with_capacity(k);
    let mut offset = 0;
    for g in groups {
        let ni = g.len();
        mean_ranks.push(ranks[offset..offset + ni].iter().sum::<f64>() / ni as f64);
        offset += ni;
    }

    // Tie-corrected variance term.
    let tie_sum: f64 = tie_group_sizes(&pooled)
        .iter()
        .map(|&t| (t * t * t - t) as f64)
        .sum();
    let variance_base = n * (n + 1.0) / 12.0 - tie_sum / (12.0 * (n - 1.0));

    let mut comparisons = Vec::with_capacity(k * (k - 1) / 2);
    let mut raw_ps = Vec::new();
    for a in 0..k {
        for b in (a + 1)..k {
            let se = (variance_base
                * (1.0 / groups[a].len() as f64 + 1.0 / groups[b].len() as f64))
                .sqrt();
            let z = (mean_ranks[a] - mean_ranks[b]) / se;
            let p = 2.0 * normal_sf(z.abs());
            raw_ps.push(p.min(1.0));
            comparisons.push(DunnComparison {
                group_a: a,
                group_b: b,
                z,
                p_value: p.min(1.0),
                p_adjusted: 0.0,
            });
        }
    }
    for (c, adj) in comparisons.iter_mut().zip(holm_bonferroni(&raw_ps)) {
        c.p_adjusted = adj;
    }
    comparisons
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_ml::SplitMix;

    #[test]
    fn identical_groups_are_not_significant() {
        let g = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]; 3];
        let kw = kruskal_wallis(&g);
        assert!(kw.p_value > 0.9, "p = {}", kw.p_value);
        assert!(dunn_test(&g).iter().all(|c| !c.significant()));
    }

    #[test]
    fn shifted_groups_are_detected() {
        let mut rng = SplitMix::new(5);
        let a: Vec<f64> = (0..30).map(|_| rng.normal()).collect();
        let b: Vec<f64> = (0..30).map(|_| rng.normal() + 3.0).collect();
        let c: Vec<f64> = (0..30).map(|_| rng.normal() + 6.0).collect();
        let kw = kruskal_wallis(&[a.clone(), b.clone(), c.clone()]);
        assert!(kw.p_value < 1e-6, "p = {}", kw.p_value);
        assert_eq!(kw.df, 2);
        let dunn = dunn_test(&[a, b, c]);
        assert_eq!(dunn.len(), 3);
        assert!(dunn.iter().all(DunnComparison::significant));
    }

    #[test]
    fn scipy_reference_value() {
        // scipy.stats.kruskal([1,3,5,7,9],[2,4,6,8,10]) → H≈0.2727, p≈0.6015
        let kw = kruskal_wallis(&[
            vec![1.0, 3.0, 5.0, 7.0, 9.0],
            vec![2.0, 4.0, 6.0, 8.0, 10.0],
        ]);
        assert!((kw.h - 0.2727).abs() < 1e-3, "H = {}", kw.h);
        assert!((kw.p_value - 0.6015).abs() < 1e-3, "p = {}", kw.p_value);
    }

    #[test]
    fn tie_correction_increases_h() {
        // With heavy ties the corrected H must not decrease.
        let g1 = vec![1.0, 1.0, 1.0, 2.0];
        let g2 = vec![2.0, 2.0, 3.0, 3.0];
        let kw = kruskal_wallis(&[g1.clone(), g2.clone()]);
        assert!(kw.h.is_finite() && kw.h > 0.0);
    }

    #[test]
    fn dunn_mixed_significance() {
        let mut rng = SplitMix::new(6);
        // a ≈ b, both far from c: exactly two significant pairs expected.
        let a: Vec<f64> = (0..25).map(|_| rng.normal()).collect();
        let b: Vec<f64> = (0..25).map(|_| rng.normal() * 1.01).collect();
        let c: Vec<f64> = (0..25).map(|_| rng.normal() + 8.0).collect();
        let dunn = dunn_test(&[a, b, c]);
        let sig: Vec<bool> = dunn.iter().map(DunnComparison::significant).collect();
        assert_eq!(sig, vec![false, true, true], "{dunn:?}");
    }

    #[test]
    fn adjusted_p_never_below_raw() {
        let mut rng = SplitMix::new(7);
        let groups: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..15).map(|_| rng.normal() + i as f64).collect())
            .collect();
        for c in dunn_test(&groups) {
            assert!(c.p_adjusted + 1e-12 >= c.p_value);
        }
    }
}
