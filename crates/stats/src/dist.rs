//! Probability distributions used by the hypothesis tests: standard normal
//! (CDF, quantile) and chi-square (survival function via the regularized
//! incomplete gamma function).

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF `Φ(x)`, accurate to ~1e-15 (via `erfc`-style
/// continued-fraction/series split).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 − Φ(x)` without cancellation.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function (W. J. Cody-style rational approximation;
/// max error ≈ 1.2e-7 relative, ample for p-values).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes' erfc approximation.
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm, |ε| < 1.15e-9).
///
/// # Panics
/// Panics when `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error (a={a}, x={x})");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        1.0 - gamma_p(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Continued-fraction evaluation of `Q(a, x)` for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / 1e-300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Chi-square survival function `P(X > x)` with `k` degrees of freedom.
pub fn chi2_sf(x: f64, k: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k as f64 / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.0249979).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.9986501).abs() < 1e-5);
    }

    #[test]
    fn normal_sf_complements_cdf() {
        for x in [-3.0, -1.0, 0.0, 0.5, 2.5] {
            assert!((normal_sf(x) - (1.0 - normal_cdf(x))).abs() < 1e-7);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p} x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_rejects_zero() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(10.0) - (362880.0f64).ln()).abs() < 1e-9);
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for (a, x) in [(0.5, 0.2), (2.0, 3.0), (5.0, 1.0), (10.0, 20.0)] {
            assert!(
                (gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10,
                "a={a} x={x}"
            );
        }
    }

    #[test]
    fn chi2_sf_reference_values() {
        // Classic chi-square table entries.
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(5.991, 2) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(16.919, 9) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(0.0, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi2_sf_with_df_one_matches_normal() {
        // P(χ²₁ > z²) = 2(1 − Φ(z))
        for z in [0.5, 1.0, 2.0, 3.0] {
            let lhs = chi2_sf(z * z, 1);
            let rhs = 2.0 * normal_sf(z);
            assert!((lhs - rhs).abs() < 1e-6, "z={z}: {lhs} vs {rhs}");
        }
    }
}
