//! Ranking utilities shared by the nonparametric tests.

/// Average ranks (1-based) with ties sharing their mean rank — the standard
/// "midrank" convention used by Kruskal-Wallis, Dunn, Friedman and Wilcoxon.
///
/// # Panics
/// Panics when any value is NaN.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("ranking requires non-NaN values")
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Sizes of tie groups (groups of equal values with size ≥ 2), for tie
/// corrections.
pub fn tie_group_sizes(values: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let mut groups = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        if j > i {
            groups.push(j - i + 1);
        }
        i = j + 1;
    }
    groups
}

/// Holm-Bonferroni step-down adjustment of p-values (the paper's correction
/// for both the Kruskal-Wallis table and Dunn's pairwise tests).
pub fn holm_bonferroni(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        p_values[a]
            .partial_cmp(&p_values[b])
            .expect("non-NaN p-values")
    });
    let mut adjusted = vec![0.0; m];
    let mut running_max = 0.0f64;
    for (k, &idx) in order.iter().enumerate() {
        let scaled = ((m - k) as f64 * p_values[idx]).min(1.0);
        running_max = running_max.max(scaled);
        adjusted[idx] = running_max;
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_ranking() {
        assert_eq!(average_ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ties_share_midranks() {
        // [5, 5] occupy ranks 1 and 2 → both get 1.5.
        assert_eq!(average_ranks(&[5.0, 5.0, 9.0]), vec![1.5, 1.5, 3.0]);
        // Triple tie in the middle.
        assert_eq!(
            average_ranks(&[1.0, 2.0, 2.0, 2.0, 3.0]),
            vec![1.0, 3.0, 3.0, 3.0, 5.0]
        );
    }

    #[test]
    fn tie_groups_detected() {
        assert_eq!(tie_group_sizes(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]), vec![2, 3]);
        assert!(tie_group_sizes(&[1.0, 2.0, 3.0]).is_empty());
    }

    #[test]
    fn holm_adjustment_worked_example() {
        // Classic example: p = [0.01, 0.04, 0.03] with m=3:
        // sorted: 0.01→×3=0.03, 0.03→×2=0.06, 0.04→×1=0.04→monotone→0.06.
        let adj = holm_bonferroni(&[0.01, 0.04, 0.03]);
        assert!((adj[0] - 0.03).abs() < 1e-12);
        assert!((adj[1] - 0.06).abs() < 1e-12);
        assert!((adj[2] - 0.06).abs() < 1e-12);
    }

    #[test]
    fn holm_caps_at_one() {
        let adj = holm_bonferroni(&[0.9, 0.8, 0.7]);
        assert!(adj.iter().all(|&p| p <= 1.0));
    }

    proptest! {
        #[test]
        fn ranks_sum_is_invariant(values in proptest::collection::vec(-100.0f64..100.0, 1..40)) {
            let ranks = average_ranks(&values);
            let n = values.len() as f64;
            let sum: f64 = ranks.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        }

        #[test]
        fn holm_is_monotone_in_sorted_order(ps in proptest::collection::vec(0.0f64..1.0, 1..20)) {
            let adj = holm_bonferroni(&ps);
            let mut order: Vec<usize> = (0..ps.len()).collect();
            order.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).unwrap());
            for w in order.windows(2) {
                prop_assert!(adj[w[0]] <= adj[w[1]] + 1e-12);
            }
            for (&p, &a) in ps.iter().zip(&adj) {
                prop_assert!(a + 1e-12 >= p);
            }
        }
    }
}
