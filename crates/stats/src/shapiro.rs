//! Shapiro-Wilk normality test (Royston's AS R94 approximation).
//!
//! The paper's PAM uses Shapiro-Wilk to decide between parametric and
//! nonparametric group comparisons; normality was rejected for 20 of 52
//! model-metric pairs, motivating Kruskal-Wallis.

use crate::dist::{normal_quantile, normal_sf};

/// Result of a Shapiro-Wilk test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapiroWilk {
    /// The W statistic (near 1 for normal samples).
    pub w: f64,
    /// Approximate p-value of the null hypothesis of normality.
    pub p_value: f64,
}

/// Runs the Shapiro-Wilk test.
///
/// # Panics
/// Panics when `n < 4` or `n > 5000` (the approximation's validity range)
/// or when the sample is constant.
pub fn shapiro_wilk(sample: &[f64]) -> ShapiroWilk {
    let n = sample.len();
    assert!(
        (4..=5000).contains(&n),
        "Shapiro-Wilk requires 4 <= n <= 5000"
    );
    let mut x: Vec<f64> = sample.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let range = x[n - 1] - x[0];
    assert!(
        range > 0.0,
        "Shapiro-Wilk is undefined for a constant sample"
    );

    // Expected normal order statistics (Blom scores).
    let m: Vec<f64> = (1..=n)
        .map(|i| normal_quantile((i as f64 - 0.375) / (n as f64 + 0.25)))
        .collect();
    let m_norm2: f64 = m.iter().map(|v| v * v).sum();

    // Royston's polynomial-corrected coefficients.
    let u = 1.0 / (n as f64).sqrt();
    let c: Vec<f64> = m.iter().map(|v| v / m_norm2.sqrt()).collect();
    let mut a = vec![0.0; n];
    if n <= 5 {
        let a_n = c[n - 1] + 0.221157 * u - 0.147981 * u.powi(2) - 2.071190 * u.powi(3)
            + 4.434685 * u.powi(4)
            - 2.706056 * u.powi(5);
        let phi = (m_norm2 - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * a_n * a_n);
        a[n - 1] = a_n;
        a[0] = -a_n;
        for i in 1..n - 1 {
            a[i] = m[i] / phi.sqrt();
        }
    } else {
        let a_n = c[n - 1] + 0.221157 * u - 0.147981 * u.powi(2) - 2.071190 * u.powi(3)
            + 4.434685 * u.powi(4)
            - 2.706056 * u.powi(5);
        let a_n1 = c[n - 2] + 0.042981 * u - 0.293762 * u.powi(2) - 1.752461 * u.powi(3)
            + 5.682633 * u.powi(4)
            - 3.582633 * u.powi(5);
        let phi = (m_norm2 - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2])
            / (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
        a[n - 1] = a_n;
        a[n - 2] = a_n1;
        a[0] = -a_n;
        a[1] = -a_n1;
        for i in 2..n - 2 {
            a[i] = m[i] / phi.sqrt();
        }
    }

    let mean = x.iter().sum::<f64>() / n as f64;
    let numerator: f64 = a
        .iter()
        .zip(&x)
        .map(|(ai, xi)| ai * xi)
        .sum::<f64>()
        .powi(2);
    let denominator: f64 = x.iter().map(|xi| (xi - mean) * (xi - mean)).sum();
    let w = (numerator / denominator).min(1.0);

    // P-value via Royston's normalizing transformations.
    let p_value = if n <= 11 {
        let nf = n as f64;
        let gamma = -2.273 + 0.459 * nf;
        let arg = gamma - (1.0 - w).ln();
        if arg <= 0.0 {
            // W so small the transform leaves the valid range: strongly
            // non-normal.
            0.0
        } else {
            let wt = -arg.ln();
            let mu = 0.5440 - 0.39978 * nf + 0.025054 * nf * nf - 0.0006714 * nf * nf * nf;
            let sigma =
                (1.3822 - 0.77857 * nf + 0.062767 * nf * nf - 0.0020322 * nf * nf * nf).exp();
            normal_sf((wt - mu) / sigma)
        }
    } else {
        let ln_n = (n as f64).ln();
        let wt = (1.0 - w).ln();
        let mu = 0.0038915 * ln_n.powi(3) - 0.083751 * ln_n.powi(2) - 0.31082 * ln_n - 1.5861;
        let sigma = (0.0030302 * ln_n.powi(2) - 0.082676 * ln_n - 0.4803).exp();
        normal_sf((wt - mu) / sigma)
    };

    ShapiroWilk {
        w,
        p_value: p_value.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_ml::SplitMix;

    #[test]
    fn normal_sample_is_not_rejected() {
        let mut rng = SplitMix::new(1);
        let sample: Vec<f64> = (0..50).map(|_| rng.normal()).collect();
        let result = shapiro_wilk(&sample);
        assert!(result.w > 0.95, "W = {}", result.w);
        assert!(result.p_value > 0.05, "p = {}", result.p_value);
    }

    #[test]
    fn uniform_sample_has_lower_w_than_normal() {
        let mut rng = SplitMix::new(2);
        let normal: Vec<f64> = (0..100).map(|_| rng.normal()).collect();
        let uniform: Vec<f64> = (0..100).map(|_| rng.unit()).collect();
        assert!(shapiro_wilk(&uniform).w < shapiro_wilk(&normal).w);
    }

    #[test]
    fn exponential_sample_is_rejected() {
        let mut rng = SplitMix::new(3);
        let sample: Vec<f64> = (0..80).map(|_| -rng.unit().max(1e-12).ln()).collect();
        let result = shapiro_wilk(&sample);
        assert!(
            result.p_value < 0.01,
            "p = {} (w = {})",
            result.p_value,
            result.w
        );
    }

    #[test]
    fn bimodal_sample_is_rejected() {
        let mut rng = SplitMix::new(4);
        let sample: Vec<f64> = (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    -5.0 + rng.normal() * 0.1
                } else {
                    5.0 + rng.normal() * 0.1
                }
            })
            .collect();
        assert!(shapiro_wilk(&sample).p_value < 0.01);
    }

    #[test]
    fn r_reference_value() {
        // R: shapiro.test(c(148, 154, 158, 160, 161, 162, 166, 170, 182, 195, 236))
        // gives W = 0.79, p = 0.0036 (a standard worked example).
        let sample = [
            148.0, 154.0, 158.0, 160.0, 161.0, 162.0, 166.0, 170.0, 182.0, 195.0, 236.0,
        ];
        let result = shapiro_wilk(&sample);
        assert!((result.w - 0.79).abs() < 0.02, "W = {}", result.w);
        assert!(result.p_value < 0.02, "p = {}", result.p_value);
    }

    #[test]
    fn small_n_works() {
        let r = shapiro_wilk(&[1.0, 2.0, 3.0, 4.5]);
        assert!(r.w > 0.8 && r.p_value > 0.1);
    }

    #[test]
    #[should_panic(expected = "4 <= n")]
    fn too_small_panics() {
        let _ = shapiro_wilk(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "constant sample")]
    fn constant_panics() {
        let _ = shapiro_wilk(&[2.0; 10]);
    }
}
