//! Cross-test consistency properties of the statistics toolkit — relations
//! that must hold between the tests, beyond each test's own unit suite.

use phishinghook_ml::SplitMix;
use phishinghook_stats::{
    dunn_test, holm_bonferroni, kruskal_wallis, shapiro_wilk, wilcoxon_signed_rank,
};

#[test]
fn shapiro_w_is_affine_invariant() {
    // W is scale- and location-free: W(a·x + b) = W(x).
    let mut rng = SplitMix::new(1);
    let xs: Vec<f64> = (0..40).map(|_| rng.normal()).collect();
    let base = shapiro_wilk(&xs).w;
    for (a, b) in [(2.0, 0.0), (0.5, 10.0), (100.0, -3.0)] {
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let w = shapiro_wilk(&ys).w;
        assert!((w - base).abs() < 1e-9, "a={a} b={b}: {w} vs {base}");
    }
}

#[test]
fn wilcoxon_exact_matches_normal_approximation_at_boundary() {
    // Around n = 25 the implementation switches from the exact DP to the
    // normal approximation; both must give similar p on the same data.
    let mut rng = SplitMix::new(2);
    // Distinct differences so the exact path is taken at n = 24.
    let a: Vec<f64> = (0..24).map(|i| i as f64 + rng.unit() * 0.4).collect();
    let b: Vec<f64> = a.iter().map(|x| x - 0.8 - rng.unit() * 0.1).collect();
    let exact = wilcoxon_signed_rank(&a, &b);

    // Same construction at n = 40 forces the approximation; a stronger
    // shift should give a smaller p than the weaker-shift exact case.
    let a2: Vec<f64> = (0..40).map(|i| i as f64 + rng.unit() * 0.4).collect();
    let b2: Vec<f64> = a2.iter().map(|x| x - 0.8 - rng.unit() * 0.1).collect();
    let approx = wilcoxon_signed_rank(&a2, &b2);
    assert!(exact.p_value < 0.01, "exact p = {}", exact.p_value);
    assert!(
        approx.p_value < exact.p_value * 10.0,
        "approx p = {}",
        approx.p_value
    );
}

#[test]
fn quiet_kruskal_implies_quiet_dunn() {
    // When Kruskal-Wallis sees nothing (p ≫ 0.05), Dunn's Holm-adjusted
    // pairwise tests must not fabricate significance.
    let mut rng = SplitMix::new(3);
    let groups: Vec<Vec<f64>> = (0..5)
        .map(|_| (0..20).map(|_| rng.normal()).collect())
        .collect();
    let kw = kruskal_wallis(&groups);
    if kw.p_value > 0.5 {
        for c in dunn_test(&groups) {
            assert!(
                !c.significant(),
                "{c:?} significant while KW p = {}",
                kw.p_value
            );
        }
    }
}

#[test]
fn loud_separation_is_seen_by_both_tests() {
    let mut rng = SplitMix::new(4);
    let groups: Vec<Vec<f64>> = (0..4)
        .map(|g| {
            (0..25)
                .map(|_| rng.normal() + (g * g) as f64 * 2.0)
                .collect()
        })
        .collect();
    let kw = kruskal_wallis(&groups);
    assert!(kw.p_value < 1e-6);
    let significant = dunn_test(&groups)
        .iter()
        .filter(|c| c.significant())
        .count();
    assert!(
        significant >= 4,
        "only {significant} Dunn pairs significant"
    );
}

#[test]
fn holm_bounded_by_bonferroni() {
    // Holm is uniformly more powerful than Bonferroni: adjusted p never
    // exceeds m·p (and never falls below the raw p).
    let ps = [0.001, 0.012, 0.04, 0.2, 0.6, 0.9];
    let m = ps.len() as f64;
    for (raw, adj) in ps.iter().zip(holm_bonferroni(&ps)) {
        assert!(adj <= (m * raw).min(1.0) + 1e-12);
        assert!(adj + 1e-12 >= *raw);
    }
}

#[test]
fn dunn_handles_many_groups_of_uneven_size() {
    let mut rng = SplitMix::new(5);
    let groups: Vec<Vec<f64>> = (0..13)
        .map(|g| {
            (0..(10 + g * 2))
                .map(|_| rng.normal() + g as f64 * 0.4)
                .collect()
        })
        .collect();
    let comparisons = dunn_test(&groups);
    assert_eq!(comparisons.len(), 13 * 12 / 2);
    for c in &comparisons {
        assert!(c.p_value.is_finite() && (0.0..=1.0).contains(&c.p_value));
        assert!(c.p_adjusted + 1e-12 >= c.p_value);
    }
    // The extreme pair (group 0 vs group 12) must separate.
    let extreme = comparisons
        .iter()
        .find(|c| c.group_a == 0 && c.group_b == 12)
        .expect("pair exists");
    assert!(extreme.significant(), "{extreme:?}");
}
