//! Interpreter conformance suite: one assertion per opcode semantics,
//! expressed as (program → returned word) table tests.

use phishinghook_evm::asm::Asm;
use phishinghook_evm::interp::{Interpreter, Status};
use phishinghook_evm::U256;

/// Runs `build` on a fresh program that must end by returning one word.
fn run_word(build: impl FnOnce(&mut Asm)) -> U256 {
    let mut asm = Asm::new();
    build(&mut asm);
    asm.op("PUSH0").op("MSTORE");
    asm.push_u64(32).op("PUSH0").op("RETURN");
    let code = asm.assemble().expect("program assembles");
    let result = Interpreter::new().run(&code);
    assert_eq!(result.status, Status::Success, "program halted: {result:?}");
    U256::from_be_bytes(&result.output)
}

fn w(v: u64) -> U256 {
    U256::from_u64(v)
}

#[test]
fn arithmetic_opcodes() {
    assert_eq!(
        run_word(|a| {
            a.push_u64(3).push_u64(10).op("ADD");
        }),
        w(13)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(3).push_u64(10).op("MUL");
        }),
        w(30)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(3).push_u64(10).op("SUB");
        }),
        w(7)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(3).push_u64(10).op("DIV");
        }),
        w(3)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(3).push_u64(10).op("MOD");
        }),
        w(1)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(0).push_u64(10).op("DIV");
        }),
        U256::ZERO
    );
    // EXP: 2^8. Stack order: EXP pops base first.
    assert_eq!(
        run_word(|a| {
            a.push_u64(8).push_u64(2).op("EXP");
        }),
        w(256)
    );
}

#[test]
fn modular_arithmetic_opcodes() {
    // ADDMOD pops a, b, N: (10 + 9) % 8 = 3.
    assert_eq!(
        run_word(|a| {
            a.push_u64(8).push_u64(9).push_u64(10).op("ADDMOD");
        }),
        w(3)
    );
    // MULMOD: (10 * 9) % 8 = 2.
    assert_eq!(
        run_word(|a| {
            a.push_u64(8).push_u64(9).push_u64(10).op("MULMOD");
        }),
        w(2)
    );
}

#[test]
fn signed_opcodes() {
    // SDIV: -8 / 2 = -4.
    let minus_eight = U256::ZERO.wrapping_sub(w(8));
    let got = run_word(|a| {
        a.push_u64(2).push(&minus_eight.to_be_bytes()).op("SDIV");
    });
    assert_eq!(got, U256::ZERO.wrapping_sub(w(4)));
    // SIGNEXTEND byte 0 of 0xFF → all ones.
    let got = run_word(|a| {
        a.push_u64(0xFF).push_u64(0).op("SIGNEXTEND");
    });
    assert_eq!(got, U256::MAX);
    // SLT: -1 < 0 → 1.
    let got = run_word(|a| {
        a.push_u64(0).push(&U256::MAX.to_be_bytes()).op("SLT");
    });
    assert_eq!(got, w(1));
    // SGT: 1 > -1 → 1.
    let got = run_word(|a| {
        a.push(&U256::MAX.to_be_bytes()).push_u64(1).op("SGT");
    });
    assert_eq!(got, w(1));
}

#[test]
fn comparison_and_bitwise_opcodes() {
    assert_eq!(
        run_word(|a| {
            a.push_u64(5).push_u64(3).op("LT");
        }),
        w(1)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(3).push_u64(5).op("GT");
        }),
        w(1)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(7).push_u64(7).op("EQ");
        }),
        w(1)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(0).op("ISZERO");
        }),
        w(1)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(0b1100).push_u64(0b1010).op("AND");
        }),
        w(0b1000)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(0b1100).push_u64(0b1010).op("OR");
        }),
        w(0b1110)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(0b1100).push_u64(0b1010).op("XOR");
        }),
        w(0b0110)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(0).op("NOT");
        }),
        U256::MAX
    );
    // BYTE 31 of 0xAB = 0xAB.
    assert_eq!(
        run_word(|a| {
            a.push_u64(0xAB).push_u64(31).op("BYTE");
        }),
        w(0xAB)
    );
}

#[test]
fn shift_opcodes() {
    // SHL pops shift then value.
    assert_eq!(
        run_word(|a| {
            a.push_u64(1).push_u64(4).op("SHL");
        }),
        w(16)
    );
    assert_eq!(
        run_word(|a| {
            a.push_u64(16).push_u64(4).op("SHR");
        }),
        w(1)
    );
    // SAR on -16 by 2 = -4.
    let minus_sixteen = U256::ZERO.wrapping_sub(w(16));
    let got = run_word(|a| {
        a.push(&minus_sixteen.to_be_bytes()).push_u64(2).op("SAR");
    });
    assert_eq!(got, U256::ZERO.wrapping_sub(w(4)));
}

#[test]
fn memory_opcodes() {
    // MSTORE8 writes a single byte; MLOAD reads the word around it.
    let got = run_word(|a| {
        a.push_u64(0xAB).push_u64(31).op("MSTORE8");
        a.op("PUSH0").op("MLOAD");
    });
    assert_eq!(got, w(0xAB));
    // MSIZE reflects the touched extent (one word after an MSTORE8 at 0).
    let got = run_word(|a| {
        a.push_u64(1).push_u64(0).op("MSTORE8");
        a.op("MSIZE");
    });
    assert_eq!(got, w(32));
}

#[test]
fn pc_and_codesize() {
    // PC at offset 0 is 0.
    assert_eq!(
        run_word(|a| {
            a.op("PC");
        }),
        U256::ZERO
    );
    let got = run_word(|a| {
        a.op("CODESIZE");
    });
    // Program: CODESIZE PUSH0 MSTORE PUSH1 32 PUSH0 RETURN = 1+1+1+2+1+1 = 7 bytes.
    assert_eq!(got, w(7));
}

#[test]
fn codecopy_reads_own_code() {
    // Copy the first byte of code (CODESIZE = 0x38) to memory and return it.
    let mut asm = Asm::new();
    asm.push_u64(1).op("PUSH0").op("PUSH0").op("CODECOPY");
    asm.op("PUSH0").op("MLOAD");
    asm.op("PUSH0").op("MSTORE");
    asm.push_u64(32).op("PUSH0").op("RETURN");
    let code = asm.assemble().expect("assembles");
    let result = Interpreter::new().run(&code);
    assert_eq!(result.status, Status::Success);
    // First code byte is PUSH1 (0x60), placed at the top byte of the word.
    assert_eq!(result.output[0], 0x60);
}

#[test]
fn calldatacopy_and_size() {
    let mut asm = Asm::new();
    asm.push_u64(32).op("PUSH0").op("PUSH0").op("CALLDATACOPY");
    asm.op("PUSH0").op("MLOAD").op("PUSH0").op("MSTORE");
    asm.push_u64(32).op("PUSH0").op("RETURN");
    let code = asm.assemble().expect("assembles");
    let mut interp = Interpreter::new();
    let mut calldata = vec![0u8; 32];
    calldata[0] = 0x7F;
    let result = interp.run_call(&code, &calldata);
    assert_eq!(result.output[0], 0x7F);

    let got = run_word(|a| {
        a.op("CALLDATASIZE");
    });
    assert_eq!(got, U256::ZERO);
}

#[test]
fn log_charges_per_byte() {
    // LOG1 over 64 bytes costs more than over 0 bytes.
    let run_gas = |len: u64| {
        let mut asm = Asm::new();
        asm.push_u64(7); // topic
        asm.push_u64(len).op("PUSH0").op("LOG1").op("STOP");
        let code = asm.assemble().expect("assembles");
        Interpreter::new().run(&code).gas_used
    };
    assert!(run_gas(64) > run_gas(0) + 8 * 63);
}

#[test]
fn environment_block_opcodes() {
    let mut interp = Interpreter::new();
    interp.env.chain_id = U256::from_u64(5);
    interp.env.base_fee = U256::from_u64(9);
    let mut asm = Asm::new();
    asm.op("CHAINID").op("BASEFEE").op("ADD");
    asm.op("PUSH0").op("MSTORE");
    asm.push_u64(32).op("PUSH0").op("RETURN");
    let code = asm.assemble().expect("assembles");
    let result = interp.run(&code);
    assert_eq!(U256::from_be_bytes(&result.output), w(14));
}

#[test]
fn deep_dup_and_swap() {
    // DUP16 and SWAP16 at full depth.
    let got = run_word(|a| {
        for i in 1..=16u64 {
            a.push_u64(i);
        }
        a.op("DUP16"); // duplicates the deepest (value 1)
        for _ in 0..16 {
            a.op("SWAP1").op("POP");
        }
    });
    assert_eq!(got, w(1));
}

#[test]
fn stack_overflow_detected() {
    let mut asm = Asm::new();
    asm.label("loop");
    asm.push_u64(1);
    asm.jump("loop");
    let code = asm.assemble().expect("assembles");
    let mut interp = Interpreter::new();
    interp.gas_limit = 100_000_000;
    let result = interp.run(&code);
    assert!(matches!(
        result.status,
        Status::Halted(phishinghook_evm::Halt::StackOverflow)
    ));
}
