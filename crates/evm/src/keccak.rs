//! Keccak-256, the EVM's hash function.
//!
//! Used by the interpreter's `SHA3` opcode and by the dataset layer to
//! deduplicate bytecodes and derive synthetic contract addresses (the paper
//! deduplicates 17,455 phishing bytecodes down to 3,458 unique ones).
//!
//! This is the original Keccak padding (`0x01`), not NIST SHA-3 (`0x06`),
//! matching Ethereum.

const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

fn keccak_f1600(state: &mut [u64; 25]) {
    for rc in RC.iter().take(ROUNDS) {
        // θ
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // χ
        for y in 0..5 {
            let row: [u64; 5] = core::array::from_fn(|x| state[5 * y + x]);
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ (!row[(x + 1) % 5] & row[(x + 2) % 5]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// Computes the Keccak-256 digest of `data`.
///
/// ```
/// use phishinghook_evm::keccak::keccak256;
///
/// // The famous Ethereum "empty code hash".
/// let digest = keccak256(b"");
/// assert_eq!(
///     hex(&digest),
///     "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
/// );
///
/// fn hex(b: &[u8]) -> String {
///     b.iter().map(|x| format!("{x:02x}")).collect()
/// }
/// ```
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    const RATE: usize = 136; // 1088-bit rate for 256-bit output
    let mut state = [0u64; 25];

    let mut chunks = data.chunks_exact(RATE);
    for block in &mut chunks {
        absorb(&mut state, block);
        keccak_f1600(&mut state);
    }

    // Final (padded) block: Keccak pad10*1 with domain byte 0x01.
    let rem = chunks.remainder();
    let mut block = [0u8; RATE];
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] ^= 0x01;
    block[RATE - 1] ^= 0x80;
    absorb(&mut state, &block);
    keccak_f1600(&mut state);

    let mut out = [0u8; 32];
    for i in 0..4 {
        out[8 * i..8 * i + 8].copy_from_slice(&state[i].to_le_bytes());
    }
    out
}

fn absorb(state: &mut [u64; 25], block: &[u8]) {
    for (i, lane) in block.chunks_exact(8).enumerate() {
        state[i] ^= u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
    }
}

/// A Keccak-256 digest as a first-class value: 32 bytes that hash, compare
/// and order cheaply, usable directly as a lookup key (verdict caches,
/// bytecode dedup sets) without re-hashing the preimage.
///
/// ```
/// use phishinghook_evm::keccak::Digest;
///
/// let d = Digest::of(b"");
/// assert!(d.to_hex().starts_with("c5d24601"));
/// assert_eq!(d, Digest::of(b""));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Keccak-256 of `data` (Ethereum's code-hash primitive).
    pub fn of(data: &[u8]) -> Digest {
        Digest(keccak256(data))
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex form (64 characters, no `0x` prefix).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest(0x{})", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

/// Formats a digest (or any byte slice) as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("writing to a String cannot fail");
    }
    s
}

/// Parses lowercase/uppercase hex (with optional `0x` prefix) into bytes.
///
/// # Errors
/// Returns `None` for odd-length or non-hex input.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            to_hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            to_hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn transfer_selector() {
        // The canonical ERC-20 selector test: keccak("transfer(address,uint256)")[0..4] = a9059cbb
        let d = keccak256(b"transfer(address,uint256)");
        assert_eq!(to_hex(&d[..4]), "a9059cbb");
    }

    #[test]
    fn long_input_crosses_rate_boundary() {
        // 200 bytes > 136-byte rate; check against a stable self-consistent value.
        let data = vec![0xAAu8; 200];
        let d1 = keccak256(&data);
        let d2 = keccak256(&data);
        assert_eq!(d1, d2);
        assert_ne!(d1, keccak256(&vec![0xAAu8; 201]));
    }

    #[test]
    fn exact_rate_block() {
        // Exactly 136 bytes exercises the full-block + empty-padded-block path.
        let data = vec![0x42u8; 136];
        let d = keccak256(&data);
        assert_ne!(d, keccak256(&[0x42u8; 135]));
    }

    #[test]
    fn digest_wrapper_matches_raw_hash_and_formats() {
        let d = Digest::of(b"abc");
        assert_eq!(*d.as_bytes(), keccak256(b"abc"));
        assert_eq!(d.to_hex(), to_hex(&keccak256(b"abc")));
        assert_eq!(format!("{d}"), format!("0x{}", d.to_hex()));
        assert!(format!("{d:?}").starts_with("Digest(0x4e036"));
        // Usable as a map key without re-hashing the preimage.
        let mut set = std::collections::HashSet::new();
        assert!(set.insert(d));
        assert!(!set.insert(Digest::of(b"abc")));
        assert!(set.insert(Digest::of(b"abd")));
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0x00, 0x01, 0xAB, 0xFF];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("0x6080").unwrap(), vec![0x60, 0x80]);
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }
}
