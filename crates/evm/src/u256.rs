//! 256-bit EVM words.
//!
//! A minimal, dependency-free implementation of the EVM's word type: wrapping
//! arithmetic modulo 2^256, unsigned and two's-complement signed operations,
//! bitwise logic and shifts — everything the [`crate::interp`] interpreter
//! needs.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer, stored as four little-endian 64-bit limbs.
///
/// All arithmetic wraps modulo 2^256, matching EVM semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum value, 2^256 - 1.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Builds a word from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Builds a word from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Interprets up to 32 big-endian bytes as a word (shorter inputs are
    /// left-padded with zeros, as the EVM does for `PUSH` immediates).
    ///
    /// # Panics
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256 takes at most 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let off = 32 - 8 * (i + 1);
            let mut v = 0u64;
            for b in &buf[off..off + 8] {
                v = (v << 8) | u64::from(*b);
            }
            *limb = v;
        }
        U256(limbs)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            let off = 32 - 8 * (i + 1);
            out[off..off + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// The low 64 bits.
    pub fn low_u64(self) -> u64 {
        self.0[0]
    }

    /// The low 128 bits.
    pub fn low_u128(self) -> u128 {
        u128::from(self.0[0]) | (u128::from(self.0[1]) << 64)
    }

    /// `true` iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Converts to `usize` if it fits, else `None`.
    pub fn to_usize(self) -> Option<usize> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            usize::try_from(self.0[0]).ok()
        } else {
            None
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Whether the top (sign) bit is set, for signed interpretations.
    pub fn is_negative_signed(self) -> bool {
        self.0[3] >> 63 == 1
    }

    /// Wrapping addition modulo 2^256.
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            *limb = s2;
            carry = c1 | c2;
        }
        U256(out)
    }

    /// Wrapping subtraction modulo 2^256.
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
            *limb = d2;
            borrow = b1 | b2;
        }
        U256(out)
    }

    /// Wrapping multiplication modulo 2^256.
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        for i in 0..4 {
            if self.0[i] == 0 {
                continue;
            }
            let mut carry = 0u128;
            for j in 0..4 - i {
                let idx = i + j;
                let prod =
                    u128::from(self.0[i]) * u128::from(rhs.0[j]) + u128::from(out[idx]) + carry;
                out[idx] = prod as u64;
                carry = prod >> 64;
            }
        }
        U256(out)
    }

    /// Wrapping two's-complement negation.
    pub fn wrapping_neg(self) -> U256 {
        U256::ZERO.wrapping_sub(self)
    }

    /// Unsigned division; the EVM defines `x / 0 = 0`.
    #[allow(clippy::should_implement_trait)] // EVM semantics, not std ops
    pub fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }

    /// Unsigned remainder; the EVM defines `x % 0 = 0`.
    #[allow(clippy::should_implement_trait)] // EVM semantics, not std ops
    pub fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }

    /// Simultaneous unsigned quotient and remainder (`(0, 0)` for a zero
    /// divisor, matching EVM semantics).
    pub fn div_rem(self, rhs: U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < rhs {
            return (U256::ZERO, self);
        }
        if rhs.bits() <= 64 && self.bits() <= 128 {
            let a = self.low_u128();
            let b = u128::from(rhs.low_u64());
            return (U256::from_u128(a / b), U256::from_u128(a % b));
        }
        // Bitwise long division.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= rhs {
                remainder = remainder.wrapping_sub(rhs);
                quotient = quotient.set_bit(i);
            }
        }
        (quotient, remainder)
    }

    /// Signed division with EVM semantics (`SDIV`): truncation toward zero,
    /// `x / 0 = 0`, and `MIN / -1 = MIN`.
    pub fn sdiv(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let (an, a) = self.abs_signed();
        let (bn, b) = rhs.abs_signed();
        let q = a.div(b);
        if an ^ bn {
            q.wrapping_neg()
        } else {
            q
        }
    }

    /// Signed remainder with EVM semantics (`SMOD`): the result takes the
    /// sign of the dividend, `x % 0 = 0`.
    pub fn smod(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let (an, a) = self.abs_signed();
        let (_, b) = rhs.abs_signed();
        let r = a.rem(b);
        if an {
            r.wrapping_neg()
        } else {
            r
        }
    }

    fn abs_signed(self) -> (bool, U256) {
        if self.is_negative_signed() {
            (true, self.wrapping_neg())
        } else {
            (false, self)
        }
    }

    /// `(a + b) % m` without intermediate overflow; `m = 0` yields 0.
    pub fn addmod(self, rhs: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        // Reduce first, then handle the single potential overflow bit.
        let a = self.rem(m);
        let b = rhs.rem(m);
        let sum = a.wrapping_add(b);
        // Overflowed iff the wrapped sum is smaller than an addend.
        if sum < a {
            // sum_real = sum + 2^256; subtracting m once is enough because
            // a, b < m <= 2^256, so sum_real < 2m... not necessarily < 2^256+m.
            // Compute (2^256 - m) + sum = sum_real - m, both mod-2^256 safe.
            let wrapped = sum.wrapping_add(U256::ZERO.wrapping_sub(m));
            wrapped.rem(m)
        } else {
            sum.rem(m)
        }
    }

    /// `(a * b) % m` without intermediate overflow; `m = 0` yields 0.
    pub fn mulmod(self, rhs: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        // Russian-peasant multiplication with modular reduction at each step.
        let mut result = U256::ZERO;
        let mut a = self.rem(m);
        let mut b = rhs;
        while !b.is_zero() {
            if b.0[0] & 1 == 1 {
                result = result.addmod(a, m);
            }
            a = a.addmod(a, m);
            b = b.shr(1);
        }
        result
    }

    /// Exponentiation modulo 2^256 (`EXP`).
    pub fn pow(self, mut exp: U256) -> U256 {
        let mut base = self;
        let mut acc = U256::ONE;
        while !exp.is_zero() {
            if exp.0[0] & 1 == 1 {
                acc = acc.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
            exp = exp.shr(1);
        }
        acc
    }

    /// `SIGNEXTEND`: extends the sign of the value in the lowest
    /// `byte_index + 1` bytes across the full word.
    pub fn signextend(self, byte_index: U256) -> U256 {
        match byte_index.to_usize() {
            Some(i) if i < 31 => {
                let bit = 8 * i + 7;
                if self.bit(bit as u32) {
                    // Set all bits above `bit`.
                    let mask = U256::MAX.shl((bit + 1) as u32);
                    U256([
                        self.0[0] | mask.0[0],
                        self.0[1] | mask.0[1],
                        self.0[2] | mask.0[2],
                        self.0[3] | mask.0[3],
                    ])
                } else {
                    let mask = U256::MAX.shr((256 - bit - 1) as u32);
                    U256([
                        self.0[0] & mask.0[0],
                        self.0[1] & mask.0[1],
                        self.0[2] & mask.0[2],
                        self.0[3] & mask.0[3],
                    ])
                }
            }
            _ => self,
        }
    }

    /// `BYTE`: the `i`-th byte of the word counting from the most significant
    /// (index 0), or zero if out of range.
    pub fn byte(self, index: U256) -> U256 {
        match index.to_usize() {
            Some(i) if i < 32 => U256::from_u64(u64::from(self.to_be_bytes()[i])),
            _ => U256::ZERO,
        }
    }

    fn bit(self, i: u32) -> bool {
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    fn set_bit(mut self, i: u32) -> U256 {
        self.0[(i / 64) as usize] |= 1 << (i % 64);
        self
    }

    /// Left shift; shifts of 256 or more yield zero.
    #[allow(clippy::should_implement_trait)] // EVM semantics, not std ops
    pub fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }

    /// Logical right shift; shifts of 256 or more yield zero.
    #[allow(clippy::should_implement_trait)] // EVM semantics, not std ops
    pub fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate().take(4 - limb_shift) {
            *limb = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                *limb |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }

    /// Arithmetic right shift (`SAR`), preserving the sign bit.
    pub fn sar(self, shift: u32) -> U256 {
        let neg = self.is_negative_signed();
        if shift >= 256 {
            return if neg { U256::MAX } else { U256::ZERO };
        }
        let logical = self.shr(shift);
        if neg && shift > 0 {
            let fill = U256::MAX.shl(256 - shift);
            U256([
                logical.0[0] | fill.0[0],
                logical.0[1] | fill.0[1],
                logical.0[2] | fill.0[2],
                logical.0[3] | fill.0[3],
            ])
        } else {
            logical
        }
    }

    /// Signed less-than comparison (`SLT`).
    pub fn slt(self, rhs: U256) -> bool {
        match (self.is_negative_signed(), rhs.is_negative_signed()) {
            (true, false) => true,
            (false, true) => false,
            _ => self < rhs,
        }
    }

    /// Signed greater-than comparison (`SGT`).
    pub fn sgt(self, rhs: U256) -> bool {
        rhs.slt(self)
    }

    /// Bitwise AND.
    pub fn and(self, r: U256) -> U256 {
        U256([
            self.0[0] & r.0[0],
            self.0[1] & r.0[1],
            self.0[2] & r.0[2],
            self.0[3] & r.0[3],
        ])
    }

    /// Bitwise OR.
    pub fn or(self, r: U256) -> U256 {
        U256([
            self.0[0] | r.0[0],
            self.0[1] | r.0[1],
            self.0[2] | r.0[2],
            self.0[3] | r.0[3],
        ])
    }

    /// Bitwise XOR.
    pub fn xor(self, r: U256) -> U256 {
        U256([
            self.0[0] ^ r.0[0],
            self.0[1] ^ r.0[1],
            self.0[2] ^ r.0[2],
            self.0[3] ^ r.0[3],
        ])
    }

    /// Bitwise NOT.
    #[allow(clippy::should_implement_trait)] // EVM semantics, not std ops
    pub fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{self:x})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{self:x}")
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:016x}", self.0[i])?;
            } else if self.0[i] != 0 || i == 0 {
                write!(f, "{:x}", self.0[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn be_bytes_roundtrip() {
        let x = U256([
            0x0123456789abcdef,
            0xfedcba9876543210,
            0xdeadbeefcafebabe,
            0x1122334455667788,
        ]);
        assert_eq!(U256::from_be_bytes(&x.to_be_bytes()), x);
    }

    #[test]
    fn short_be_bytes_left_pad() {
        assert_eq!(U256::from_be_bytes(&[0x80]), U256::from_u64(0x80));
        assert_eq!(U256::from_be_bytes(&[0x01, 0x00]), U256::from_u64(0x100));
        assert_eq!(U256::from_be_bytes(&[]), U256::ZERO);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
        assert_eq!(w(5).wrapping_add(w(7)), w(12));
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(U256::ZERO.wrapping_sub(U256::ONE), U256::MAX);
        assert_eq!(w(12).wrapping_sub(w(7)), w(5));
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = U256::from_u128(u128::MAX);
        let b = w(2);
        let expect = U256([u128::MAX as u64 - 1, u64::MAX, 1, 0]);
        assert_eq!(a.wrapping_mul(b), expect);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(w(42).div(U256::ZERO), U256::ZERO);
        assert_eq!(w(42).rem(U256::ZERO), U256::ZERO);
        assert_eq!(w(42).sdiv(U256::ZERO), U256::ZERO);
        assert_eq!(w(42).smod(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn long_division_large_operands() {
        let a = U256([0, 0, 0, 1]); // 2^192
        let b = U256([0, 1, 0, 0]); // 2^64
        assert_eq!(a.div(b), U256([0, 0, 1, 0])); // 2^128
        assert_eq!(a.rem(b), U256::ZERO);
    }

    #[test]
    fn sdiv_smod_signs() {
        let minus_seven = w(7).wrapping_neg();
        let three = w(3);
        assert_eq!(minus_seven.sdiv(three), w(2).wrapping_neg());
        assert_eq!(minus_seven.smod(three), w(1).wrapping_neg());
        assert_eq!(w(7).sdiv(three.wrapping_neg()), w(2).wrapping_neg());
        assert_eq!(w(7).smod(three.wrapping_neg()), w(1));
    }

    #[test]
    fn sdiv_min_by_minus_one() {
        let min = U256([0, 0, 0, 1 << 63]); // -2^255
        assert_eq!(min.sdiv(U256::MAX), min); // MAX is -1 signed
    }

    #[test]
    fn addmod_mulmod_no_overflow() {
        assert_eq!(U256::MAX.addmod(U256::MAX, w(12)), {
            // (2^256-1) % 12 = 3 (2^256 % 12 = 4), so (4-1 + 4-1) % 12 = 6
            w(6)
        });
        assert_eq!(U256::MAX.mulmod(U256::MAX, w(12)), w(9));
        assert_eq!(w(10).addmod(w(10), U256::ZERO), U256::ZERO);
        assert_eq!(w(10).mulmod(w(10), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(w(2).pow(w(10)), w(1024));
        assert_eq!(w(0).pow(w(0)), U256::ONE); // EVM defines 0^0 = 1
        assert_eq!(w(3).pow(w(0)), U256::ONE);
        // 2^256 wraps to 0.
        assert_eq!(w(2).pow(w(256)), U256::ZERO);
    }

    #[test]
    fn signextend_positive_and_negative() {
        // 0xFF at byte 0 sign-extends to -1.
        assert_eq!(w(0xFF).signextend(U256::ZERO), U256::MAX);
        // 0x7F stays positive.
        assert_eq!(w(0x7F).signextend(U256::ZERO), w(0x7F));
        // Out-of-range index is a no-op.
        assert_eq!(w(0xFF).signextend(w(31)), w(0xFF));
        assert_eq!(w(0xFF).signextend(w(4000)), w(0xFF));
    }

    #[test]
    fn byte_indexing_is_big_endian() {
        let x = U256::from_be_bytes(&[0xAB, 0xCD]);
        assert_eq!(x.byte(w(31)), w(0xCD));
        assert_eq!(x.byte(w(30)), w(0xAB));
        assert_eq!(x.byte(w(0)), U256::ZERO);
        assert_eq!(x.byte(w(32)), U256::ZERO);
    }

    #[test]
    fn shifts() {
        assert_eq!(w(1).shl(255).shr(255), w(1));
        assert_eq!(w(1).shl(256), U256::ZERO);
        assert_eq!(U256::MAX.shr(256), U256::ZERO);
        assert_eq!(U256::MAX.sar(255), U256::MAX);
        assert_eq!(w(8).sar(2), w(2));
        let minus_eight = w(8).wrapping_neg();
        assert_eq!(minus_eight.sar(2), w(2).wrapping_neg());
    }

    #[test]
    fn signed_comparisons() {
        let minus_one = U256::MAX;
        assert!(minus_one.slt(U256::ZERO));
        assert!(U256::ZERO.sgt(minus_one));
        assert!(w(1).sgt(U256::ZERO));
        assert!(!w(1).slt(w(1)));
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", U256::ZERO), "0");
        assert_eq!(format!("{:x}", w(255)), "ff");
        assert_eq!(format!("{:x}", U256([0, 1, 0, 0])), "10000000000000000");
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(w(a as u128).wrapping_add(w(b as u128)), w(a as u128 + b as u128));
        }

        #[test]
        fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(w(a as u128).wrapping_mul(w(b as u128)), w(a as u128 * b as u128));
        }

        #[test]
        fn div_rem_reconstruct(a in any::<u128>(), b in 1u128..) {
            let (q, r) = w(a).div_rem(w(b));
            prop_assert_eq!(q.wrapping_mul(w(b)).wrapping_add(r), w(a));
            prop_assert!(r < w(b));
        }

        #[test]
        fn sub_add_inverse(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(w(a).wrapping_add(w(b)).wrapping_sub(w(b)), w(a));
        }

        #[test]
        fn shl_then_shr(a in any::<u64>(), s in 0u32..192) {
            prop_assert_eq!(w(a as u128).shl(s).shr(s), w(a as u128));
        }

        #[test]
        fn be_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..=32)) {
            let x = U256::from_be_bytes(&bytes);
            let back = x.to_be_bytes();
            // The trailing `bytes.len()` bytes must match the input.
            prop_assert_eq!(&back[32 - bytes.len()..], &bytes[..]);
        }

        #[test]
        fn mulmod_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
            let expect = (u128::from(a) * u128::from(b)) % u128::from(m);
            prop_assert_eq!(w(a as u128).mulmod(w(b as u128), w(m as u128)), w(expect));
        }
    }
}
