//! The bytecode disassembler module (BDM).
//!
//! Disassembles deployed runtime bytecode into `(mnemonic, operand, gas)`
//! instruction triplets, exactly as the paper's enhanced `evmdasm` does:
//! `0x6080604052` becomes `(PUSH1, 0x80, 3), (PUSH1, 0x40, 3), (MSTORE, NaN→3)`.
//!
//! Two behaviours the paper calls out explicitly are reproduced here:
//!
//! * `PUSH0` (`0x5F`, added post-Arrow-Glacier) is a first-class opcode;
//! * every byte not defined at the Shanghai fork is reported as an `INVALID`
//!   instruction (the designated `0xFE` and all unassigned bytes alike), so
//!   histogram features get a single INVALID bucket.

use crate::opcode::{Gas, OpcodeInfo, ShanghaiRegistry};
use std::fmt;

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Byte offset of the opcode within the bytecode.
    pub offset: usize,
    /// The raw opcode byte.
    pub byte: u8,
    /// Registry metadata, `None` when the byte is undefined at Shanghai.
    pub info: Option<&'static OpcodeInfo>,
    /// Immediate operand bytes (`PUSH1..=PUSH32` payload), empty otherwise.
    pub operand: Vec<u8>,
    /// `true` if this was a `PUSH` whose operand ran past the end of the code.
    pub truncated: bool,
}

impl Instruction {
    /// Human-readable mnemonic. Undefined bytes report `"INVALID"`.
    pub fn mnemonic(&self) -> &'static str {
        self.info.map_or("INVALID", |i| i.mnemonic)
    }

    /// Base gas cost; undefined bytes report [`Gas::Nan`].
    pub fn gas(&self) -> Gas {
        self.info.map_or(Gas::Nan, |i| i.gas)
    }

    /// Whether the byte is defined at the Shanghai fork.
    pub fn is_defined(&self) -> bool {
        self.info.is_some()
    }

    /// Operand formatted as `0x…` hex, or `NaN` when there is no operand —
    /// the textual form the paper's `.csv` output uses.
    pub fn operand_hex(&self) -> String {
        if self.operand.is_empty() {
            "NaN".to_owned()
        } else {
            format!("0x{}", crate::keccak::to_hex(&self.operand))
        }
    }

    /// Total encoded length (opcode byte + operand bytes actually present).
    pub fn encoded_len(&self) -> usize {
        1 + self.operand.len()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.mnemonic(),
            self.operand_hex(),
            self.gas()
        )
    }
}

/// Disassembles `code` into its instruction sequence.
///
/// Never fails: undefined bytes become `INVALID` instructions and a `PUSH`
/// whose immediate runs past the end of the code yields a truncated operand
/// (flagged via [`Instruction::truncated`]), mirroring `evmdasm`'s permissive
/// behaviour on real-world (often metadata-suffixed) bytecode.
pub fn disassemble(code: &[u8]) -> Vec<Instruction> {
    let reg = ShanghaiRegistry::shared();
    let mut out = Vec::with_capacity(code.len());
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        let info = reg.get(byte);
        let imm = info.map_or(0, |i| usize::from(i.immediate_bytes));
        let avail = code.len() - pc - 1;
        let take = imm.min(avail);
        out.push(Instruction {
            offset: pc,
            byte,
            info,
            operand: code[pc + 1..pc + 1 + take].to_vec(),
            truncated: take < imm,
        });
        pc += 1 + take;
    }
    out
}

/// Re-encodes an instruction sequence back into bytecode.
///
/// `assemble(&disassemble(code)) == code` holds for every input (the
/// round-trip property tested below), because truncated operands are stored
/// verbatim.
pub fn assemble_instructions(instructions: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instructions.iter().map(Instruction::encoded_len).sum());
    for ins in instructions {
        out.push(ins.byte);
        out.extend_from_slice(&ins.operand);
    }
    out
}

/// Renders the paper's `.csv` disassembly format: one
/// `offset,mnemonic,operand,gas` row per instruction, with a header.
pub fn to_csv(instructions: &[Instruction]) -> String {
    let mut s = String::from("offset,mnemonic,operand,gas\n");
    for ins in instructions {
        use std::fmt::Write;
        writeln!(
            s,
            "{},{},{},{}",
            ins.offset,
            ins.mnemonic(),
            ins.operand_hex(),
            ins.gas()
        )
        .expect("writing to a String cannot fail");
    }
    s
}

/// Extracts just the mnemonic sequence (the input to sequence models).
pub fn mnemonics(instructions: &[Instruction]) -> Vec<&'static str> {
    instructions.iter().map(Instruction::mnemonic).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_6080604052() {
        // The paper: 0x6080604052 disassembles to
        // (PUSH1, 0x80, 3), (PUSH1, 0x40, 3), (MSTORE, NaN, 3).
        let ins = disassemble(&[0x60, 0x80, 0x60, 0x40, 0x52]);
        assert_eq!(ins.len(), 3);
        assert_eq!(ins[0].to_string(), "(PUSH1, 0x80, 3)");
        assert_eq!(ins[1].to_string(), "(PUSH1, 0x40, 3)");
        assert_eq!(ins[2].to_string(), "(MSTORE, NaN, 3)");
        assert_eq!(ins[2].offset, 4);
    }

    #[test]
    fn push0_supported() {
        let ins = disassemble(&[0x5F, 0x00]);
        assert_eq!(ins[0].mnemonic(), "PUSH0");
        assert!(ins[0].operand.is_empty());
        assert_eq!(ins[1].mnemonic(), "STOP");
    }

    #[test]
    fn undefined_bytes_become_invalid() {
        let ins = disassemble(&[0x0C, 0xFE, 0xEF]);
        assert_eq!(ins.len(), 3);
        for i in &ins {
            assert_eq!(i.mnemonic(), "INVALID");
            assert_eq!(i.gas(), crate::opcode::Gas::Nan);
        }
        // Only 0xFE is *defined* as INVALID; the others are undefined bytes.
        assert!(!ins[0].is_defined());
        assert!(ins[1].is_defined());
        assert!(!ins[2].is_defined());
    }

    #[test]
    fn truncated_push_at_end() {
        // PUSH32 with only 2 operand bytes available.
        let ins = disassemble(&[0x7F, 0xAA, 0xBB]);
        assert_eq!(ins.len(), 1);
        assert!(ins[0].truncated);
        assert_eq!(ins[0].operand, vec![0xAA, 0xBB]);
    }

    #[test]
    fn empty_code() {
        assert!(disassemble(&[]).is_empty());
    }

    #[test]
    fn csv_format() {
        let csv = to_csv(&disassemble(&[0x60, 0x80, 0x00]));
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("offset,mnemonic,operand,gas"));
        assert_eq!(lines.next(), Some("0,PUSH1,0x80,3"));
        assert_eq!(lines.next(), Some("2,STOP,NaN,0"));
    }

    #[test]
    fn offsets_account_for_immediates() {
        // PUSH2 0x0102, ADD, PUSH1 0x00
        let ins = disassemble(&[0x61, 0x01, 0x02, 0x01, 0x60, 0x00]);
        assert_eq!(ins[0].offset, 0);
        assert_eq!(ins[1].offset, 3);
        assert_eq!(ins[2].offset, 4);
    }

    proptest! {
        #[test]
        fn disassemble_assemble_roundtrip(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let ins = disassemble(&code);
            prop_assert_eq!(assemble_instructions(&ins), code);
        }

        #[test]
        fn encoded_lengths_sum_to_code_len(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let ins = disassemble(&code);
            let total: usize = ins.iter().map(Instruction::encoded_len).sum();
            prop_assert_eq!(total, code.len());
        }

        #[test]
        fn offsets_are_strictly_increasing(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let ins = disassemble(&code);
            for w in ins.windows(2) {
                prop_assert!(w[0].offset < w[1].offset);
            }
        }
    }
}
