//! The bytecode disassembler module (BDM).
//!
//! Disassembles deployed runtime bytecode into `(mnemonic, operand, gas)`
//! instruction triplets, exactly as the paper's enhanced `evmdasm` does:
//! `0x6080604052` becomes `(PUSH1, 0x80, 3), (PUSH1, 0x40, 3), (MSTORE, NaN→3)`.
//!
//! Two behaviours the paper calls out explicitly are reproduced here:
//!
//! * `PUSH0` (`0x5F`, added post-Arrow-Glacier) is a first-class opcode;
//! * every byte not defined at the Shanghai fork is reported as an `INVALID`
//!   instruction (the designated `0xFE` and all unassigned bytes alike), so
//!   histogram features get a single INVALID bucket.
//!
//! # Streaming vs. collecting
//!
//! There are two disassembly APIs over the same decode rules:
//!
//! * [`DisasmIter`] (via [`disasm_iter`]) — the zero-allocation streaming
//!   path. Each [`Op`] borrows its operand as a `&[u8]` slice into the
//!   bytecode and resolves metadata through the dense
//!   [`OpTable`], so a full pass touches no heap.
//!   All feature extractors run on this path.
//! * [`disassemble`] — the collecting wrapper, producing owned
//!   [`Instruction`]s (one `Vec<u8>` operand each). Kept for callers that
//!   need owned instruction sequences (CSV rendering, interpreter tooling)
//!   and as the reference implementation the streaming path is
//!   property-tested against.

use crate::opcode::{Gas, OpTable, OpcodeInfo, ShanghaiRegistry};
use std::fmt;

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Byte offset of the opcode within the bytecode.
    pub offset: usize,
    /// The raw opcode byte.
    pub byte: u8,
    /// Registry metadata, `None` when the byte is undefined at Shanghai.
    pub info: Option<&'static OpcodeInfo>,
    /// Immediate operand bytes (`PUSH1..=PUSH32` payload), empty otherwise.
    pub operand: Vec<u8>,
    /// `true` if this was a `PUSH` whose operand ran past the end of the code.
    pub truncated: bool,
}

impl Instruction {
    /// Human-readable mnemonic. Undefined bytes report `"INVALID"`.
    pub fn mnemonic(&self) -> &'static str {
        self.info.map_or("INVALID", |i| i.mnemonic)
    }

    /// Base gas cost; undefined bytes report [`Gas::Nan`].
    pub fn gas(&self) -> Gas {
        self.info.map_or(Gas::Nan, |i| i.gas)
    }

    /// Whether the byte is defined at the Shanghai fork.
    pub fn is_defined(&self) -> bool {
        self.info.is_some()
    }

    /// Operand formatted as `0x…` hex, or `NaN` when there is no operand —
    /// the textual form the paper's `.csv` output uses.
    pub fn operand_hex(&self) -> String {
        if self.operand.is_empty() {
            "NaN".to_owned()
        } else {
            format!("0x{}", crate::keccak::to_hex(&self.operand))
        }
    }

    /// Total encoded length (opcode byte + operand bytes actually present).
    pub fn encoded_len(&self) -> usize {
        1 + self.operand.len()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.mnemonic(),
            self.operand_hex(),
            self.gas()
        )
    }
}

/// One streamed instruction: the borrowing counterpart of [`Instruction`].
///
/// The operand is a slice into the disassembled bytecode, so producing an
/// `Op` never allocates. Metadata (mnemonic, gas, defined-ness) resolves
/// through the dense [`OpTable`] on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op<'a> {
    /// Byte offset of the opcode within the bytecode.
    pub offset: usize,
    /// The raw opcode byte.
    pub byte: u8,
    /// Immediate operand bytes, borrowed from the bytecode.
    pub operand: &'a [u8],
    /// `true` if this was a `PUSH` whose operand ran past the end of the code.
    pub truncated: bool,
}

impl<'a> Op<'a> {
    /// Dense mnemonic id (index into
    /// [`SHANGHAI_OPCODES`](crate::opcode::SHANGHAI_OPCODES)); undefined
    /// bytes report the `INVALID` id.
    #[inline]
    pub fn mnemonic_id(&self) -> u16 {
        OpTable::shared().mnemonic_id(self.byte)
    }

    /// Human-readable mnemonic. Undefined bytes report `"INVALID"`.
    #[inline]
    pub fn mnemonic(&self) -> &'static str {
        crate::opcode::mnemonic_str(self.mnemonic_id())
    }

    /// Base gas cost; undefined bytes report [`Gas::Nan`].
    #[inline]
    pub fn gas(&self) -> Gas {
        OpTable::shared().gas(self.byte)
    }

    /// Whether the byte is defined at the Shanghai fork.
    #[inline]
    pub fn is_defined(&self) -> bool {
        OpTable::shared().is_defined(self.byte)
    }

    /// Registry metadata, `None` when the byte is undefined at Shanghai.
    pub fn info(&self) -> Option<&'static OpcodeInfo> {
        ShanghaiRegistry::shared().get(self.byte)
    }

    /// Total encoded length (opcode byte + operand bytes actually present).
    #[inline]
    pub fn encoded_len(&self) -> usize {
        1 + self.operand.len()
    }

    /// Materializes an owned [`Instruction`] (allocates the operand).
    pub fn to_instruction(&self) -> Instruction {
        Instruction {
            offset: self.offset,
            byte: self.byte,
            info: self.info(),
            operand: self.operand.to_vec(),
            truncated: self.truncated,
        }
    }
}

/// Zero-allocation streaming disassembler.
///
/// Yields [`Op`]s over the bytecode with the exact decode rules of
/// [`disassemble`] — undefined bytes become `INVALID`, truncated `PUSH`
/// operands are flagged — but without materializing any per-instruction
/// heap state. Construct with [`disasm_iter`].
#[derive(Debug, Clone)]
pub struct DisasmIter<'a> {
    code: &'a [u8],
    pc: usize,
    table: &'static OpTable,
}

impl<'a> DisasmIter<'a> {
    /// Starts a streaming disassembly of `code`.
    pub fn new(code: &'a [u8]) -> Self {
        DisasmIter {
            code,
            pc: 0,
            table: OpTable::shared(),
        }
    }
}

impl<'a> Iterator for DisasmIter<'a> {
    type Item = Op<'a>;

    #[inline]
    fn next(&mut self) -> Option<Op<'a>> {
        if self.pc >= self.code.len() {
            return None;
        }
        let offset = self.pc;
        let byte = self.code[offset];
        let imm = self.table.immediate_bytes(byte);
        let avail = self.code.len() - offset - 1;
        let take = imm.min(avail);
        self.pc = offset + 1 + take;
        Some(Op {
            offset,
            byte,
            operand: &self.code[offset + 1..offset + 1 + take],
            truncated: take < imm,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.code.len() - self.pc.min(self.code.len());
        // Best case every remaining byte is a PUSH32; worst case 1 byte/op.
        (remaining.div_ceil(33), Some(remaining))
    }
}

impl std::iter::FusedIterator for DisasmIter<'_> {}

/// Starts a zero-allocation streaming disassembly of `code`.
pub fn disasm_iter(code: &[u8]) -> DisasmIter<'_> {
    DisasmIter::new(code)
}

/// Disassembles `code` into its instruction sequence.
///
/// Never fails: undefined bytes become `INVALID` instructions and a `PUSH`
/// whose immediate runs past the end of the code yields a truncated operand
/// (flagged via [`Instruction::truncated`]), mirroring `evmdasm`'s permissive
/// behaviour on real-world (often metadata-suffixed) bytecode.
///
/// This is the collecting wrapper over [`DisasmIter`]; prefer the iterator
/// when the instructions are consumed once.
pub fn disassemble(code: &[u8]) -> Vec<Instruction> {
    DisasmIter::new(code)
        .map(|op| op.to_instruction())
        .collect()
}

/// Re-encodes an instruction sequence back into bytecode.
///
/// `assemble(&disassemble(code)) == code` holds for every input (the
/// round-trip property tested below), because truncated operands are stored
/// verbatim.
pub fn assemble_instructions(instructions: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instructions.iter().map(Instruction::encoded_len).sum());
    for ins in instructions {
        out.push(ins.byte);
        out.extend_from_slice(&ins.operand);
    }
    out
}

/// Renders the paper's `.csv` disassembly format: one
/// `offset,mnemonic,operand,gas` row per instruction, with a header.
pub fn to_csv(instructions: &[Instruction]) -> String {
    let mut s = String::from("offset,mnemonic,operand,gas\n");
    for ins in instructions {
        use std::fmt::Write;
        writeln!(
            s,
            "{},{},{},{}",
            ins.offset,
            ins.mnemonic(),
            ins.operand_hex(),
            ins.gas()
        )
        .expect("writing to a String cannot fail");
    }
    s
}

/// Extracts just the mnemonic sequence (the input to sequence models).
pub fn mnemonics(instructions: &[Instruction]) -> Vec<&'static str> {
    instructions.iter().map(Instruction::mnemonic).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_6080604052() {
        // The paper: 0x6080604052 disassembles to
        // (PUSH1, 0x80, 3), (PUSH1, 0x40, 3), (MSTORE, NaN, 3).
        let ins = disassemble(&[0x60, 0x80, 0x60, 0x40, 0x52]);
        assert_eq!(ins.len(), 3);
        assert_eq!(ins[0].to_string(), "(PUSH1, 0x80, 3)");
        assert_eq!(ins[1].to_string(), "(PUSH1, 0x40, 3)");
        assert_eq!(ins[2].to_string(), "(MSTORE, NaN, 3)");
        assert_eq!(ins[2].offset, 4);
    }

    #[test]
    fn push0_supported() {
        let ins = disassemble(&[0x5F, 0x00]);
        assert_eq!(ins[0].mnemonic(), "PUSH0");
        assert!(ins[0].operand.is_empty());
        assert_eq!(ins[1].mnemonic(), "STOP");
    }

    #[test]
    fn undefined_bytes_become_invalid() {
        let ins = disassemble(&[0x0C, 0xFE, 0xEF]);
        assert_eq!(ins.len(), 3);
        for i in &ins {
            assert_eq!(i.mnemonic(), "INVALID");
            assert_eq!(i.gas(), crate::opcode::Gas::Nan);
        }
        // Only 0xFE is *defined* as INVALID; the others are undefined bytes.
        assert!(!ins[0].is_defined());
        assert!(ins[1].is_defined());
        assert!(!ins[2].is_defined());
    }

    #[test]
    fn truncated_push_at_end() {
        // PUSH32 with only 2 operand bytes available.
        let ins = disassemble(&[0x7F, 0xAA, 0xBB]);
        assert_eq!(ins.len(), 1);
        assert!(ins[0].truncated);
        assert_eq!(ins[0].operand, vec![0xAA, 0xBB]);
    }

    #[test]
    fn empty_code() {
        assert!(disassemble(&[]).is_empty());
    }

    #[test]
    fn csv_format() {
        let csv = to_csv(&disassemble(&[0x60, 0x80, 0x00]));
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("offset,mnemonic,operand,gas"));
        assert_eq!(lines.next(), Some("0,PUSH1,0x80,3"));
        assert_eq!(lines.next(), Some("2,STOP,NaN,0"));
    }

    #[test]
    fn offsets_account_for_immediates() {
        // PUSH2 0x0102, ADD, PUSH1 0x00
        let ins = disassemble(&[0x61, 0x01, 0x02, 0x01, 0x60, 0x00]);
        assert_eq!(ins[0].offset, 0);
        assert_eq!(ins[1].offset, 3);
        assert_eq!(ins[2].offset, 4);
    }

    proptest! {
        #[test]
        fn disassemble_assemble_roundtrip(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let ins = disassemble(&code);
            prop_assert_eq!(assemble_instructions(&ins), code);
        }

        #[test]
        fn encoded_lengths_sum_to_code_len(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let ins = disassemble(&code);
            let total: usize = ins.iter().map(Instruction::encoded_len).sum();
            prop_assert_eq!(total, code.len());
        }

        #[test]
        fn offsets_are_strictly_increasing(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let ins = disassemble(&code);
            for w in ins.windows(2) {
                prop_assert!(w[0].offset < w[1].offset);
            }
        }

        #[test]
        fn streaming_matches_collecting_exactly(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            // The streaming path must be bit-identical to the legacy
            // collecting path on arbitrary bytecodes, field by field.
            let collected = disassemble(&code);
            let streamed: Vec<Op<'_>> = disasm_iter(&code).collect();
            prop_assert_eq!(streamed.len(), collected.len());
            for (op, ins) in streamed.iter().zip(&collected) {
                prop_assert_eq!(op.offset, ins.offset);
                prop_assert_eq!(op.byte, ins.byte);
                prop_assert_eq!(op.operand, ins.operand.as_slice());
                prop_assert_eq!(op.truncated, ins.truncated);
                prop_assert_eq!(op.mnemonic(), ins.mnemonic());
                prop_assert_eq!(op.gas(), ins.gas());
                prop_assert_eq!(op.is_defined(), ins.is_defined());
                prop_assert_eq!(op.encoded_len(), ins.encoded_len());
                prop_assert_eq!(&op.to_instruction(), ins);
            }
        }

        #[test]
        fn size_hint_brackets_actual_count(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            let (lo, hi) = disasm_iter(&code).size_hint();
            let n = disasm_iter(&code).count();
            prop_assert!(lo <= n);
            prop_assert!(n <= hi.unwrap());
        }
    }
}
