//! The pluggable external-state interface behind the interpreter.
//!
//! The interpreter models one contract's stack, memory, storage and gas
//! precisely, but everything *outside* the executing account — callee code,
//! foreign balances, the effects of `CALL` — is the [`Host`]'s business.
//! [`NullHost`] preserves the historical "simulated success" semantics
//! (calls succeed with empty return data, foreign accounts are empty), so
//! corpus validation keeps its exact behavior; richer hosts (e.g. one backed
//! by a simulated chain's code store) let the same interpreter observe real
//! callee state, which is what the dynamic-analysis feature channel runs on.
//!
//! Beyond answering state queries, a host receives *observation hooks*
//! (`on_storage_read`, `on_storage_write`, `on_selfdestruct`, `on_log`) as
//! the interpreter executes. The default implementations are no-ops; the
//! dispatcher explorer layers a recording host over any inner host to build
//! execution traces without the interpreter knowing traces exist.

use crate::u256::U256;

/// Which `CALL`-family opcode produced a [`CallParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// `CALL` (0xF1) — new frame, value transfer allowed.
    Call,
    /// `CALLCODE` (0xF2) — callee code, caller's storage (legacy).
    CallCode,
    /// `DELEGATECALL` (0xF4) — callee code, caller's full context.
    DelegateCall,
    /// `STATICCALL` (0xFA) — read-only frame, no value.
    StaticCall,
}

impl CallKind {
    /// `true` for the kinds that carry a `value` stack argument.
    pub fn has_value(self) -> bool {
        matches!(self, CallKind::Call | CallKind::CallCode)
    }
}

/// One outbound message call, as the interpreter hands it to the host.
#[derive(Debug, Clone)]
pub struct CallParams {
    /// Program counter of the call opcode (for trace recording).
    pub pc: usize,
    /// Which opcode initiated the call.
    pub kind: CallKind,
    /// Gas the caller forwards (already capped by the 63/64 rule).
    pub gas: u64,
    /// Callee address.
    pub target: U256,
    /// Wei transferred (`U256::ZERO` for `DELEGATECALL`/`STATICCALL`).
    pub value: U256,
    /// Call input read from the caller's memory.
    pub input: Vec<u8>,
}

/// What a host reports back for one message call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// `true` pushes 1 on the caller's stack, `false` pushes 0.
    pub success: bool,
    /// Return data (drives `RETURNDATASIZE`/`RETURNDATACOPY` and the
    /// caller-memory copy-out).
    pub returndata: Vec<u8>,
    /// Gas the callee consumed; charged to the caller, capped at the
    /// forwarded amount by well-behaved hosts.
    pub gas_used: u64,
}

impl CallOutcome {
    /// The historical stub outcome: success, no return data, no gas.
    pub fn simulated_success() -> Self {
        CallOutcome {
            success: true,
            returndata: Vec::new(),
            gas_used: 0,
        }
    }

    /// A failed call with no return data.
    pub fn failure() -> Self {
        CallOutcome {
            success: false,
            returndata: Vec::new(),
            gas_used: 0,
        }
    }
}

/// External state and call execution behind the interpreter.
///
/// Every method has a default that reproduces the historical simulated
/// semantics, so `impl Host for MyHost {}` is a valid (null) host and
/// implementors override only what they model.
pub trait Host {
    /// Balance of `addr`, or `None` to fall back to the environment's
    /// configured balance (the historical behavior).
    fn balance(&self, addr: &U256) -> Option<U256> {
        let _ = addr;
        None
    }

    /// Deployed code of `addr` (`None` = empty account, the historical
    /// behavior for every address).
    fn code(&self, addr: &U256) -> Option<Vec<u8>> {
        let _ = addr;
        None
    }

    /// Executes one outbound message call.
    ///
    /// The default reproduces the stub semantics: unconditional success with
    /// empty return data and zero additional gas.
    fn call(&mut self, params: &CallParams) -> CallOutcome {
        let _ = params;
        CallOutcome::simulated_success()
    }

    /// Observation hook: an `SLOAD` at `pc` read `key`.
    fn on_storage_read(&mut self, pc: usize, key: &U256) {
        let _ = (pc, key);
    }

    /// Observation hook: an `SSTORE` at `pc` wrote `key`.
    fn on_storage_write(&mut self, pc: usize, key: &U256) {
        let _ = (pc, key);
    }

    /// Observation hook: a `SELFDESTRUCT` at `pc` paying `beneficiary`.
    fn on_selfdestruct(&mut self, pc: usize, beneficiary: &U256) {
        let _ = (pc, beneficiary);
    }

    /// Observation hook: a `LOGn` at `pc` with `topics` topics.
    fn on_log(&mut self, pc: usize, topics: usize) {
        let _ = (pc, topics);
    }
}

/// The do-nothing host: simulated-success calls, empty foreign accounts.
///
/// [`crate::Interpreter::run`] uses this implicitly, so code that never
/// mentions hosts sees the exact pre-host semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHost;

impl Host for NullHost {}

/// An in-memory host mapping addresses to code and balances.
///
/// This is the simplest *stateful* host: enough to unit-test the
/// interpreter's `EXTCODE*`/`BALANCE`/`CALL` wiring without dragging a
/// chain simulation into this crate. Calls into accounts with code execute
/// the callee one level deep on a budgeted sub-interpreter; calls into
/// empty accounts behave like plain value transfers (success, no data).
#[derive(Debug, Clone, Default)]
pub struct MemoryHost {
    accounts: Vec<(U256, Vec<u8>, U256)>,
    /// Gas budget for each nested callee frame.
    pub callee_gas: u64,
    /// Step budget for each nested callee frame.
    pub callee_steps: u64,
    depth: u32,
}

/// Maximum nested call depth [`MemoryHost`] will execute before reporting
/// failure (honeypots love unbounded recursion; the explorer does not).
pub const MAX_CALL_DEPTH: u32 = 3;

impl MemoryHost {
    /// Creates an empty host with default callee budgets.
    pub fn new() -> Self {
        MemoryHost {
            accounts: Vec::new(),
            callee_gas: 100_000,
            callee_steps: 20_000,
            depth: 0,
        }
    }

    /// Registers an account with deployed `code` and a `balance`.
    pub fn insert(&mut self, addr: U256, code: Vec<u8>, balance: U256) {
        if let Some(slot) = self.accounts.iter_mut().find(|(a, _, _)| *a == addr) {
            slot.1 = code;
            slot.2 = balance;
        } else {
            self.accounts.push((addr, code, balance));
        }
    }

    fn find(&self, addr: &U256) -> Option<&(U256, Vec<u8>, U256)> {
        self.accounts.iter().find(|(a, _, _)| a == addr)
    }
}

impl Host for MemoryHost {
    fn balance(&self, addr: &U256) -> Option<U256> {
        self.find(addr).map(|(_, _, b)| *b)
    }

    fn code(&self, addr: &U256) -> Option<Vec<u8>> {
        self.find(addr)
            .filter(|(_, c, _)| !c.is_empty())
            .map(|(_, c, _)| c.clone())
    }

    fn call(&mut self, params: &CallParams) -> CallOutcome {
        let Some(code) = self.code(&params.target) else {
            // Plain transfer into an empty account: succeeds, returns nothing.
            return CallOutcome::simulated_success();
        };
        if self.depth >= MAX_CALL_DEPTH {
            return CallOutcome::failure();
        }
        self.depth += 1;
        let mut interp = crate::interp::Interpreter::new();
        interp.gas_limit = self.callee_gas.min(params.gas.max(1));
        interp.step_limit = self.callee_steps;
        interp.env.address = params.target;
        interp.env.callvalue = params.value;
        interp.env.calldata = params.input.clone();
        let result = interp.run_with_host(&code, self);
        self.depth -= 1;
        CallOutcome {
            success: result.status.is_ok(),
            returndata: result.output,
            gas_used: result.gas_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::interp::{Interpreter, Status};

    #[test]
    fn null_host_defaults_are_simulated_semantics() {
        let mut host = NullHost;
        assert_eq!(host.balance(&U256::ONE), None);
        assert_eq!(host.code(&U256::ONE), None);
        let outcome = host.call(&CallParams {
            pc: 0,
            kind: CallKind::Call,
            gas: 1000,
            target: U256::ONE,
            value: U256::ZERO,
            input: Vec::new(),
        });
        assert_eq!(outcome, CallOutcome::simulated_success());
    }

    #[test]
    fn memory_host_serves_code_and_balance() {
        let mut host = MemoryHost::new();
        host.insert(U256::from_u64(0xAA), vec![0x00], U256::from_u64(500));
        assert_eq!(
            host.balance(&U256::from_u64(0xAA)),
            Some(U256::from_u64(500))
        );
        assert_eq!(host.code(&U256::from_u64(0xAA)), Some(vec![0x00]));
        assert_eq!(host.code(&U256::from_u64(0xBB)), None);
    }

    #[test]
    fn memory_host_executes_callee_and_returns_its_output() {
        // Callee: return a 32-byte word holding 42.
        let mut callee = Asm::new();
        callee.push_u64(42).push_u64(0).op("MSTORE");
        callee.push_u64(32).push_u64(0).op("RETURN");
        let mut host = MemoryHost::new();
        host.insert(
            U256::from_u64(0xCAFE),
            callee.assemble().unwrap(),
            U256::ZERO,
        );

        // Caller: CALL the callee, copy 32 bytes of returndata to memory,
        // return them.
        let mut caller = Asm::new();
        caller.push_u64(32).push_u64(0); // retLen, retOff
        caller.push_u64(0).push_u64(0); // argsLen, argsOff
        caller.push_u64(0); // value
        caller.push_u64(0xCAFE); // target
        caller.push_u64(50_000); // gas
        caller.op("CALL").op("POP");
        caller.push_u64(32).push_u64(0).op("RETURN");
        let mut interp = Interpreter::new();
        let r = interp.run_with_host(&caller.assemble().unwrap(), &mut host);
        assert_eq!(r.status, Status::Success);
        assert_eq!(U256::from_be_bytes(&r.output), U256::from_u64(42));
    }

    #[test]
    fn memory_host_bounds_recursive_calls() {
        // A contract that calls itself forever must bottom out at
        // MAX_CALL_DEPTH, not overflow the Rust stack.
        let mut asm = Asm::new();
        asm.push_u64(0).push_u64(0).push_u64(0).push_u64(0);
        asm.push_u64(0)
            .push_u64(0x5E1F)
            .push_u64(100_000)
            .op("CALL");
        asm.op("POP").op("STOP");
        let code = asm.assemble().unwrap();
        let mut host = MemoryHost::new();
        host.insert(U256::from_u64(0x5E1F), code.clone(), U256::ZERO);
        let mut interp = Interpreter::new();
        let r = interp.run_with_host(&code, &mut host);
        assert!(r.status.is_ok(), "{:?}", r.status);
    }
}
