#![warn(missing_docs)]

//! EVM substrate for the PhishingHook reproduction.
//!
//! This crate provides everything PhishingHook's *bytecode disassembler module*
//! (BDM) needs, plus the machinery the synthetic corpus generator is built on:
//!
//! * [`opcode`] — the full Shanghai-fork opcode registry (144 defined opcodes),
//!   with mnemonic, base gas cost, stack arity and a short description, exactly
//!   mirroring the reference table the paper cites (evm.codes, Shanghai fork).
//! * [`disasm`] — the disassembler: raw bytecode → `(mnemonic, operand, gas)`
//!   instruction triplets, the paper's enhanced `evmdasm` (with `PUSH0` and
//!   `INVALID` support). Two paths share the decode rules: the
//!   zero-allocation streaming [`disasm::DisasmIter`] (operands borrowed
//!   from the code, metadata via the dense [`opcode::OpTable`]) and the
//!   collecting [`disasm::disassemble`] wrapper producing owned
//!   [`disasm::Instruction`]s.
//! * [`asm`] — an assembler with label resolution, used by the corpus
//!   generator to build realistic runtime bytecode.
//! * [`interp`] — a compact stack-machine interpreter with gas metering, used
//!   to sanity-check that generated contracts actually execute.
//! * [`host`] / [`explorer`] — the dynamic-analysis layer: a pluggable
//!   [`host::Host`] serving external state (callee code, balances, message
//!   calls) behind the interpreter, and a dispatcher [`explorer::Explorer`]
//!   that recovers the `PUSH4/EQ/JUMPI` selector table and executes each
//!   entry point under a hard budget, producing a structured
//!   [`explorer::Trace`] for the trace feature extractors.
//! * [`u256`] / [`keccak`] — 256-bit words and keccak-256 hashing (used for
//!   interpreter arithmetic and for bytecode deduplication).
//!
//! # Quick example
//!
//! ```
//! use phishinghook_evm::disasm::disassemble;
//!
//! // The canonical Solidity preamble: PUSH1 0x80 PUSH1 0x40 MSTORE
//! let code = [0x60, 0x80, 0x60, 0x40, 0x52];
//! let instrs = disassemble(&code);
//! assert_eq!(instrs.len(), 3);
//! assert_eq!(instrs[0].mnemonic(), "PUSH1");
//! assert_eq!(instrs[2].mnemonic(), "MSTORE");
//! ```

pub mod asm;
pub mod disasm;
pub mod explorer;
pub mod host;
pub mod interp;
pub mod keccak;
pub mod opcode;
pub mod u256;

pub use asm::Asm;
pub use disasm::{disasm_iter, disassemble, DisasmIter, Instruction, Op};
pub use explorer::{
    scan_selectors, CallSite, Explorer, ExplorerConfig, SelectorRun, SelfdestructSite, Trace,
};
pub use host::{CallKind, CallOutcome, CallParams, Host, MemoryHost, NullHost};
pub use interp::{Env, ExecutionResult, Halt, Interpreter, Status};
pub use keccak::{keccak256, Digest};
pub use opcode::{mnemonic_str, Gas, OpTable, OpcodeInfo, ShanghaiRegistry, N_MNEMONICS};
pub use u256::U256;
