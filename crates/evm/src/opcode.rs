//! The Shanghai-fork opcode registry.
//!
//! The paper's Table I (sourced from evm.codes, Shanghai fork) lists 144
//! defined opcodes. This module reproduces the registry in full: every
//! defined opcode carries its byte value, mnemonic, *base* gas cost (the
//! static cost; dynamic components such as memory expansion are handled by
//! the interpreter), stack arity, the number of immediate bytes (for the
//! `PUSH` family) and a one-line description.
//!
//! `INVALID` (`0xFE`) has a `NaN` gas cost in the reference table; that is
//! modelled by [`Gas::Nan`].

use std::fmt;

/// Base gas cost of an opcode.
///
/// `Nan` is used for the designated `INVALID` instruction, mirroring the
/// reference table which lists its gas as `NaN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gas {
    /// A fixed base cost in gas units.
    Fixed(u32),
    /// No defined cost (the `INVALID` instruction).
    Nan,
}

impl Gas {
    /// The numeric cost, or `None` for [`Gas::Nan`].
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Gas::Fixed(g) => Some(u64::from(g)),
            Gas::Nan => None,
        }
    }
}

impl fmt::Display for Gas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gas::Fixed(g) => write!(f, "{g}"),
            Gas::Nan => write!(f, "NaN"),
        }
    }
}

/// Static metadata for one defined EVM opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpcodeInfo {
    /// The opcode byte value (`0x00..=0xFF`).
    pub byte: u8,
    /// Human-readable mnemonic, e.g. `"PUSH1"`.
    pub mnemonic: &'static str,
    /// Base gas cost.
    pub gas: Gas,
    /// Number of words popped from the stack.
    pub stack_in: u8,
    /// Number of words pushed onto the stack.
    pub stack_out: u8,
    /// Number of immediate bytes following the opcode (`PUSH1..=PUSH32`).
    pub immediate_bytes: u8,
    /// One-line description from the reference table.
    pub description: &'static str,
}

impl OpcodeInfo {
    /// Whether this opcode is a member of the `PUSH` family (`PUSH0..=PUSH32`).
    pub fn is_push(&self) -> bool {
        (0x5F..=0x7F).contains(&self.byte)
    }

    /// Whether this opcode terminates execution of the current frame.
    pub fn is_terminator(&self) -> bool {
        matches!(self.byte, 0x00 | 0xF3 | 0xFD | 0xFE | 0xFF)
    }
}

impl fmt::Display for OpcodeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic)
    }
}

macro_rules! op {
    ($byte:expr, $mn:expr, $gas:expr, $in:expr, $out:expr, $imm:expr, $desc:expr) => {
        OpcodeInfo {
            byte: $byte,
            mnemonic: $mn,
            gas: Gas::Fixed($gas),
            stack_in: $in,
            stack_out: $out,
            immediate_bytes: $imm,
            description: $desc,
        }
    };
}

/// All 144 opcodes defined at the Shanghai fork, in byte order.
pub const SHANGHAI_OPCODES: &[OpcodeInfo] = &[
    op!(0x00, "STOP", 0, 0, 0, 0, "Halts execution"),
    op!(0x01, "ADD", 3, 2, 1, 0, "Addition operation"),
    op!(0x02, "MUL", 5, 2, 1, 0, "Multiplication operation"),
    op!(0x03, "SUB", 3, 2, 1, 0, "Subtraction operation"),
    op!(0x04, "DIV", 5, 2, 1, 0, "Integer division operation"),
    op!(0x05, "SDIV", 5, 2, 1, 0, "Signed integer division operation"),
    op!(0x06, "MOD", 5, 2, 1, 0, "Modulo remainder operation"),
    op!(0x07, "SMOD", 5, 2, 1, 0, "Signed modulo remainder operation"),
    op!(0x08, "ADDMOD", 8, 3, 1, 0, "Modulo addition operation"),
    op!(0x09, "MULMOD", 8, 3, 1, 0, "Modulo multiplication operation"),
    op!(0x0A, "EXP", 10, 2, 1, 0, "Exponential operation"),
    op!(0x0B, "SIGNEXTEND", 5, 2, 1, 0, "Extend length of two's complement signed integer"),
    op!(0x10, "LT", 3, 2, 1, 0, "Less-than comparison"),
    op!(0x11, "GT", 3, 2, 1, 0, "Greater-than comparison"),
    op!(0x12, "SLT", 3, 2, 1, 0, "Signed less-than comparison"),
    op!(0x13, "SGT", 3, 2, 1, 0, "Signed greater-than comparison"),
    op!(0x14, "EQ", 3, 2, 1, 0, "Equality comparison"),
    op!(0x15, "ISZERO", 3, 1, 1, 0, "Is-zero comparison"),
    op!(0x16, "AND", 3, 2, 1, 0, "Bitwise AND operation"),
    op!(0x17, "OR", 3, 2, 1, 0, "Bitwise OR operation"),
    op!(0x18, "XOR", 3, 2, 1, 0, "Bitwise XOR operation"),
    op!(0x19, "NOT", 3, 1, 1, 0, "Bitwise NOT operation"),
    op!(0x1A, "BYTE", 3, 2, 1, 0, "Retrieve single byte from word"),
    op!(0x1B, "SHL", 3, 2, 1, 0, "Left shift operation"),
    op!(0x1C, "SHR", 3, 2, 1, 0, "Logical right shift operation"),
    op!(0x1D, "SAR", 3, 2, 1, 0, "Arithmetic right shift operation"),
    op!(0x20, "SHA3", 30, 2, 1, 0, "Compute Keccak-256 hash"),
    op!(0x30, "ADDRESS", 2, 0, 1, 0, "Get address of currently executing account"),
    op!(0x31, "BALANCE", 100, 1, 1, 0, "Get balance of the given account"),
    op!(0x32, "ORIGIN", 2, 0, 1, 0, "Get execution origination address"),
    op!(0x33, "CALLER", 2, 0, 1, 0, "Get caller address"),
    op!(0x34, "CALLVALUE", 2, 0, 1, 0, "Get deposited value by the instruction/transaction"),
    op!(0x35, "CALLDATALOAD", 3, 1, 1, 0, "Get input data of current environment"),
    op!(0x36, "CALLDATASIZE", 2, 0, 1, 0, "Get size of input data in current environment"),
    op!(0x37, "CALLDATACOPY", 3, 3, 0, 0, "Copy input data in current environment to memory"),
    op!(0x38, "CODESIZE", 2, 0, 1, 0, "Get size of code running in current environment"),
    op!(0x39, "CODECOPY", 3, 3, 0, 0, "Copy code running in current environment to memory"),
    op!(0x3A, "GASPRICE", 2, 0, 1, 0, "Get price of gas in current environment"),
    op!(0x3B, "EXTCODESIZE", 100, 1, 1, 0, "Get size of an account's code"),
    op!(0x3C, "EXTCODECOPY", 100, 4, 0, 0, "Copy an account's code to memory"),
    op!(0x3D, "RETURNDATASIZE", 2, 0, 1, 0, "Get size of output data from the previous call"),
    op!(0x3E, "RETURNDATACOPY", 3, 3, 0, 0, "Copy output data from the previous call to memory"),
    op!(0x3F, "EXTCODEHASH", 100, 1, 1, 0, "Get hash of an account's code"),
    op!(0x40, "BLOCKHASH", 20, 1, 1, 0, "Get the hash of one of the 256 most recent blocks"),
    op!(0x41, "COINBASE", 2, 0, 1, 0, "Get the block's beneficiary address"),
    op!(0x42, "TIMESTAMP", 2, 0, 1, 0, "Get the block's timestamp"),
    op!(0x43, "NUMBER", 2, 0, 1, 0, "Get the block's number"),
    op!(0x44, "PREVRANDAO", 2, 0, 1, 0, "Get the previous block's RANDAO mix"),
    op!(0x45, "GASLIMIT", 2, 0, 1, 0, "Get the block's gas limit"),
    op!(0x46, "CHAINID", 2, 0, 1, 0, "Get the chain ID"),
    op!(0x47, "SELFBALANCE", 5, 0, 1, 0, "Get balance of currently executing account"),
    op!(0x48, "BASEFEE", 2, 0, 1, 0, "Get the base fee"),
    op!(0x50, "POP", 2, 1, 0, 0, "Remove item from stack"),
    op!(0x51, "MLOAD", 3, 1, 1, 0, "Load word from memory"),
    op!(0x52, "MSTORE", 3, 2, 0, 0, "Save word to memory"),
    op!(0x53, "MSTORE8", 3, 2, 0, 0, "Save byte to memory"),
    op!(0x54, "SLOAD", 100, 1, 1, 0, "Load word from storage"),
    op!(0x55, "SSTORE", 100, 2, 0, 0, "Save word to storage"),
    op!(0x56, "JUMP", 8, 1, 0, 0, "Alter the program counter"),
    op!(0x57, "JUMPI", 10, 2, 0, 0, "Conditionally alter the program counter"),
    op!(0x58, "PC", 2, 0, 1, 0, "Get the value of the program counter prior to this instruction"),
    op!(0x59, "MSIZE", 2, 0, 1, 0, "Get the size of active memory in bytes"),
    op!(0x5A, "GAS", 2, 0, 1, 0, "Get the amount of available gas"),
    op!(0x5B, "JUMPDEST", 1, 0, 0, 0, "Mark a valid destination for jumps"),
    op!(0x5F, "PUSH0", 2, 0, 1, 0, "Place value 0 on stack"),
    op!(0x60, "PUSH1", 3, 0, 1, 1, "Place 1 byte item on stack"),
    op!(0x61, "PUSH2", 3, 0, 1, 2, "Place 2 byte item on stack"),
    op!(0x62, "PUSH3", 3, 0, 1, 3, "Place 3 byte item on stack"),
    op!(0x63, "PUSH4", 3, 0, 1, 4, "Place 4 byte item on stack"),
    op!(0x64, "PUSH5", 3, 0, 1, 5, "Place 5 byte item on stack"),
    op!(0x65, "PUSH6", 3, 0, 1, 6, "Place 6 byte item on stack"),
    op!(0x66, "PUSH7", 3, 0, 1, 7, "Place 7 byte item on stack"),
    op!(0x67, "PUSH8", 3, 0, 1, 8, "Place 8 byte item on stack"),
    op!(0x68, "PUSH9", 3, 0, 1, 9, "Place 9 byte item on stack"),
    op!(0x69, "PUSH10", 3, 0, 1, 10, "Place 10 byte item on stack"),
    op!(0x6A, "PUSH11", 3, 0, 1, 11, "Place 11 byte item on stack"),
    op!(0x6B, "PUSH12", 3, 0, 1, 12, "Place 12 byte item on stack"),
    op!(0x6C, "PUSH13", 3, 0, 1, 13, "Place 13 byte item on stack"),
    op!(0x6D, "PUSH14", 3, 0, 1, 14, "Place 14 byte item on stack"),
    op!(0x6E, "PUSH15", 3, 0, 1, 15, "Place 15 byte item on stack"),
    op!(0x6F, "PUSH16", 3, 0, 1, 16, "Place 16 byte item on stack"),
    op!(0x70, "PUSH17", 3, 0, 1, 17, "Place 17 byte item on stack"),
    op!(0x71, "PUSH18", 3, 0, 1, 18, "Place 18 byte item on stack"),
    op!(0x72, "PUSH19", 3, 0, 1, 19, "Place 19 byte item on stack"),
    op!(0x73, "PUSH20", 3, 0, 1, 20, "Place 20 byte item on stack"),
    op!(0x74, "PUSH21", 3, 0, 1, 21, "Place 21 byte item on stack"),
    op!(0x75, "PUSH22", 3, 0, 1, 22, "Place 22 byte item on stack"),
    op!(0x76, "PUSH23", 3, 0, 1, 23, "Place 23 byte item on stack"),
    op!(0x77, "PUSH24", 3, 0, 1, 24, "Place 24 byte item on stack"),
    op!(0x78, "PUSH25", 3, 0, 1, 25, "Place 25 byte item on stack"),
    op!(0x79, "PUSH26", 3, 0, 1, 26, "Place 26 byte item on stack"),
    op!(0x7A, "PUSH27", 3, 0, 1, 27, "Place 27 byte item on stack"),
    op!(0x7B, "PUSH28", 3, 0, 1, 28, "Place 28 byte item on stack"),
    op!(0x7C, "PUSH29", 3, 0, 1, 29, "Place 29 byte item on stack"),
    op!(0x7D, "PUSH30", 3, 0, 1, 30, "Place 30 byte item on stack"),
    op!(0x7E, "PUSH31", 3, 0, 1, 31, "Place 31 byte item on stack"),
    op!(0x7F, "PUSH32", 3, 0, 1, 32, "Place 32 byte (full word) item on stack"),
    op!(0x80, "DUP1", 3, 1, 2, 0, "Duplicate 1st stack item"),
    op!(0x81, "DUP2", 3, 2, 3, 0, "Duplicate 2nd stack item"),
    op!(0x82, "DUP3", 3, 3, 4, 0, "Duplicate 3rd stack item"),
    op!(0x83, "DUP4", 3, 4, 5, 0, "Duplicate 4th stack item"),
    op!(0x84, "DUP5", 3, 5, 6, 0, "Duplicate 5th stack item"),
    op!(0x85, "DUP6", 3, 6, 7, 0, "Duplicate 6th stack item"),
    op!(0x86, "DUP7", 3, 7, 8, 0, "Duplicate 7th stack item"),
    op!(0x87, "DUP8", 3, 8, 9, 0, "Duplicate 8th stack item"),
    op!(0x88, "DUP9", 3, 9, 10, 0, "Duplicate 9th stack item"),
    op!(0x89, "DUP10", 3, 10, 11, 0, "Duplicate 10th stack item"),
    op!(0x8A, "DUP11", 3, 11, 12, 0, "Duplicate 11th stack item"),
    op!(0x8B, "DUP12", 3, 12, 13, 0, "Duplicate 12th stack item"),
    op!(0x8C, "DUP13", 3, 13, 14, 0, "Duplicate 13th stack item"),
    op!(0x8D, "DUP14", 3, 14, 15, 0, "Duplicate 14th stack item"),
    op!(0x8E, "DUP15", 3, 15, 16, 0, "Duplicate 15th stack item"),
    op!(0x8F, "DUP16", 3, 16, 17, 0, "Duplicate 16th stack item"),
    op!(0x90, "SWAP1", 3, 2, 2, 0, "Exchange 1st and 2nd stack items"),
    op!(0x91, "SWAP2", 3, 3, 3, 0, "Exchange 1st and 3rd stack items"),
    op!(0x92, "SWAP3", 3, 4, 4, 0, "Exchange 1st and 4th stack items"),
    op!(0x93, "SWAP4", 3, 5, 5, 0, "Exchange 1st and 5th stack items"),
    op!(0x94, "SWAP5", 3, 6, 6, 0, "Exchange 1st and 6th stack items"),
    op!(0x95, "SWAP6", 3, 7, 7, 0, "Exchange 1st and 7th stack items"),
    op!(0x96, "SWAP7", 3, 8, 8, 0, "Exchange 1st and 8th stack items"),
    op!(0x97, "SWAP8", 3, 9, 9, 0, "Exchange 1st and 9th stack items"),
    op!(0x98, "SWAP9", 3, 10, 10, 0, "Exchange 1st and 10th stack items"),
    op!(0x99, "SWAP10", 3, 11, 11, 0, "Exchange 1st and 11th stack items"),
    op!(0x9A, "SWAP11", 3, 12, 12, 0, "Exchange 1st and 12th stack items"),
    op!(0x9B, "SWAP12", 3, 13, 13, 0, "Exchange 1st and 13th stack items"),
    op!(0x9C, "SWAP13", 3, 14, 14, 0, "Exchange 1st and 14th stack items"),
    op!(0x9D, "SWAP14", 3, 15, 15, 0, "Exchange 1st and 15th stack items"),
    op!(0x9E, "SWAP15", 3, 16, 16, 0, "Exchange 1st and 16th stack items"),
    op!(0x9F, "SWAP16", 3, 17, 17, 0, "Exchange 1st and 17th stack items"),
    op!(0xA0, "LOG0", 375, 2, 0, 0, "Append log record with no topics"),
    op!(0xA1, "LOG1", 750, 3, 0, 0, "Append log record with one topic"),
    op!(0xA2, "LOG2", 1125, 4, 0, 0, "Append log record with two topics"),
    op!(0xA3, "LOG3", 1500, 5, 0, 0, "Append log record with three topics"),
    op!(0xA4, "LOG4", 1875, 6, 0, 0, "Append log record with four topics"),
    op!(0xF0, "CREATE", 32000, 3, 1, 0, "Create a new account with associated code"),
    op!(0xF1, "CALL", 100, 7, 1, 0, "Message-call into an account"),
    op!(0xF2, "CALLCODE", 100, 7, 1, 0, "Message-call into this account with an alternative account's code"),
    op!(0xF3, "RETURN", 0, 2, 0, 0, "Halt execution returning output data"),
    op!(0xF4, "DELEGATECALL", 100, 6, 1, 0, "Message-call into this account with an alternative account's code, persisting sender and value"),
    op!(0xF5, "CREATE2", 32000, 4, 1, 0, "Create a new account with associated code at a predictable address"),
    op!(0xFA, "STATICCALL", 100, 6, 1, 0, "Static message-call into an account"),
    op!(0xFD, "REVERT", 0, 2, 0, 0, "Halt execution reverting state changes but returning data and remaining gas"),
    OpcodeInfo {
        byte: 0xFE,
        mnemonic: "INVALID",
        gas: Gas::Nan,
        stack_in: 0,
        stack_out: 0,
        immediate_bytes: 0,
        description: "Designated invalid instruction",
    },
    op!(0xFF, "SELFDESTRUCT", 5000, 1, 0, 0, "Halt execution and register account for later deletion"),
];

/// Number of distinct mnemonics: the 144 defined opcodes. Undefined bytes
/// share the `INVALID` mnemonic id (the paper's single INVALID bucket).
pub const N_MNEMONICS: usize = SHANGHAI_OPCODES.len();

/// Resolves a mnemonic id (an index into [`SHANGHAI_OPCODES`]) to its string.
///
/// # Panics
/// Panics when `id >= N_MNEMONICS`.
pub fn mnemonic_str(id: u16) -> &'static str {
    SHANGHAI_OPCODES[usize::from(id)].mnemonic
}

/// Dense 256-entry per-byte disassembly table: immediate (push payload)
/// width, mnemonic id, base gas and defined-at-Shanghai flag for every
/// possible opcode byte.
///
/// This is the hot-path companion to [`ShanghaiRegistry`]: the streaming
/// disassembler reads plain arrays indexed by the raw byte instead of
/// chasing `Option<&OpcodeInfo>` pointers. Undefined bytes map to the
/// `INVALID` mnemonic id with [`Gas::Nan`] and zero immediate width.
#[derive(Debug)]
pub struct OpTable {
    imm: [u8; 256],
    mnemonic_id: [u16; 256],
    gas: [Gas; 256],
    defined: [bool; 256],
}

impl OpTable {
    /// Builds the table from the static registry.
    pub fn new() -> Self {
        let invalid_id = SHANGHAI_OPCODES
            .iter()
            .position(|o| o.byte == 0xFE)
            .expect("INVALID is defined") as u16;
        let mut table = OpTable {
            imm: [0; 256],
            mnemonic_id: [invalid_id; 256],
            gas: [Gas::Nan; 256],
            defined: [false; 256],
        };
        for (id, info) in SHANGHAI_OPCODES.iter().enumerate() {
            let b = info.byte as usize;
            table.imm[b] = info.immediate_bytes;
            table.mnemonic_id[b] = id as u16;
            table.gas[b] = info.gas;
            table.defined[b] = true;
        }
        table
    }

    /// A process-wide shared table.
    pub fn shared() -> &'static OpTable {
        use std::sync::OnceLock;
        static TABLE: OnceLock<OpTable> = OnceLock::new();
        TABLE.get_or_init(OpTable::new)
    }

    /// Immediate operand width of `byte` (0 for everything but `PUSH1..=32`).
    #[inline]
    pub fn immediate_bytes(&self, byte: u8) -> usize {
        usize::from(self.imm[byte as usize])
    }

    /// Mnemonic id of `byte`; undefined bytes report the `INVALID` id.
    #[inline]
    pub fn mnemonic_id(&self, byte: u8) -> u16 {
        self.mnemonic_id[byte as usize]
    }

    /// Base gas cost of `byte`; undefined bytes report [`Gas::Nan`].
    #[inline]
    pub fn gas(&self, byte: u8) -> Gas {
        self.gas[byte as usize]
    }

    /// Whether `byte` is defined at the Shanghai fork.
    #[inline]
    pub fn is_defined(&self, byte: u8) -> bool {
        self.defined[byte as usize]
    }
}

impl Default for OpTable {
    fn default() -> Self {
        Self::new()
    }
}

/// A lookup table over the Shanghai opcode set.
///
/// Construct one with [`ShanghaiRegistry::new`] (cheap; backed by the static
/// [`SHANGHAI_OPCODES`] table) or use the shared instance from
/// [`ShanghaiRegistry::shared`].
#[derive(Debug)]
pub struct ShanghaiRegistry {
    by_byte: [Option<&'static OpcodeInfo>; 256],
}

impl ShanghaiRegistry {
    /// Builds the byte-indexed lookup table.
    pub fn new() -> Self {
        let mut by_byte: [Option<&'static OpcodeInfo>; 256] = [None; 256];
        for info in SHANGHAI_OPCODES {
            by_byte[info.byte as usize] = Some(info);
        }
        ShanghaiRegistry { by_byte }
    }

    /// A process-wide shared registry.
    pub fn shared() -> &'static ShanghaiRegistry {
        use std::sync::OnceLock;
        static REG: OnceLock<ShanghaiRegistry> = OnceLock::new();
        REG.get_or_init(ShanghaiRegistry::new)
    }

    /// Looks up the opcode defined for `byte`, if any.
    pub fn get(&self, byte: u8) -> Option<&'static OpcodeInfo> {
        self.by_byte[byte as usize]
    }

    /// Looks up an opcode by its mnemonic (exact, case-sensitive).
    pub fn by_mnemonic(&self, mnemonic: &str) -> Option<&'static OpcodeInfo> {
        SHANGHAI_OPCODES.iter().find(|o| o.mnemonic == mnemonic)
    }

    /// Number of defined opcodes (144 at the Shanghai fork).
    pub fn len(&self) -> usize {
        SHANGHAI_OPCODES.len()
    }

    /// Always `false`; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all defined opcodes in byte order.
    pub fn iter(&self) -> impl Iterator<Item = &'static OpcodeInfo> {
        SHANGHAI_OPCODES.iter()
    }
}

impl Default for ShanghaiRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shanghai_has_144_opcodes() {
        // The paper: "As of the Shanghai update, 144 opcodes exist."
        assert_eq!(SHANGHAI_OPCODES.len(), 144);
        assert_eq!(ShanghaiRegistry::new().len(), 144);
    }

    #[test]
    fn table_is_sorted_and_unique() {
        for w in SHANGHAI_OPCODES.windows(2) {
            assert!(
                w[0].byte < w[1].byte,
                "{} !< {}",
                w[0].mnemonic,
                w[1].mnemonic
            );
        }
    }

    #[test]
    fn paper_table1_rows_match() {
        let reg = ShanghaiRegistry::new();
        let stop = reg.get(0x00).unwrap();
        assert_eq!((stop.mnemonic, stop.gas), ("STOP", Gas::Fixed(0)));
        let add = reg.get(0x01).unwrap();
        assert_eq!((add.mnemonic, add.gas), ("ADD", Gas::Fixed(3)));
        let mul = reg.get(0x02).unwrap();
        assert_eq!((mul.mnemonic, mul.gas), ("MUL", Gas::Fixed(5)));
        let revert = reg.get(0xFD).unwrap();
        assert_eq!((revert.mnemonic, revert.gas), ("REVERT", Gas::Fixed(0)));
        let invalid = reg.get(0xFE).unwrap();
        assert_eq!((invalid.mnemonic, invalid.gas), ("INVALID", Gas::Nan));
        let sd = reg.get(0xFF).unwrap();
        assert_eq!((sd.mnemonic, sd.gas), ("SELFDESTRUCT", Gas::Fixed(5000)));
    }

    #[test]
    fn push_family_immediates() {
        let reg = ShanghaiRegistry::new();
        assert_eq!(reg.get(0x5F).unwrap().immediate_bytes, 0); // PUSH0
        for n in 1..=32u8 {
            let info = reg.get(0x5F + n).unwrap();
            assert_eq!(info.immediate_bytes, n);
            assert!(info.is_push());
            assert_eq!(info.mnemonic, format!("PUSH{n}"));
        }
    }

    #[test]
    fn undefined_bytes_are_none() {
        let reg = ShanghaiRegistry::new();
        for b in [0x0Cu8, 0x0F, 0x1E, 0x21, 0x49, 0x5C, 0xA5, 0xEF, 0xFB] {
            assert!(reg.get(b).is_none(), "0x{b:02X} should be undefined");
        }
    }

    #[test]
    fn mnemonic_lookup_roundtrip() {
        let reg = ShanghaiRegistry::new();
        for info in reg.iter() {
            assert_eq!(reg.by_mnemonic(info.mnemonic).unwrap().byte, info.byte);
        }
        assert!(reg.by_mnemonic("NOTANOPCODE").is_none());
    }

    #[test]
    fn terminators() {
        let reg = ShanghaiRegistry::new();
        for m in ["STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT"] {
            assert!(reg.by_mnemonic(m).unwrap().is_terminator());
        }
        assert!(!reg.by_mnemonic("ADD").unwrap().is_terminator());
    }

    #[test]
    fn gas_display_and_value() {
        assert_eq!(Gas::Fixed(3).to_string(), "3");
        assert_eq!(Gas::Nan.to_string(), "NaN");
        assert_eq!(Gas::Fixed(3).as_u64(), Some(3));
        assert_eq!(Gas::Nan.as_u64(), None);
    }

    #[test]
    fn op_table_matches_registry_on_every_byte() {
        let table = OpTable::shared();
        let reg = ShanghaiRegistry::shared();
        for b in 0..=255u8 {
            match reg.get(b) {
                Some(info) => {
                    assert!(table.is_defined(b));
                    assert_eq!(table.immediate_bytes(b), usize::from(info.immediate_bytes));
                    assert_eq!(table.gas(b), info.gas);
                    assert_eq!(mnemonic_str(table.mnemonic_id(b)), info.mnemonic);
                }
                None => {
                    assert!(!table.is_defined(b));
                    assert_eq!(table.immediate_bytes(b), 0);
                    assert_eq!(table.gas(b), Gas::Nan);
                    assert_eq!(mnemonic_str(table.mnemonic_id(b)), "INVALID");
                }
            }
        }
    }

    #[test]
    fn mnemonic_ids_are_dense_and_unique() {
        let table = OpTable::new();
        let mut seen = [false; N_MNEMONICS];
        for info in SHANGHAI_OPCODES {
            let id = table.mnemonic_id(info.byte) as usize;
            assert!(!seen[id], "duplicate id for {}", info.mnemonic);
            seen[id] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
