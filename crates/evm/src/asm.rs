//! A small EVM assembler with label resolution.
//!
//! The synthetic corpus generator builds contracts as instruction streams and
//! assembles them into runtime bytecode with this builder. Labels compile to
//! `JUMPDEST`s and label references to fixed-width `PUSH2` immediates patched
//! in a second pass, so realistic Solidity-style function dispatchers can be
//! expressed directly.
//!
//! ```
//! use phishinghook_evm::asm::Asm;
//!
//! let mut asm = Asm::new();
//! asm.push_u64(1).push_u64(2).op("ADD").push_u64(3).op("EQ");
//! asm.jumpi("ok");
//! asm.op("PUSH0").op("PUSH0").op("REVERT");
//! asm.label("ok");
//! asm.op("STOP");
//! let code = asm.assemble().unwrap();
//! assert!(!code.is_empty());
//! ```

use crate::opcode::ShanghaiRegistry;
use std::collections::HashMap;
use std::fmt;

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A mnemonic not defined at the Shanghai fork was used.
    UnknownMnemonic(String),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A `push` payload longer than 32 bytes.
    PushTooWide(usize),
    /// A label landed at an offset above `u16::MAX` (PUSH2 width).
    LabelOutOfRange(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::PushTooWide(n) => write!(f, "push payload of {n} bytes exceeds 32"),
            AsmError::LabelOutOfRange(l) => write!(f, "label `{l}` beyond PUSH2 range"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Op(u8),
    Push(Vec<u8>),
    PushLabel(String),
    Label(String),
    Raw(Vec<u8>),
}

/// Incremental bytecode builder. See the [module docs](self) for an example.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<Item>,
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Appends a bare opcode by mnemonic (validated at assembly time).
    pub fn op(&mut self, mnemonic: &str) -> &mut Self {
        // Resolve eagerly when possible so typos fail fast in assemble().
        self.items
            .push(match ShanghaiRegistry::shared().by_mnemonic(mnemonic) {
                Some(info) => Item::Op(info.byte),
                None => Item::Raw(vec![]), // placeholder; reported in assemble()
            });
        if ShanghaiRegistry::shared().by_mnemonic(mnemonic).is_none() {
            // Store the bad mnemonic so assemble() can report it.
            *self.items.last_mut().expect("just pushed") =
                Item::PushLabel(format!("\u{0}bad-op:{mnemonic}"));
        }
        self
    }

    /// Appends the smallest `PUSHn` that fits `payload` (`PUSH0` for empty
    /// or all-zero single byte handled by [`Asm::push_u64`]).
    pub fn push(&mut self, payload: &[u8]) -> &mut Self {
        self.items.push(Item::Push(payload.to_vec()));
        self
    }

    /// Pushes an integer using the minimal encoding (`PUSH0` for zero).
    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        if value == 0 {
            self.items.push(Item::Op(0x5F)); // PUSH0
        } else {
            let be = value.to_be_bytes();
            let start = be.iter().position(|&b| b != 0).expect("value is nonzero");
            self.items.push(Item::Push(be[start..].to_vec()));
        }
        self
    }

    /// Pushes a 4-byte function selector (as Solidity dispatchers do).
    pub fn push_selector(&mut self, selector: [u8; 4]) -> &mut Self {
        self.items.push(Item::Push(selector.to_vec()));
        self
    }

    /// Defines `name` here: emits a `JUMPDEST` and binds the label to it.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.items.push(Item::Label(name.to_owned()));
        self
    }

    /// Pushes the offset of label `name` (a `PUSH2` patched later).
    pub fn push_label(&mut self, name: &str) -> &mut Self {
        self.items.push(Item::PushLabel(name.to_owned()));
        self
    }

    /// `PUSH2 <name>; JUMP`.
    pub fn jump(&mut self, name: &str) -> &mut Self {
        self.push_label(name);
        self.items.push(Item::Op(0x56));
        self
    }

    /// `PUSH2 <name>; JUMPI`.
    pub fn jumpi(&mut self, name: &str) -> &mut Self {
        self.push_label(name);
        self.items.push(Item::Op(0x57));
        self
    }

    /// Appends raw bytes verbatim (metadata trailers, embedded addresses…).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.items.push(Item::Raw(bytes.to_vec()));
        self
    }

    /// Appends every item of another program.
    pub fn extend(&mut self, other: &Asm) -> &mut Self {
        self.items.extend(other.items.iter().cloned());
        self
    }

    /// Number of items queued (not bytes).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items have been queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves labels and emits the final bytecode.
    ///
    /// # Errors
    /// Returns an [`AsmError`] for unknown mnemonics, duplicate or undefined
    /// labels, oversized push payloads, or labels beyond `PUSH2` range.
    pub fn assemble(&self) -> Result<Vec<u8>, AsmError> {
        // Pass 1: compute item sizes and label offsets.
        let mut offsets = HashMap::new();
        let mut pc = 0usize;
        for item in &self.items {
            match item {
                Item::Op(_) => pc += 1,
                Item::Push(p) => {
                    if p.len() > 32 {
                        return Err(AsmError::PushTooWide(p.len()));
                    }
                    pc += 1 + p.len();
                }
                Item::PushLabel(name) => {
                    if let Some(bad) = name.strip_prefix("\u{0}bad-op:") {
                        return Err(AsmError::UnknownMnemonic(bad.to_owned()));
                    }
                    pc += 3; // PUSH2 + 2 bytes
                }
                Item::Label(name) => {
                    if offsets.insert(name.clone(), pc).is_some() {
                        return Err(AsmError::DuplicateLabel(name.clone()));
                    }
                    pc += 1; // JUMPDEST
                }
                Item::Raw(bytes) => pc += bytes.len(),
            }
        }

        // Pass 2: emit.
        let mut out = Vec::with_capacity(pc);
        for item in &self.items {
            match item {
                Item::Op(b) => out.push(*b),
                Item::Push(p) => {
                    out.push(0x5F + p.len() as u8);
                    out.extend_from_slice(p);
                }
                Item::PushLabel(name) => {
                    let &target = offsets
                        .get(name)
                        .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                    let target = u16::try_from(target)
                        .map_err(|_| AsmError::LabelOutOfRange(name.clone()))?;
                    out.push(0x61); // PUSH2
                    out.extend_from_slice(&target.to_be_bytes());
                }
                Item::Label(_) => out.push(0x5B), // JUMPDEST
                Item::Raw(bytes) => out.extend_from_slice(bytes),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    #[test]
    fn minimal_push_encoding() {
        let mut asm = Asm::new();
        asm.push_u64(0)
            .push_u64(1)
            .push_u64(0x100)
            .push_u64(u64::MAX);
        let code = asm.assemble().unwrap();
        let ins = disassemble(&code);
        assert_eq!(ins[0].mnemonic(), "PUSH0");
        assert_eq!(ins[1].mnemonic(), "PUSH1");
        assert_eq!(ins[2].mnemonic(), "PUSH2");
        assert_eq!(ins[3].mnemonic(), "PUSH8");
    }

    #[test]
    fn labels_resolve_to_jumpdests() {
        let mut asm = Asm::new();
        asm.jump("end");
        asm.op("STOP");
        asm.label("end");
        asm.op("STOP");
        let code = asm.assemble().unwrap();
        // PUSH2 0x0005, JUMP, STOP, JUMPDEST, STOP
        assert_eq!(code, vec![0x61, 0x00, 0x05, 0x56, 0x00, 0x5B, 0x00]);
    }

    #[test]
    fn forward_and_backward_references() {
        let mut asm = Asm::new();
        asm.label("loop");
        asm.push_u64(1).op("POP");
        asm.jump("loop");
        asm.jumpi("loop"); // unreachable, but assembles
        let code = asm.assemble().unwrap();
        let ins = disassemble(&code);
        assert_eq!(ins[0].mnemonic(), "JUMPDEST");
        // Both label references point at offset 0.
        assert_eq!(ins[3].operand, vec![0x00, 0x00]);
    }

    #[test]
    fn unknown_mnemonic_errors() {
        let mut asm = Asm::new();
        asm.op("FROBNICATE");
        assert_eq!(
            asm.assemble(),
            Err(AsmError::UnknownMnemonic("FROBNICATE".to_owned()))
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut asm = Asm::new();
        asm.label("x").label("x");
        assert_eq!(
            asm.assemble(),
            Err(AsmError::DuplicateLabel("x".to_owned()))
        );
    }

    #[test]
    fn undefined_label_errors() {
        let mut asm = Asm::new();
        asm.jump("nowhere");
        assert_eq!(
            asm.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".to_owned()))
        );
    }

    #[test]
    fn push_too_wide_errors() {
        let mut asm = Asm::new();
        asm.push(&[0u8; 33]);
        assert_eq!(asm.assemble(), Err(AsmError::PushTooWide(33)));
    }

    #[test]
    fn raw_bytes_are_verbatim() {
        let mut asm = Asm::new();
        asm.op("STOP").raw(&[0xDE, 0xAD]);
        assert_eq!(asm.assemble().unwrap(), vec![0x00, 0xDE, 0xAD]);
    }

    #[test]
    fn selector_is_push4() {
        let mut asm = Asm::new();
        asm.push_selector([0xa9, 0x05, 0x9c, 0xbb]);
        let code = asm.assemble().unwrap();
        let ins = disassemble(&code);
        assert_eq!(ins[0].mnemonic(), "PUSH4");
        assert_eq!(ins[0].operand, vec![0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn extend_concatenates_programs() {
        let mut a = Asm::new();
        a.op("STOP");
        let mut b = Asm::new();
        b.op("ADD");
        a.extend(&b);
        assert_eq!(a.assemble().unwrap(), vec![0x00, 0x01]);
    }
}
