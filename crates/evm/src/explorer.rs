//! The dispatcher explorer: selector-driven dynamic analysis.
//!
//! Solidity-style runtime bytecode starts with a dispatcher that compares
//! the first four calldata bytes against a table of `PUSH4 <selector>; EQ;
//! JUMPI` triples. The explorer recovers that table statically, then
//! *executes* the contract once per discovered selector (plus once along the
//! fallback path, with empty calldata) under a hard gas/step budget,
//! recording what each entry point actually does: which `CALL`/
//! `SELFDESTRUCT` sites are reachable, whether value moves and to whom,
//! storage-read-before-transfer patterns, revert topology, and
//! reentrancy-shaped call-after-`SSTORE` orderings.
//!
//! The paper's detectors are purely static; honeypot families ("The Art of
//! The Scam") are engineered to *look* benign statically while their payout
//! paths are unreachable. Those are exactly the properties a [`Trace`]
//! makes visible, and the `TraceExtractor` in `phishinghook-features` turns
//! them into model-ready feature rows.
//!
//! Execution is observational: each run starts from empty storage and a
//! deterministic [`Env`], runs against any [`Host`] (the [`NullHost`] by
//! default, or a chain-backed host for real callee state), and can never
//! escape the budget — the interpreter's own gas and step limits bound every
//! run, and the explorer never panics on arbitrary bytecode (fuzzed in this
//! module's property tests).

use crate::host::{CallKind, CallOutcome, CallParams, Host, NullHost};
use crate::interp::{Env, Halt, Interpreter, Status};
use crate::u256::U256;

/// Budget and shape knobs for one exploration.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Gas budget per selector run.
    pub gas_per_run: u64,
    /// Step budget per selector run (hard bound on instructions executed).
    pub steps_per_run: u64,
    /// Maximum number of discovered selectors to execute (dispatchers with
    /// more are truncated; `Trace::selectors_total` still reports them all).
    pub max_selectors: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            gas_per_run: 200_000,
            steps_per_run: 20_000,
            max_selectors: 16,
        }
    }
}

/// One observed `CALL`-family site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Program counter of the call opcode.
    pub pc: usize,
    /// Which opcode.
    pub kind: CallKind,
    /// `true` when the call carried nonzero value.
    pub transfers_value: bool,
    /// `true` when the target equals the transaction caller — the shape of
    /// a legitimate payout (or a reflective honeypot bait).
    pub to_caller: bool,
    /// `true` when an `SSTORE` had already executed in this run — the
    /// reentrancy-shaped call-after-write ordering.
    pub after_sstore: bool,
    /// `true` when an `SLOAD` had already executed in this run — a
    /// storage-gated transfer.
    pub after_sload: bool,
}

/// One observed `SELFDESTRUCT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfdestructSite {
    /// Program counter of the opcode.
    pub pc: usize,
    /// `true` when the beneficiary equals the transaction caller.
    pub to_caller: bool,
}

/// The record of one entry-point execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorRun {
    /// The dispatched selector, or `None` for the fallback run.
    pub selector: Option<[u8; 4]>,
    /// How the run terminated.
    pub status: Status,
    /// Gas consumed.
    pub gas_used: u64,
    /// Instructions executed.
    pub steps: u64,
    /// Reached `CALL`-family sites, in execution order.
    pub calls: Vec<CallSite>,
    /// Reached `SELFDESTRUCT` sites (at most one — it terminates the run).
    pub selfdestructs: Vec<SelfdestructSite>,
    /// `SLOAD` count.
    pub sloads: u64,
    /// `SSTORE` count.
    pub sstores: u64,
    /// `LOGn` count.
    pub logs: u64,
}

impl SelectorRun {
    /// `true` when the run ended in `REVERT`.
    pub fn reverted(&self) -> bool {
        self.status == Status::Revert
    }

    /// `true` when the run halted abnormally (bad jump, out of gas, …).
    pub fn halted(&self) -> bool {
        matches!(self.status, Status::Halted(_))
    }
}

/// The structured result of exploring one contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Selectors discovered in the dispatcher table (before truncation).
    pub selectors_total: usize,
    /// One record per executed entry point: every explored selector first,
    /// then the fallback run (always last, `selector: None`).
    pub runs: Vec<SelectorRun>,
}

impl Trace {
    /// The fallback run (always present).
    pub fn fallback(&self) -> &SelectorRun {
        self.runs.last().expect("explore always runs the fallback")
    }

    /// Iterator over the selector (non-fallback) runs.
    pub fn selector_runs(&self) -> impl Iterator<Item = &SelectorRun> {
        self.runs.iter().filter(|r| r.selector.is_some())
    }

    /// All reached call sites across runs.
    pub fn calls(&self) -> impl Iterator<Item = &CallSite> {
        self.runs.iter().flat_map(|r| r.calls.iter())
    }

    /// All reached `SELFDESTRUCT` sites across runs.
    pub fn selfdestructs(&self) -> impl Iterator<Item = &SelfdestructSite> {
        self.runs.iter().flat_map(|r| r.selfdestructs.iter())
    }
}

/// Scans `code` for the dispatcher's selector table.
///
/// The pattern is a `PUSH4 <selector>` whose *next* instruction is `EQ`
/// (covering the canonical `DUP1 PUSH4 … EQ JUMPI` emitted by solc and this
/// repo's assembler, plus Vyper's `CALLDATALOAD PUSH4 … EQ` shape).
/// Duplicates are dropped; order of first appearance is kept.
pub fn scan_selectors(code: &[u8]) -> Vec<[u8; 4]> {
    let mut out: Vec<[u8; 4]> = Vec::new();
    let mut pc = 0usize;
    let reg = crate::opcode::ShanghaiRegistry::shared();
    while pc < code.len() {
        let byte = code[pc];
        let imm = reg.get(byte).map_or(0, |i| usize::from(i.immediate_bytes));
        if byte == 0x63 && pc + 4 < code.len() {
            // PUSH4 with a full immediate; is the following opcode EQ?
            if code.get(pc + 5) == Some(&0x14) {
                let sel = [code[pc + 1], code[pc + 2], code[pc + 3], code[pc + 4]];
                if !out.contains(&sel) {
                    out.push(sel);
                }
            }
        }
        pc += 1 + imm;
    }
    out
}

/// Records what one run touches, delegating state queries to an inner host.
struct RecordingHost<'a> {
    inner: &'a mut dyn Host,
    caller: U256,
    calls: Vec<CallSite>,
    selfdestructs: Vec<SelfdestructSite>,
    sloads: u64,
    sstores: u64,
    logs: u64,
}

impl<'a> RecordingHost<'a> {
    fn new(inner: &'a mut dyn Host, caller: U256) -> Self {
        RecordingHost {
            inner,
            caller,
            calls: Vec::new(),
            selfdestructs: Vec::new(),
            sloads: 0,
            sstores: 0,
            logs: 0,
        }
    }
}

impl Host for RecordingHost<'_> {
    fn balance(&self, addr: &U256) -> Option<U256> {
        self.inner.balance(addr)
    }

    fn code(&self, addr: &U256) -> Option<Vec<u8>> {
        self.inner.code(addr)
    }

    fn call(&mut self, params: &CallParams) -> CallOutcome {
        self.calls.push(CallSite {
            pc: params.pc,
            kind: params.kind,
            transfers_value: !params.value.is_zero(),
            to_caller: params.target == self.caller,
            after_sstore: self.sstores > 0,
            after_sload: self.sloads > 0,
        });
        self.inner.call(params)
    }

    fn on_storage_read(&mut self, pc: usize, key: &U256) {
        self.sloads += 1;
        self.inner.on_storage_read(pc, key);
    }

    fn on_storage_write(&mut self, pc: usize, key: &U256) {
        self.sstores += 1;
        self.inner.on_storage_write(pc, key);
    }

    fn on_selfdestruct(&mut self, pc: usize, beneficiary: &U256) {
        self.selfdestructs.push(SelfdestructSite {
            pc,
            to_caller: *beneficiary == self.caller,
        });
        self.inner.on_selfdestruct(pc, beneficiary);
    }

    fn on_log(&mut self, pc: usize, topics: usize) {
        self.logs += 1;
        self.inner.on_log(pc, topics);
    }
}

/// The dispatcher explorer. Cheap to construct; stateless between contracts.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    /// Budget configuration applied to every run.
    pub config: ExplorerConfig,
}

impl Explorer {
    /// An explorer with the given budgets.
    pub fn new(config: ExplorerConfig) -> Self {
        Explorer { config }
    }

    /// Explores `code` against the [`NullHost`] (no foreign state).
    pub fn explore(&self, code: &[u8]) -> Trace {
        self.explore_with_host(code, &mut NullHost)
    }

    /// Explores `code` with foreign state served by `host`: scans the
    /// selector table, then executes each selector (argument words are a
    /// deterministic nonzero pattern) and finally the fallback path.
    pub fn explore_with_host(&self, code: &[u8], host: &mut dyn Host) -> Trace {
        let selectors = scan_selectors(code);
        let selectors_total = selectors.len();
        let mut runs = Vec::with_capacity(selectors.len().min(self.config.max_selectors) + 1);
        for sel in selectors.iter().take(self.config.max_selectors) {
            // selector ++ two argument words: the caller address (so
            // `transfer(address,…)`-shaped functions see a plausible
            // recipient) and a small nonzero amount.
            let mut calldata = Vec::with_capacity(68);
            calldata.extend_from_slice(sel);
            calldata.extend_from_slice(&Env::default().caller.to_be_bytes());
            calldata.extend_from_slice(&U256::from_u64(1).to_be_bytes());
            runs.push(self.run_one(code, host, Some(*sel), &calldata));
        }
        runs.push(self.run_one(code, host, None, &[]));
        Trace {
            selectors_total,
            runs,
        }
    }

    fn run_one(
        &self,
        code: &[u8],
        host: &mut dyn Host,
        selector: Option<[u8; 4]>,
        calldata: &[u8],
    ) -> SelectorRun {
        let mut interp = Interpreter::new();
        interp.gas_limit = self.config.gas_per_run;
        interp.step_limit = self.config.steps_per_run;
        interp.env.calldata = calldata.to_vec();
        let caller = interp.env.caller;
        let mut recorder = RecordingHost::new(host, caller);
        let result = interp.run_with_host(code, &mut recorder);
        SelectorRun {
            selector,
            status: result.status,
            gas_used: result.gas_used,
            steps: result.steps,
            calls: recorder.calls,
            selfdestructs: recorder.selfdestructs,
            sloads: recorder.sloads,
            sstores: recorder.sstores,
            logs: recorder.logs,
        }
    }
}

/// `true` when the halt is one of the budget-exhaustion variants (rather
/// than a structural fault in the bytecode).
pub fn out_of_budget(status: &Status) -> bool {
    matches!(
        status,
        Status::Halted(Halt::OutOfGas) | Status::Halted(Halt::StepLimit)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    /// A two-function dispatcher: `pay()` CALLs value to the caller;
    /// `lock()` reverts after an SLOAD.
    fn two_fn_contract() -> Vec<u8> {
        let mut asm = Asm::new();
        // Dispatcher
        asm.op("PUSH0").op("CALLDATALOAD").push_u64(0xE0).op("SHR");
        asm.op("DUP1")
            .push_selector([0x11, 0x22, 0x33, 0x44])
            .op("EQ");
        asm.jumpi("pay");
        asm.op("DUP1")
            .push_selector([0xAA, 0xBB, 0xCC, 0xDD])
            .op("EQ");
        asm.jumpi("lock");
        asm.op("STOP"); // fallback
        asm.label("pay");
        asm.push_u64(0).push_u64(0).push_u64(0).push_u64(0);
        asm.push_u64(1).op("CALLER").push_u64(50_000).op("CALL");
        asm.op("POP").op("STOP");
        asm.label("lock");
        asm.push_u64(7).op("SLOAD").op("POP");
        asm.push_u64(0).push_u64(0).op("REVERT");
        asm.assemble().unwrap()
    }

    #[test]
    fn scan_finds_dispatcher_selectors_in_order() {
        let code = two_fn_contract();
        assert_eq!(
            scan_selectors(&code),
            vec![[0x11, 0x22, 0x33, 0x44], [0xAA, 0xBB, 0xCC, 0xDD]]
        );
    }

    #[test]
    fn scan_ignores_push4_without_eq() {
        let mut asm = Asm::new();
        asm.push_selector([1, 2, 3, 4]).op("POP").op("STOP");
        assert!(scan_selectors(&asm.assemble().unwrap()).is_empty());
    }

    #[test]
    fn scan_skips_selectors_inside_push_immediates() {
        // A PUSH8 whose immediate embeds what looks like PUSH4..EQ must not
        // be reported: the scanner walks instruction boundaries.
        let code = [0x67, 0x63, 0x01, 0x02, 0x03, 0x04, 0x14, 0x00, 0x00, 0x00];
        assert!(scan_selectors(&code).is_empty());
    }

    #[test]
    fn explore_runs_every_selector_plus_fallback() {
        let trace = Explorer::default().explore(&two_fn_contract());
        assert_eq!(trace.selectors_total, 2);
        assert_eq!(trace.runs.len(), 3);
        assert_eq!(trace.fallback().selector, None);
        assert_eq!(trace.fallback().status, Status::Success);

        let pay = &trace.runs[0];
        assert_eq!(pay.status, Status::Success);
        assert_eq!(pay.calls.len(), 1);
        assert!(pay.calls[0].transfers_value);
        assert!(pay.calls[0].to_caller);
        assert!(!pay.calls[0].after_sload);

        let lock = &trace.runs[1];
        assert!(lock.reverted());
        assert_eq!(lock.sloads, 1);
        assert!(lock.calls.is_empty());
    }

    #[test]
    fn storage_gated_transfer_is_visible_in_the_trace() {
        // withdraw(): pays out only when storage[0] == 1; fresh storage is
        // empty so the CALL is unreachable — the honeypot shape.
        let mut asm = Asm::new();
        asm.op("PUSH0").op("CALLDATALOAD").push_u64(0xE0).op("SHR");
        asm.op("DUP1")
            .push_selector([0x3C, 0xCF, 0xD6, 0x0B])
            .op("EQ");
        asm.jumpi("withdraw");
        asm.op("STOP");
        asm.label("withdraw");
        asm.push_u64(0).op("SLOAD").push_u64(1).op("EQ");
        asm.jumpi("payout");
        asm.push_u64(0).push_u64(0).op("REVERT");
        asm.label("payout");
        asm.push_u64(0).push_u64(0).push_u64(0).push_u64(0);
        asm.push_u64(1).op("CALLER").push_u64(50_000).op("CALL");
        asm.op("POP").op("STOP");
        let trace = Explorer::default().explore(&asm.assemble().unwrap());
        let run = &trace.runs[0];
        assert!(run.reverted(), "{:?}", run.status);
        assert_eq!(run.sloads, 1);
        assert!(run.calls.is_empty(), "transfer must be unreachable");
    }

    #[test]
    fn selfdestruct_to_caller_is_recorded() {
        let mut asm = Asm::new();
        asm.op("PUSH0").op("CALLDATALOAD").push_u64(0xE0).op("SHR");
        asm.op("DUP1")
            .push_selector([0xDE, 0xAD, 0xBE, 0xEF])
            .op("EQ");
        asm.jumpi("skim");
        asm.op("STOP");
        asm.label("skim");
        asm.op("CALLER").op("SELFDESTRUCT");
        let trace = Explorer::default().explore(&asm.assemble().unwrap());
        let run = &trace.runs[0];
        assert_eq!(run.status, Status::SelfDestructed);
        assert_eq!(run.selfdestructs.len(), 1);
        assert!(run.selfdestructs[0].to_caller);
    }

    #[test]
    fn budget_bounds_infinite_loops() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.jump("spin");
        let explorer = Explorer::new(ExplorerConfig {
            gas_per_run: 10_000,
            steps_per_run: 5_000,
            ..ExplorerConfig::default()
        });
        let trace = explorer.explore(&asm.assemble().unwrap());
        assert!(out_of_budget(&trace.fallback().status));
        assert!(trace.fallback().steps <= 5_000);
    }

    #[test]
    fn max_selectors_truncates_but_reports_total() {
        let mut asm = Asm::new();
        asm.op("PUSH0").op("CALLDATALOAD").push_u64(0xE0).op("SHR");
        for i in 0..8u8 {
            asm.op("DUP1").push_selector([i, i, i, i]).op("EQ");
            asm.jumpi("hit");
        }
        asm.op("STOP");
        asm.label("hit");
        asm.op("STOP");
        let explorer = Explorer::new(ExplorerConfig {
            max_selectors: 3,
            ..ExplorerConfig::default()
        });
        let trace = explorer.explore(&asm.assemble().unwrap());
        assert_eq!(trace.selectors_total, 8);
        assert_eq!(trace.runs.len(), 4); // 3 selectors + fallback
    }

    #[test]
    fn empty_code_explores_cleanly() {
        let trace = Explorer::default().explore(&[]);
        assert_eq!(trace.selectors_total, 0);
        assert_eq!(trace.runs.len(), 1);
        assert_eq!(trace.fallback().status, Status::Success);
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The explorer must never panic and always halt within budget on
        /// arbitrary bytecode — it runs inside the serving path.
        #[test]
        fn explorer_is_total_on_arbitrary_bytecode(
            code in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let explorer = Explorer::new(ExplorerConfig {
                gas_per_run: 50_000,
                steps_per_run: 10_000,
                max_selectors: 8,
            });
            let trace = explorer.explore(&code);
            prop_assert!(trace.runs.len() <= 9);
            for run in &trace.runs {
                prop_assert!(run.steps <= 10_000);
                prop_assert!(run.gas_used <= 50_000);
            }
        }

        /// Arbitrary calldata against arbitrary code through run_with_host.
        #[test]
        fn interpreter_is_total_under_host(
            code in proptest::collection::vec(any::<u8>(), 0..256),
            calldata in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let mut interp = Interpreter::new();
            interp.gas_limit = 30_000;
            interp.step_limit = 10_000;
            interp.env.calldata = calldata;
            let mut host = NullHost;
            let r = interp.run_with_host(&code, &mut host);
            prop_assert!(r.steps <= 10_000);
            prop_assert!(r.gas_used <= 30_000);
        }

        /// Exploration is deterministic: same bytes, same trace.
        #[test]
        fn exploration_is_deterministic(
            code in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let explorer = Explorer::default();
            prop_assert_eq!(explorer.explore(&code), explorer.explore(&code));
        }
    }
}
