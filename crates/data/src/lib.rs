//! Synthetic Ethereum contract corpus for the PhishingHook reproduction.
//!
//! The paper trains on 7,000 real contracts (3,458 unique phishing bytecodes
//! from Etherscan's "Phish/Hack" flag plus matched benign samples). That
//! dataset is not reachable offline, so this crate *builds the substrate*:
//! a deterministic generator that emits realistic EVM runtime bytecode from
//! Solidity-style templates, with the dataset properties the paper's
//! experiments rely on:
//!
//! * shared opcode vocabulary across classes (Fig. 3's observation),
//! * bit-identical duplicates from proxy/clone deployments (the paper's
//!   17,455 → 3,458 dedup step),
//! * a monthly deployment profile shaped like Fig. 2, and
//! * temporal drift in phishing patterns (the Fig. 8 time-resistance
//!   experiment).
//!
//! See `DESIGN.md` §2 for the substitution rationale.
//!
//! ```
//! use phishinghook_data::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig {
//!     n_contracts: 50,
//!     seed: 7,
//!     ..Default::default()
//! });
//! assert_eq!(corpus.records.len(), 50);
//! let (codes, labels) = corpus.as_dataset();
//! assert_eq!(codes.len(), labels.len());
//! ```

pub mod chain;
pub mod contract;
pub mod corpus;
pub mod csv;
pub mod firehose;
pub mod honeypot;
pub mod templates;

pub use chain::{
    extract_labeled_bytecodes, word_to_address, Address, ChainError, ChainHost, CodeSource,
    LabelOracle, RetryPolicy, SharedChain, SimulatedChain,
};
pub use contract::{ContractRecord, Label, Month};
pub use corpus::{Corpus, CorpusConfig, Scenario};
pub use firehose::{ChainFirehose, DeployEvent, FirehoseConfig};
pub use honeypot::HoneypotFamily;
