//! Contract templates: Solidity-style runtime-bytecode construction.
//!
//! Every synthetic contract is a [`ContractSpec`]: an optional non-payable
//! guard, a selector dispatcher, function bodies composed of [`Gadget`]s, a
//! terminator per function, and a solc-style CBOR metadata trailer. Benign
//! and phishing contracts share this scaffolding and *most* of the gadget
//! vocabulary — exactly why the paper's Fig. 3 finds that no single opcode
//! frequency separates the classes — and differ only in gadget mixture
//! weights chosen by the corpus generator.
//!
//! All emitted bodies are stack-neutral and interpreter-validated: generated
//! contracts really execute (dispatch, storage, calls) rather than being
//! random byte soup.

use phishinghook_evm::asm::{Asm, AsmError};
use phishinghook_evm::keccak::keccak256;

/// First four bytes of `keccak256(signature)` — the Solidity selector.
pub fn selector(signature: &str) -> [u8; 4] {
    let d = keccak256(signature.as_bytes());
    [d[0], d[1], d[2], d[3]]
}

/// A stack-neutral code fragment used inside function bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gadget {
    /// `SSTORE(slot, calldata[4..36])` — setter.
    StoreArg {
        /// Storage slot written.
        slot: u64,
    },
    /// `SLOAD(slot)` then discard — storage touch.
    LoadStorage {
        /// Storage slot read.
        slot: u64,
    },
    /// `require(msg.sender == owner)` with owner in `slot`.
    RequireOwner {
        /// Storage slot holding the owner address.
        slot: u64,
    },
    /// `LOG<topics>` event emission over one memory word.
    EmitEvent {
        /// Topic count (0..=4).
        topics: u8,
        /// Topic seed (topics are derived deterministically from it).
        seed: u64,
    },
    /// Solidity 0.8-style checked addition of two calldata words, stored.
    CheckedAdd {
        /// Storage slot receiving the sum.
        slot: u64,
    },
    /// `require(gasleft() > min_gas)` — the "well-structured contracts
    /// manage gas" pattern the paper's SHAP analysis surfaces.
    GasCheck {
        /// Minimum gas required to proceed.
        min_gas: u16,
    },
    /// External call to an address held in storage, zero value.
    ExternalCall {
        /// Storage slot holding the callee.
        slot: u64,
        /// Whether to bubble failure (`ISZERO`-guarded revert) and touch
        /// return data.
        check_returndata: bool,
        /// `true` forwards a hardcoded gas amount (`call{gas: N}`), `false`
        /// forwards the remaining gas via `GAS`. Both appear in real code
        /// of both classes, diluting the gas-opcode signal.
        fixed_gas: bool,
    },
    /// Transfers the entire contract balance via `CALL`.
    DrainBalance {
        /// `true` sends to `msg.sender` (a legitimate "withdraw all");
        /// `false` sends to a hardcoded address (the drainer signature).
        to_caller: bool,
        /// Hardcoded recipient when `to_caller` is false.
        attacker: [u8; 20],
    },
    /// Crafts a `transferFrom(victim, attacker, amount)` call against a
    /// token held in storage — the approval-phishing signature.
    TransferFromSweep {
        /// Storage slot holding the token address.
        token_slot: u64,
        /// Sweep destination.
        attacker: [u8; 20],
    },
    /// Junk arithmetic (obfuscation / compiler noise).
    JunkArith {
        /// Number of push-push-op-pop rounds.
        ops: u8,
        /// Seed for operand/op selection.
        seed: u64,
    },
    /// `mapping(address => x)` read: keccak of (caller, slot), `SLOAD`.
    MappingRead {
        /// Mapping base slot.
        slot: u64,
    },
    /// `mapping(address => x)` write from calldata.
    MappingWrite {
        /// Mapping base slot.
        slot: u64,
    },
    /// `require(block.timestamp >/< deadline)`.
    TimestampGate {
        /// Unix-time deadline.
        deadline: u32,
        /// `true` requires `timestamp > deadline`, `false` the opposite.
        after: bool,
    },
    /// XOR-decoded constant (obfuscated address/selector material).
    ObfuscatedConst {
        /// First operand.
        a: u64,
        /// Second operand.
        b: u64,
    },
    /// `AND`-masking of a hardcoded address.
    MaskedAddress {
        /// The address material.
        addr: [u8; 20],
    },
    /// `DELEGATECALL` forward to an implementation in storage.
    DelegateForward {
        /// Storage slot holding the implementation.
        slot: u64,
    },
    /// Touches `SELFBALANCE` and `BALANCE`.
    BalanceCheck,
}

/// How a function body ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// `STOP`.
    Stop,
    /// Returns the word at `slot`.
    ReturnWord {
        /// Storage slot returned.
        slot: u64,
    },
    /// Returns `true` (the ERC-20 convention).
    ReturnTrue,
    /// Reverts with a one-word message.
    RevertMsg {
        /// Message material.
        code: u64,
    },
    /// `SELFDESTRUCT` to an address in storage.
    SelfDestruct {
        /// Storage slot holding the beneficiary.
        slot: u64,
    },
}

/// One externally callable function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpec {
    /// 4-byte dispatcher selector.
    pub selector: [u8; 4],
    /// Body fragments, emitted in order.
    pub gadgets: Vec<Gadget>,
    /// Body terminator.
    pub terminator: Terminator,
}

/// A complete synthetic contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractSpec {
    /// Emit the non-payable `CALLVALUE` guard.
    pub payable_guard: bool,
    /// Dispatcher functions.
    pub functions: Vec<FnSpec>,
    /// Solc-style CBOR metadata trailer content (32-byte digest material).
    pub metadata_seed: Option<u64>,
}

impl ContractSpec {
    /// Assembles the spec into runtime bytecode.
    ///
    /// # Errors
    /// Returns the underlying assembler error (cannot occur for specs built
    /// from this module's vocabulary; surfaced for API honesty).
    pub fn build(&self) -> Result<Vec<u8>, AsmError> {
        let mut asm = Asm::new();
        let mut labels = LabelGen::default();

        // Solidity free-memory-pointer preamble.
        asm.push(&[0x80]).push(&[0x40]).op("MSTORE");

        if self.payable_guard {
            let ok = labels.fresh("nonpayable");
            asm.op("CALLVALUE").op("ISZERO");
            asm.jumpi(&ok);
            asm.op("PUSH0").op("PUSH0").op("REVERT");
            asm.label(&ok);
        }

        // Dispatcher.
        asm.push(&[0x04]).op("CALLDATASIZE").op("LT");
        asm.jumpi("fallback");
        asm.op("PUSH0").op("CALLDATALOAD").push(&[0xE0]).op("SHR");
        let fn_labels: Vec<String> = (0..self.functions.len())
            .map(|i| format!("fn_{i}"))
            .collect();
        for (f, label) in self.functions.iter().zip(&fn_labels) {
            asm.op("DUP1").push_selector(f.selector).op("EQ");
            asm.jumpi(label);
        }
        asm.op("POP");
        asm.jump("fallback");

        // Function bodies.
        for (f, label) in self.functions.iter().zip(&fn_labels) {
            asm.label(label);
            asm.op("POP"); // drop the dispatched selector
            for g in &f.gadgets {
                emit_gadget(&mut asm, g, &mut labels);
            }
            emit_terminator(&mut asm, f.terminator);
        }

        // Fallback: plain receive.
        asm.label("fallback");
        asm.op("STOP");

        // Designated-invalid separator + metadata trailer, as solc emits.
        if let Some(seed) = self.metadata_seed {
            asm.raw(&[0xFE]);
            asm.raw(&metadata_trailer(seed));
        }
        asm.assemble()
    }
}

#[derive(Default)]
struct LabelGen {
    n: usize,
}

impl LabelGen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.n += 1;
        format!("{prefix}_{}", self.n)
    }
}

fn push_u64(asm: &mut Asm, v: u64) {
    asm.push_u64(v);
}

fn emit_gadget(asm: &mut Asm, gadget: &Gadget, labels: &mut LabelGen) {
    match gadget {
        Gadget::StoreArg { slot } => {
            asm.push(&[0x04]).op("CALLDATALOAD");
            push_u64(asm, *slot);
            asm.op("SSTORE");
        }
        Gadget::LoadStorage { slot } => {
            push_u64(asm, *slot);
            asm.op("SLOAD").op("POP");
        }
        Gadget::RequireOwner { slot } => {
            let ok = labels.fresh("owner_ok");
            asm.op("CALLER");
            push_u64(asm, *slot);
            asm.op("SLOAD").op("EQ");
            asm.jumpi(&ok);
            asm.op("PUSH0").op("PUSH0").op("REVERT");
            asm.label(&ok);
        }
        Gadget::EmitEvent { topics, seed } => {
            // One memory word of event data, then LOGn.
            asm.push(&[0x2A]).op("PUSH0").op("MSTORE");
            let topics = (*topics).min(4);
            for t in 0..topics {
                let topic = seed.wrapping_mul(0x9E37).wrapping_add(u64::from(t));
                let mut word = [0u8; 32];
                word[24..].copy_from_slice(&topic.to_be_bytes());
                asm.push(&word);
            }
            asm.push(&[0x20]).op("PUSH0");
            asm.op(match topics {
                0 => "LOG0",
                1 => "LOG1",
                2 => "LOG2",
                3 => "LOG3",
                _ => "LOG4",
            });
        }
        Gadget::CheckedAdd { slot } => {
            let ok = labels.fresh("add_ok");
            asm.push(&[0x04]).op("CALLDATALOAD");
            asm.push(&[0x24]).op("CALLDATALOAD");
            asm.op("DUP2").op("ADD");
            asm.op("DUP2").op("DUP2").op("LT").op("ISZERO");
            asm.jumpi(&ok);
            asm.op("PUSH0").op("PUSH0").op("REVERT");
            asm.label(&ok);
            push_u64(asm, *slot);
            asm.op("SSTORE").op("POP");
        }
        Gadget::GasCheck { min_gas } => {
            let ok = labels.fresh("gas_ok");
            asm.op("GAS");
            asm.push(&min_gas.to_be_bytes());
            // Stack [gas, min]; LT pops min, gas → min < gas.
            asm.op("LT");
            asm.jumpi(&ok);
            asm.op("PUSH0").op("PUSH0").op("REVERT");
            asm.label(&ok);
        }
        Gadget::ExternalCall {
            slot,
            check_returndata,
            fixed_gas,
        } => {
            asm.op("PUSH0")
                .op("PUSH0")
                .op("PUSH0")
                .op("PUSH0")
                .op("PUSH0");
            push_u64(asm, *slot);
            asm.op("SLOAD");
            if *fixed_gas {
                asm.push(&[0x01, 0x86, 0xA0]);
            } else {
                asm.op("GAS");
            }
            asm.op("CALL");
            if *check_returndata {
                let ok = labels.fresh("call_ok");
                asm.jumpi(&ok);
                asm.op("PUSH0").op("PUSH0").op("REVERT");
                asm.label(&ok);
                asm.op("RETURNDATASIZE").op("POP");
            } else {
                asm.op("POP");
            }
        }
        Gadget::DrainBalance {
            to_caller,
            attacker,
        } => {
            asm.op("PUSH0").op("PUSH0").op("PUSH0").op("PUSH0");
            asm.op("SELFBALANCE");
            if *to_caller {
                // Legitimate "withdraw all to msg.sender": Solidity forwards
                // the remaining gas via GAS.
                asm.op("CALLER");
                asm.op("GAS");
            } else {
                // Drainer signature: hardcoded recipient AND hardcoded gas
                // (hand-written sweep code rarely calls gasleft()).
                asm.push(attacker);
                asm.push(&[0x03, 0x0D, 0x40]);
            }
            asm.op("CALL").op("POP");
        }
        Gadget::TransferFromSweep {
            token_slot,
            attacker,
        } => {
            // calldata: transferFrom(caller, attacker, calldata[0x44..])
            asm.push_selector(selector("transferFrom(address,address,uint256)"));
            asm.push(&[0xE0]).op("SHL").op("PUSH0").op("MSTORE");
            asm.op("CALLER").push(&[0x04]).op("MSTORE");
            asm.push(attacker).push(&[0x24]).op("MSTORE");
            asm.push(&[0x44])
                .op("CALLDATALOAD")
                .push(&[0x44])
                .op("MSTORE");
            asm.op("PUSH0").op("PUSH0"); // retLen retOff
            asm.push(&[0x64]).op("PUSH0").op("PUSH0"); // argsLen argsOff value
            push_u64(asm, *token_slot);
            // Hardcoded gas, as hand-rolled sweep scripts do.
            asm.op("SLOAD")
                .push(&[0x01, 0x86, 0xA0])
                .op("CALL")
                .op("POP");
        }
        Gadget::JunkArith { ops, seed } => {
            let mut s = *seed;
            for _ in 0..*ops {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = (s >> 16) & 0xFF;
                let b = (s >> 32) & 0xFF;
                asm.push(&[a.max(1) as u8]).push(&[b.max(1) as u8]);
                asm.op(match (s >> 48) % 6 {
                    0 => "ADD",
                    1 => "MUL",
                    2 => "XOR",
                    3 => "AND",
                    4 => "OR",
                    _ => "SUB",
                });
                asm.op("POP");
            }
        }
        Gadget::MappingRead { slot } => {
            asm.op("CALLER").op("PUSH0").op("MSTORE");
            push_u64(asm, *slot);
            asm.push(&[0x20]).op("MSTORE");
            asm.push(&[0x40]).op("PUSH0").op("SHA3");
            asm.op("SLOAD").op("POP");
        }
        Gadget::MappingWrite { slot } => {
            asm.op("CALLER").op("PUSH0").op("MSTORE");
            push_u64(asm, *slot);
            asm.push(&[0x20]).op("MSTORE");
            asm.push(&[0x40]).op("PUSH0").op("SHA3");
            asm.push(&[0x04]).op("CALLDATALOAD");
            asm.op("SWAP1").op("SSTORE");
        }
        Gadget::TimestampGate { deadline, after } => {
            let ok = labels.fresh("time_ok");
            asm.op("TIMESTAMP");
            asm.push(&deadline.to_be_bytes());
            // Stack [ts, deadline]; LT → deadline < ts (i.e. after).
            asm.op(if *after { "LT" } else { "GT" });
            asm.jumpi(&ok);
            asm.op("PUSH0").op("PUSH0").op("REVERT");
            asm.label(&ok);
        }
        Gadget::ObfuscatedConst { a, b } => {
            push_u64(asm, (*a).max(1));
            push_u64(asm, (*b).max(1));
            asm.op("XOR").op("PUSH0").op("MSTORE");
        }
        Gadget::MaskedAddress { addr } => {
            asm.push(addr);
            asm.push(&[0xFF; 20]);
            asm.op("AND").op("POP");
        }
        Gadget::DelegateForward { slot } => {
            asm.op("PUSH0").op("PUSH0").op("PUSH0").op("PUSH0");
            push_u64(asm, *slot);
            asm.op("SLOAD").op("GAS").op("DELEGATECALL").op("POP");
        }
        Gadget::BalanceCheck => {
            asm.op("SELFBALANCE").op("PUSH0").op("MSTORE");
            asm.op("ADDRESS").op("BALANCE").op("POP");
        }
    }
}

fn emit_terminator(asm: &mut Asm, terminator: Terminator) {
    match terminator {
        Terminator::Stop => {
            asm.op("STOP");
        }
        Terminator::ReturnWord { slot } => {
            push_u64(asm, slot);
            asm.op("SLOAD").op("PUSH0").op("MSTORE");
            asm.push(&[0x20]).op("PUSH0").op("RETURN");
        }
        Terminator::ReturnTrue => {
            asm.push(&[0x01]).op("PUSH0").op("MSTORE");
            asm.push(&[0x20]).op("PUSH0").op("RETURN");
        }
        Terminator::RevertMsg { code } => {
            push_u64(asm, code.max(1));
            asm.op("PUSH0").op("MSTORE");
            asm.push(&[0x20]).op("PUSH0").op("REVERT");
        }
        Terminator::SelfDestruct { slot } => {
            push_u64(asm, slot);
            asm.op("SLOAD").op("SELFDESTRUCT");
        }
    }
}

/// Solc-style CBOR metadata trailer (`ipfs` digest + `solc` version).
pub fn metadata_trailer(seed: u64) -> Vec<u8> {
    let digest = keccak256(&seed.to_be_bytes());
    let mut out = Vec::with_capacity(53);
    out.extend_from_slice(&[0xA2, 0x64]);
    out.extend_from_slice(b"ipfs");
    out.extend_from_slice(&[0x58, 0x22, 0x12, 0x20]);
    out.extend_from_slice(&digest);
    out.extend_from_slice(&[0x64]);
    out.extend_from_slice(b"solc");
    out.extend_from_slice(&[0x43, 0x00, 0x08, 0x13]);
    out.extend_from_slice(&[0x00, 0x33]);
    out
}

/// EIP-1167 minimal proxy for `target` — the 45-byte clone bytecode whose
/// bit-identical duplicates motivate the paper's deduplication step.
pub fn minimal_proxy(target: [u8; 20]) -> Vec<u8> {
    let mut code = Vec::with_capacity(45);
    code.extend_from_slice(&[0x36, 0x3D, 0x3D, 0x37, 0x3D, 0x3D, 0x3D, 0x36, 0x3D, 0x73]);
    code.extend_from_slice(&target);
    code.extend_from_slice(&[
        0x5A, 0xF4, 0x3D, 0x82, 0x80, 0x3E, 0x90, 0x3D, 0x91, 0x60, 0x2B, 0x57, 0xFD, 0x5B, 0xF3,
    ]);
    code
}

/// Well-known Solidity selectors used by the corpus families.
pub mod selectors {
    use super::selector;

    /// `(name, signature)` pairs for benign ERC-20-style functions.
    pub fn erc20() -> Vec<[u8; 4]> {
        [
            "transfer(address,uint256)",
            "transferFrom(address,address,uint256)",
            "approve(address,uint256)",
            "balanceOf(address)",
            "allowance(address,address)",
            "totalSupply()",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }

    /// Vault/staking functions.
    pub fn vault() -> Vec<[u8; 4]> {
        [
            "deposit(uint256)",
            "withdraw(uint256)",
            "balanceOf(address)",
            "totalAssets()",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }

    /// Multisig wallet functions.
    pub fn multisig() -> Vec<[u8; 4]> {
        [
            "submitTransaction(address,uint256,bytes)",
            "confirmTransaction(uint256)",
            "executeTransaction(uint256)",
            "revokeConfirmation(uint256)",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }

    /// Admin/ownable utility functions.
    pub fn ownable() -> Vec<[u8; 4]> {
        [
            "owner()",
            "transferOwnership(address)",
            "renounceOwnership()",
            "pause()",
            "unpause()",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }

    /// NFT-style functions.
    pub fn erc721() -> Vec<[u8; 4]> {
        [
            "ownerOf(uint256)",
            "safeTransferFrom(address,address,uint256)",
            "mint(address)",
            "tokenURI(uint256)",
            "setApprovalForAll(address,bool)",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }

    /// Router / payment-forwarder functions — legitimate `transferFrom`
    /// users (DEX routers pull approved tokens), the benign side of the
    /// approval-pattern overlap.
    pub fn router() -> Vec<[u8; 4]> {
        [
            "swapExactTokensForTokens(uint256,uint256,address[],address,uint256)",
            "forwardPayment(address,uint256)",
            "batchTransfer(address[],uint256[])",
            "collectFee(address)",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }

    /// Bait selectors used by phishing claim/airdrop pages (early wave).
    pub fn phishing_early() -> Vec<[u8; 4]> {
        [
            "claim()",
            "claimReward()",
            "airdrop()",
            "register()",
            "connect()",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }

    /// Bait selectors of the later 2024 wave (drift for the time-resistance
    /// experiment).
    pub fn phishing_late() -> Vec<[u8; 4]> {
        [
            "multicall(bytes[])",
            "execute(address,bytes)",
            "claimRewards(address)",
            "securityUpdate()",
            "verifyWallet()",
        ]
        .iter()
        .map(|s| selector(s))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::disasm::disassemble;
    use phishinghook_evm::interp::{Interpreter, Status};

    fn spec_with(gadgets: Vec<Gadget>, terminator: Terminator) -> ContractSpec {
        ContractSpec {
            payable_guard: true,
            functions: vec![FnSpec {
                selector: selector("claim()"),
                gadgets,
                terminator,
            }],
            metadata_seed: Some(7),
        }
    }

    fn call(code: &[u8], sel: [u8; 4]) -> Status {
        let mut interp = Interpreter::new();
        // Pre-populate a few storage slots so SLOAD'ed addresses are sane.
        for slot in 0..8u64 {
            interp.storage.insert(
                phishinghook_evm::U256::from_u64(slot),
                phishinghook_evm::U256::from_u64(0xBEEF),
            );
        }
        let mut calldata = sel.to_vec();
        calldata.extend_from_slice(&[0u8; 0x80]);
        interp.run_call(code, &calldata).status
    }

    #[test]
    fn selector_matches_solidity() {
        assert_eq!(
            selector("transfer(address,uint256)"),
            [0xA9, 0x05, 0x9C, 0xBB]
        );
        assert_eq!(
            selector("transferFrom(address,address,uint256)"),
            [0x23, 0xB8, 0x72, 0xDD]
        );
    }

    #[test]
    fn every_gadget_executes_cleanly() {
        let attacker = [0x66; 20];
        let all: Vec<(&str, Gadget)> = vec![
            ("store", Gadget::StoreArg { slot: 3 }),
            ("load", Gadget::LoadStorage { slot: 3 }),
            ("event", Gadget::EmitEvent { topics: 3, seed: 5 }),
            ("checked_add", Gadget::CheckedAdd { slot: 4 }),
            ("gas", Gadget::GasCheck { min_gas: 1000 }),
            (
                "call",
                Gadget::ExternalCall {
                    slot: 1,
                    check_returndata: true,
                    fixed_gas: false,
                },
            ),
            (
                "call_plain",
                Gadget::ExternalCall {
                    slot: 1,
                    check_returndata: false,
                    fixed_gas: true,
                },
            ),
            (
                "drain_caller",
                Gadget::DrainBalance {
                    to_caller: true,
                    attacker,
                },
            ),
            (
                "drain_attacker",
                Gadget::DrainBalance {
                    to_caller: false,
                    attacker,
                },
            ),
            (
                "sweep",
                Gadget::TransferFromSweep {
                    token_slot: 2,
                    attacker,
                },
            ),
            ("junk", Gadget::JunkArith { ops: 4, seed: 9 }),
            ("map_read", Gadget::MappingRead { slot: 6 }),
            ("map_write", Gadget::MappingWrite { slot: 6 }),
            (
                "time",
                Gadget::TimestampGate {
                    deadline: 1_000_000,
                    after: true,
                },
            ),
            ("obf", Gadget::ObfuscatedConst { a: 123, b: 456 }),
            ("mask", Gadget::MaskedAddress { addr: attacker }),
            ("delegate", Gadget::DelegateForward { slot: 1 }),
            ("balance", Gadget::BalanceCheck),
        ];
        for (name, gadget) in all {
            let spec = spec_with(vec![gadget], Terminator::Stop);
            let code = spec.build().unwrap_or_else(|e| panic!("{name}: {e}"));
            let status = call(&code, selector("claim()"));
            assert!(
                matches!(status, Status::Success),
                "{name} did not run cleanly: {status:?}"
            );
        }
    }

    #[test]
    fn require_owner_reverts_for_non_owner() {
        let spec = spec_with(vec![Gadget::RequireOwner { slot: 0 }], Terminator::Stop);
        let code = spec.build().unwrap();
        // Caller (0xCA11E4) != owner (0xBEEF) → revert.
        assert_eq!(call(&code, selector("claim()")), Status::Revert);
    }

    #[test]
    fn terminators_behave() {
        for (t, expect) in [
            (Terminator::Stop, Status::Success),
            (Terminator::ReturnWord { slot: 1 }, Status::Success),
            (Terminator::ReturnTrue, Status::Success),
            (Terminator::RevertMsg { code: 9 }, Status::Revert),
            (Terminator::SelfDestruct { slot: 1 }, Status::SelfDestructed),
        ] {
            let spec = spec_with(vec![], t);
            let code = spec.build().unwrap();
            assert_eq!(call(&code, selector("claim()")), expect, "{t:?}");
        }
    }

    #[test]
    fn unknown_selector_hits_fallback() {
        let spec = spec_with(vec![Gadget::StoreArg { slot: 1 }], Terminator::Stop);
        let code = spec.build().unwrap();
        assert_eq!(call(&code, [0xDE, 0xAD, 0xBE, 0xEF]), Status::Success);
    }

    #[test]
    fn empty_calldata_hits_fallback() {
        let spec = spec_with(vec![Gadget::StoreArg { slot: 1 }], Terminator::Stop);
        let code = spec.build().unwrap();
        let mut interp = Interpreter::new();
        assert_eq!(interp.run_call(&code, &[]).status, Status::Success);
    }

    #[test]
    fn nonpayable_guard_rejects_value() {
        let spec = spec_with(vec![], Terminator::Stop);
        let code = spec.build().unwrap();
        let mut interp = Interpreter::new();
        interp.env.callvalue = phishinghook_evm::U256::from_u64(1);
        assert_eq!(interp.run_call(&code, &[]).status, Status::Revert);
    }

    #[test]
    fn multi_function_dispatch() {
        let spec = ContractSpec {
            payable_guard: false,
            functions: vec![
                FnSpec {
                    selector: selector("a()"),
                    gadgets: vec![],
                    terminator: Terminator::ReturnTrue,
                },
                FnSpec {
                    selector: selector("b()"),
                    gadgets: vec![],
                    terminator: Terminator::RevertMsg { code: 1 },
                },
            ],
            metadata_seed: None,
        };
        let code = spec.build().unwrap();
        assert_eq!(call(&code, selector("a()")), Status::Success);
        assert_eq!(call(&code, selector("b()")), Status::Revert);
    }

    #[test]
    fn metadata_trailer_after_invalid() {
        let spec = spec_with(vec![], Terminator::Stop);
        let code = spec.build().unwrap();
        let ins = disassemble(&code);
        // The trailer begins with 0xA2 after the 0xFE separator; both are
        // reported as INVALID-class instructions by the disassembler.
        assert!(ins.iter().any(|i| i.byte == 0xFE));
        let trailer = metadata_trailer(7);
        assert_eq!(trailer.len(), 53);
        assert!(code.ends_with(&[0x00, 0x33]));
    }

    #[test]
    fn minimal_proxy_is_exactly_45_bytes() {
        let proxy = minimal_proxy([0xAA; 20]);
        assert_eq!(proxy.len(), 45);
        // Canonical prefix/suffix of EIP-1167.
        assert_eq!(
            &proxy[..10],
            &[0x36, 0x3D, 0x3D, 0x37, 0x3D, 0x3D, 0x3D, 0x36, 0x3D, 0x73]
        );
        assert_eq!(proxy[proxy.len() - 1], 0xF3);
        // Same target → identical bytecode (the duplicate story).
        assert_eq!(minimal_proxy([0xAA; 20]), minimal_proxy([0xAA; 20]));
        assert_ne!(minimal_proxy([0xAA; 20]), minimal_proxy([0xAB; 20]));
    }

    #[test]
    fn specs_are_deterministic() {
        let spec = spec_with(
            vec![
                Gadget::JunkArith { ops: 3, seed: 42 },
                Gadget::MappingWrite { slot: 2 },
            ],
            Terminator::ReturnTrue,
        );
        assert_eq!(spec.build().unwrap(), spec.build().unwrap());
    }
}
