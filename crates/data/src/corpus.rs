//! Corpus generation: the synthetic stand-in for the paper's dataset.
//!
//! The paper collects ≈4M contracts from BigQuery, flags 17,455 phishing
//! bytecodes via Etherscan's "Phish/Hack" label, deduplicates them to 3,458
//! unique bytecodes (minimal-proxy clones), and balances with benign samples
//! into a 7,000-contract dataset spanning October 2023 – October 2024.
//!
//! This module reproduces that *distribution* synthetically:
//!
//! * seven benign families (ERC-20, ERC-721, vault, multisig, ownable
//!   utility, EIP-1167 proxies, DEX routers) and six phishing families
//!   (approval drainer, fake airdrop, sweeper, hidden-fee token, wallet
//!   "verifier", bare fake vault) built from the shared gadget vocabulary
//!   in [`crate::templates`]. Routers legitimately call `transferFrom`;
//!   fake vaults contain no drain gadget at all — together they produce
//!   the irreducible error that keeps classifiers in the paper's ≈90-94%
//!   band instead of saturating;
//! * duplicate structure: raw phishing records contain bit-identical clones
//!   (re-deployed drainers), with a deduplicated view for training;
//! * a monthly deployment profile shaped like the paper's Fig. 2;
//! * temporal drift: later months shift gadget mixtures and bait selectors,
//!   enabling the Fig. 8 time-resistance experiment.

use crate::contract::{derive_address, ContractRecord, Label, Month};
use crate::templates::{minimal_proxy, selectors, ContractSpec, FnSpec, Gadget, Terminator};
use phishinghook_ml::SplitMix;
use std::collections::HashSet;

/// Monthly *obtained* phishing-deployment weights (shape of the paper's
/// Fig. 2: slow start in late 2023, a spring-2024 surge, tapering by
/// October 2024). Scaled to the requested corpus size.
pub const OBTAINED_PROFILE: [f64; Month::COUNT] = [
    300.0, 350.0, 500.0, 800.0, 1200.0, 1500.0, 2200.0, 2500.0, 2300.0, 2000.0, 1700.0, 1300.0,
    800.0,
];

/// Which contract population [`Corpus::generate`] draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scenario {
    /// The paper's synthetic stand-in: seven benign and six phishing
    /// families sharing the gadget vocabulary.
    #[default]
    Mixed,
    /// The honeypot scenario: rigged/twin pairs from
    /// [`crate::honeypot`] whose opcode histograms are identical across
    /// classes — static detectors sit at chance, the dynamic channel does
    /// not.
    Honeypot,
}

impl Scenario {
    /// The CLI token for this scenario.
    pub fn token(self) -> &'static str {
        match self {
            Scenario::Mixed => "mixed",
            Scenario::Honeypot => "honeypot",
        }
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mixed" => Ok(Scenario::Mixed),
            "honeypot" => Ok(Scenario::Honeypot),
            other => Err(format!(
                "unknown scenario `{other}` (expected `mixed` or `honeypot`)"
            )),
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Configuration for [`Corpus::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Total deduplicated, balanced dataset size (paper: 7,000).
    pub n_contracts: usize,
    /// RNG seed; everything is deterministic given this.
    pub seed: u64,
    /// Mean number of raw (duplicate-inclusive) deployments per unique
    /// phishing bytecode (paper: 17,455 / 3,458 ≈ 5).
    pub duplicate_factor: f64,
    /// Fraction of samples drawn from cross-class "hard" constructions
    /// (benign-looking phishing and phishing-looking benign). This is the
    /// dataset's difficulty knob; the default is calibrated so the HSC
    /// family lands near the paper's ≈90-94% accuracy band.
    pub hard_example_rate: f64,
    /// When `true`, benign samples follow the phishing monthly profile
    /// (the paper's time-resistance dataset construction).
    pub benign_months_match_phishing: bool,
    /// Which contract population to generate.
    pub scenario: Scenario,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_contracts: 7000,
            seed: 0xC0FFEE,
            duplicate_factor: 5.0,
            hard_example_rate: 0.30,
            benign_months_match_phishing: false,
            scenario: Scenario::Mixed,
        }
    }
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Deduplicated, balanced dataset (the paper's 7,000-sample table).
    pub records: Vec<ContractRecord>,
    /// Raw phishing deployments including bit-identical duplicates
    /// (the paper's 17,455 "obtained" series in Fig. 2).
    pub raw_phishing: Vec<ContractRecord>,
    config: CorpusConfig,
}

impl Corpus {
    /// Generates a corpus deterministically from `config`.
    pub fn generate(config: &CorpusConfig) -> Self {
        let mut rng = SplitMix::new(config.seed);
        let n_phishing = config.n_contracts / 2;
        let n_benign = config.n_contracts - n_phishing;

        let phishing_months = sample_months(&mut rng, n_phishing, &OBTAINED_PROFILE);
        let benign_months = if config.benign_months_match_phishing {
            sample_months(&mut rng, n_benign, &OBTAINED_PROFILE)
        } else {
            // General corpus: benign deployments are roughly uniform.
            sample_months(&mut rng, n_benign, &[1.0; Month::COUNT])
        };

        let mut seen = HashSet::new();
        let mut records = Vec::with_capacity(config.n_contracts);
        let mut nonce = 0u64;

        for month in phishing_months {
            let record = unique_record(
                &mut rng,
                &mut seen,
                &mut nonce,
                month,
                Label::Phishing,
                config,
            );
            records.push(record);
        }
        for month in benign_months {
            let record = unique_record(
                &mut rng,
                &mut seen,
                &mut nonce,
                month,
                Label::Benign,
                config,
            );
            records.push(record);
        }
        rng.shuffle(&mut records);

        // Raw phishing view: re-deploy each unique bytecode k times
        // (bit-identical clones at other addresses, nearby months).
        let mut raw_phishing = Vec::new();
        for r in records.iter().filter(|r| r.label == Label::Phishing) {
            raw_phishing.push(r.clone());
            let copies = sample_duplicates(&mut rng, config.duplicate_factor);
            for _ in 0..copies {
                nonce += 1;
                let mut clone = r.clone();
                clone.address = derive_address(&clone.bytecode, nonce);
                let drift = rng.below(3) as i8 - 1;
                let m = (i16::from(r.month.0) + i16::from(drift)).clamp(0, Month::COUNT as i16 - 1)
                    as u8;
                clone.month = Month(m);
                raw_phishing.push(clone);
            }
        }

        Corpus {
            records,
            raw_phishing,
            config: config.clone(),
        }
    }

    /// The configuration used to generate this corpus.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Unique phishing records (deduplicated view).
    pub fn phishing(&self) -> impl Iterator<Item = &ContractRecord> {
        self.records.iter().filter(|r| r.label == Label::Phishing)
    }

    /// Benign records.
    pub fn benign(&self) -> impl Iterator<Item = &ContractRecord> {
        self.records.iter().filter(|r| r.label == Label::Benign)
    }

    /// `(obtained, unique)` phishing counts per month — the Fig. 2 series.
    pub fn monthly_phishing_counts(&self) -> Vec<(Month, usize, usize)> {
        let mut obtained = [0usize; Month::COUNT];
        let mut unique = [0usize; Month::COUNT];
        for r in &self.raw_phishing {
            obtained[r.month.0 as usize] += 1;
        }
        for r in self.phishing() {
            unique[r.month.0 as usize] += 1;
        }
        (0..Month::COUNT)
            .map(|m| (Month(m as u8), obtained[m], unique[m]))
            .collect()
    }

    /// Splits records into (bytecodes, labels) ready for model training.
    pub fn as_dataset(&self) -> (Vec<&[u8]>, Vec<usize>) {
        let codes = self.records.iter().map(|r| r.bytecode.as_slice()).collect();
        let labels = self.records.iter().map(|r| r.label.as_index()).collect();
        (codes, labels)
    }
}

fn sample_months(rng: &mut SplitMix, n: usize, profile: &[f64; Month::COUNT]) -> Vec<Month> {
    let total: f64 = profile.iter().sum();
    (0..n)
        .map(|_| {
            let mut u = rng.unit() * total;
            for (m, w) in profile.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    return Month(m as u8);
                }
            }
            Month(Month::COUNT as u8 - 1)
        })
        .collect()
}

fn sample_duplicates(rng: &mut SplitMix, mean: f64) -> usize {
    // Geometric-ish: heavy tail of clone counts, mean ≈ `mean` - 1 extras.
    let p = 1.0 / mean.max(1.0);
    let mut k = 0usize;
    while rng.unit() > p && k < 40 {
        k += 1;
    }
    k
}

fn unique_record(
    rng: &mut SplitMix,
    seen: &mut HashSet<[u8; 32]>,
    nonce: &mut u64,
    month: Month,
    label: Label,
    config: &CorpusConfig,
) -> ContractRecord {
    // Resample on hash collision so the deduplicated dataset really is
    // duplicate-free (proxy targets may collide otherwise).
    for _attempt in 0..64 {
        let (bytecode, family) = match (config.scenario, label) {
            (Scenario::Honeypot, _) => crate::honeypot::generate(rng, label),
            (Scenario::Mixed, Label::Benign) => generate_benign(rng, month, config),
            (Scenario::Mixed, Label::Phishing) => generate_phishing(rng, month, config),
        };
        let record = ContractRecord {
            address: derive_address(&bytecode, *nonce),
            bytecode,
            label,
            month,
            family,
        };
        *nonce += 1;
        if seen.insert(record.code_hash()) {
            return record;
        }
    }
    panic!("could not generate a unique bytecode after 64 attempts");
}

/// Weighted choice over gadget-pool entries.
fn pick<T>(rng: &mut SplitMix, pool: &[(f64, T)]) -> T
where
    T: Clone,
{
    let total: f64 = pool.iter().map(|(w, _)| w).sum();
    let mut u = rng.unit() * total;
    for (w, item) in pool {
        u -= w;
        if u <= 0.0 {
            return item.clone();
        }
    }
    pool.last().expect("non-empty pool").1.clone()
}

fn rand_attacker(rng: &mut SplitMix) -> [u8; 20] {
    let mut a = [0u8; 20];
    for b in &mut a {
        *b = (rng.next_u64() & 0xFF) as u8;
    }
    a
}

/// The gadget pool shared by *benign* constructions. Weights follow typical
/// compiled-Solidity shape: bookkeeping, events, checked math, gas checks.
fn benign_pool(rng: &mut SplitMix) -> Gadget {
    let slot = rng.below(8) as u64;
    let seed = rng.next_u64();
    let choice = pick(
        rng,
        &[
            (2.0, 0usize),
            (2.0, 1),
            (1.5, 2),
            (1.5, 3),
            (2.0, 4),
            (1.5, 5),
            (1.6, 6),
            (1.0, 7),
            (0.6, 8),
            (0.5, 9),
            (0.9, 10),
            (0.3, 11),
            (0.2, 12),
            (1.2, 13),
        ],
    );
    match choice {
        0 => Gadget::MappingRead { slot },
        1 => Gadget::MappingWrite { slot },
        2 => Gadget::StoreArg { slot },
        3 => Gadget::LoadStorage { slot },
        4 => Gadget::EmitEvent {
            topics: 1 + rng.below(3) as u8,
            seed,
        },
        5 => Gadget::CheckedAdd { slot },
        6 => Gadget::GasCheck {
            min_gas: 500 + rng.below(5000) as u16,
        },
        7 => Gadget::ExternalCall {
            slot,
            check_returndata: true,
            fixed_gas: rng.unit() < 0.5,
        },
        8 => Gadget::BalanceCheck,
        9 => Gadget::TimestampGate {
            deadline: 1_700_000_000 + rng.below(40_000_000) as u32,
            after: rng.unit() < 0.5,
        },
        10 => Gadget::RequireOwner { slot: 0 },
        11 => Gadget::DelegateForward { slot },
        12 => Gadget::ObfuscatedConst {
            a: rng.next_u64() >> 32,
            b: rng.next_u64() >> 32,
        },
        _ => Gadget::JunkArith {
            ops: 1 + rng.below(3) as u8,
            seed,
        },
    }
}

/// The gadget pool shared by *phishing* constructions. `drift ∈ [0, 1]`
/// moves mass toward obfuscation and `transferFrom` sweeps (the 2024 wave).
fn phishing_pool(rng: &mut SplitMix, drift: f64) -> Gadget {
    let slot = rng.below(8) as u64;
    let seed = rng.next_u64();
    let attacker = rand_attacker(rng);
    let choice = pick(
        rng,
        &[
            (2.5 - drift, 0usize),   // balance drain (early wave)
            (2.0 + 1.5 * drift, 1),  // transferFrom sweep (late wave)
            (1.5, 2),                // junk
            (1.0 + 1.6 * drift, 3),  // obfuscated constants
            (1.0, 4),                // fake bookkeeping
            (1.0, 5),                // fake events
            (0.8, 6),                // claim deadline
            (0.7 + 0.5 * drift, 7),  // masked address
            (0.6, 8),                // setter
            (0.5, 9),                // storage touch
            (0.5, 10),               // attacker-gated withdraw
            (0.4, 11),               // unchecked external call
            (0.3 + 0.4 * drift, 12), // delegatecall backdoor
            (0.25, 13),              // gas check (rare in scams)
            (0.3, 14),               // balance probe
            (0.2, 15),               // checked math (rare)
        ],
    );
    match choice {
        0 => Gadget::DrainBalance {
            to_caller: false,
            attacker,
        },
        1 => Gadget::TransferFromSweep {
            token_slot: slot,
            attacker,
        },
        2 => Gadget::JunkArith {
            ops: 2 + rng.below(5) as u8,
            seed,
        },
        3 => Gadget::ObfuscatedConst {
            a: rng.next_u64() >> 24,
            b: rng.next_u64() >> 24,
        },
        4 => Gadget::MappingWrite { slot },
        5 => Gadget::EmitEvent {
            topics: 1 + rng.below(3) as u8,
            seed,
        },
        6 => Gadget::TimestampGate {
            deadline: 1_700_000_000 + rng.below(40_000_000) as u32,
            after: rng.unit() < 0.7,
        },
        7 => Gadget::MaskedAddress { addr: attacker },
        8 => Gadget::StoreArg { slot },
        9 => Gadget::LoadStorage { slot },
        10 => Gadget::RequireOwner { slot: 0 },
        11 => Gadget::ExternalCall {
            slot,
            check_returndata: false,
            fixed_gas: rng.unit() < 0.7,
        },
        12 => Gadget::DelegateForward { slot },
        13 => Gadget::GasCheck {
            min_gas: 500 + rng.below(3000) as u16,
        },
        14 => Gadget::BalanceCheck,
        _ => Gadget::CheckedAdd { slot },
    }
}

fn benign_terminator(rng: &mut SplitMix) -> Terminator {
    let slot = rng.below(8) as u64;
    let code = rng.next_u64() >> 40;
    pick(
        rng,
        &[
            (2.0, Terminator::ReturnTrue),
            (1.8, Terminator::ReturnWord { slot }),
            (1.5, Terminator::Stop),
            (0.4, Terminator::RevertMsg { code }),
        ],
    )
}

fn phishing_terminator(rng: &mut SplitMix) -> Terminator {
    let slot = rng.below(8) as u64;
    let code = rng.next_u64() >> 40;
    pick(
        rng,
        &[
            (2.2, Terminator::Stop),
            (1.4, Terminator::ReturnTrue),
            (0.7, Terminator::ReturnWord { slot }),
            (0.3, Terminator::RevertMsg { code }),
        ],
    )
}

fn build_functions(
    rng: &mut SplitMix,
    selector_pool: &[[u8; 4]],
    n_functions: usize,
    mut gadget: impl FnMut(&mut SplitMix) -> Gadget,
    mut terminator: impl FnMut(&mut SplitMix) -> Terminator,
    body_len: (usize, usize),
) -> Vec<FnSpec> {
    let mut pool = selector_pool.to_vec();
    rng.shuffle(&mut pool);
    pool.truncate(n_functions.max(1));
    pool.iter()
        .map(|&sel| {
            let n = body_len.0 + rng.below(body_len.1 - body_len.0 + 1);
            FnSpec {
                selector: sel,
                gadgets: (0..n).map(|_| gadget(rng)).collect(),
                terminator: terminator(rng),
            }
        })
        .collect()
}

fn finish(spec: ContractSpec) -> Vec<u8> {
    spec.build().expect("corpus specs always assemble")
}

/// Generates one benign contract, returning `(bytecode, family)`.
fn generate_benign(
    rng: &mut SplitMix,
    _month: Month,
    config: &CorpusConfig,
) -> (Vec<u8>, &'static str) {
    let hard = rng.unit() < config.hard_example_rate;
    let family_choice = pick(
        rng,
        &[
            (2.2, 0usize),
            (1.3, 1),
            (1.3, 2),
            (1.0, 3),
            (1.3, 4),
            (1.3, 5),
            (1.1, 6),
        ],
    );
    match family_choice {
        // ERC-20 token.
        0 => {
            let n_fns = 4 + rng.below(3);
            let functions = build_functions(
                rng,
                &selectors::erc20(),
                n_fns,
                benign_pool,
                benign_terminator,
                (1, 4),
            );
            let spec = ContractSpec {
                payable_guard: rng.unit() < 0.85,
                functions,
                metadata_seed: (rng.unit() < 0.9).then(|| rng.next_u64()),
            };
            (finish(spec), "erc20")
        }
        // ERC-721 collection.
        1 => {
            let n_fns = 3 + rng.below(3);
            let functions = build_functions(
                rng,
                &selectors::erc721(),
                n_fns,
                benign_pool,
                benign_terminator,
                (1, 4),
            );
            let spec = ContractSpec {
                payable_guard: rng.unit() < 0.7,
                functions,
                metadata_seed: (rng.unit() < 0.9).then(|| rng.next_u64()),
            };
            (finish(spec), "erc721")
        }
        // Vault / staking. The hard variant's withdraw drains the full
        // balance to the caller — legitimate, but drain-shaped.
        2 => {
            let n_fns = 3 + rng.below(2);
            let mut functions = build_functions(
                rng,
                &selectors::vault(),
                n_fns,
                benign_pool,
                benign_terminator,
                (1, 4),
            );
            if hard {
                functions[0].gadgets.push(Gadget::DrainBalance {
                    to_caller: true,
                    attacker: rand_attacker(rng),
                });
                functions[0].gadgets.push(Gadget::JunkArith {
                    ops: 2 + rng.below(3) as u8,
                    seed: rng.next_u64(),
                });
            }
            let spec = ContractSpec {
                payable_guard: false, // vaults receive ETH
                functions,
                metadata_seed: (rng.unit() < 0.85).then(|| rng.next_u64()),
            };
            (finish(spec), "vault")
        }
        // Multisig wallet.
        3 => {
            let n_fns = 3 + rng.below(2);
            let functions = build_functions(
                rng,
                &selectors::multisig(),
                n_fns,
                benign_pool,
                benign_terminator,
                (2, 5),
            );
            let spec = ContractSpec {
                payable_guard: false,
                functions,
                metadata_seed: (rng.unit() < 0.9).then(|| rng.next_u64()),
            };
            (finish(spec), "multisig")
        }
        // Ownable utility; the hard variant carries a legitimate
        // SELFDESTRUCT kill switch and obfuscated constants.
        4 => {
            let n_fns = 3 + rng.below(3);
            let mut functions = build_functions(
                rng,
                &selectors::ownable(),
                n_fns,
                benign_pool,
                benign_terminator,
                (1, 3),
            );
            if hard {
                let last = functions.len() - 1;
                functions[last]
                    .gadgets
                    .insert(0, Gadget::RequireOwner { slot: 0 });
                functions[last].terminator = Terminator::SelfDestruct { slot: 0 };
                functions[last].gadgets.push(Gadget::ObfuscatedConst {
                    a: rng.next_u64() >> 24,
                    b: rng.next_u64() >> 24,
                });
            }
            let spec = ContractSpec {
                payable_guard: rng.unit() < 0.8,
                functions,
                metadata_seed: (rng.unit() < 0.9).then(|| rng.next_u64()),
            };
            (finish(spec), "ownable")
        }
        // EIP-1167 minimal proxy.
        5 => (minimal_proxy(rand_attacker(rng)), "minimal-proxy"),
        // DEX router / payment forwarder: a *legitimate* transferFrom user.
        // This family overlaps the approval-drainer's opcode profile and is
        // the benign side of the corpus' irreducible error.
        _ => {
            let n_fns = 3 + rng.below(2);
            let mut functions = build_functions(
                rng,
                &selectors::router(),
                n_fns,
                benign_pool,
                benign_terminator,
                (1, 4),
            );
            let pulls = 1 + rng.below(2);
            for k in 0..pulls {
                let f = k % functions.len();
                functions[f].gadgets.push(Gadget::TransferFromSweep {
                    token_slot: rng.below(8) as u64,
                    attacker: rand_attacker(rng), // recipient: the router's vault
                });
            }
            if rng.unit() < 0.5 {
                functions[0].gadgets.push(Gadget::DrainBalance {
                    to_caller: true,
                    attacker: rand_attacker(rng),
                });
            }
            let spec = ContractSpec {
                payable_guard: false, // routers receive ETH
                functions,
                metadata_seed: (rng.unit() < 0.9).then(|| rng.next_u64()),
            };
            (finish(spec), "router")
        }
    }
}

/// Generates one phishing contract, returning `(bytecode, family)`.
fn generate_phishing(
    rng: &mut SplitMix,
    month: Month,
    config: &CorpusConfig,
) -> (Vec<u8>, &'static str) {
    let drift = f64::from(month.0) / (Month::COUNT as f64 - 1.0);
    let hard = rng.unit() < config.hard_example_rate;
    let late = month.0 >= 6 && rng.unit() < 0.6;
    let bait: Vec<[u8; 4]> = if late {
        selectors::phishing_late()
    } else {
        selectors::phishing_early()
    };

    // Bare fake vault: a scam that only *collects* (deposits flow in; the
    // rug is off-chain or in a later upgrade). Built entirely from the
    // benign gadget pool — the phishing side of the irreducible error.
    if rng.unit() < 0.15 {
        let n_fns = 2 + rng.below(3);
        let mut sels = selectors::vault();
        sels.push(bait[0]);
        let functions = build_functions(rng, &sels, n_fns, benign_pool, benign_terminator, (1, 4));
        let spec = ContractSpec {
            payable_guard: false,
            functions,
            metadata_seed: (rng.unit() < 0.7).then(|| rng.next_u64()),
        };
        return (finish(spec), "fake-vault");
    }

    // Hidden-fee token: benign ERC-20 scaffolding with sweep gadgets hidden
    // inside — the hard phishing construction.
    if hard {
        let n_fns = 4 + rng.below(3);
        let mut functions = build_functions(
            rng,
            &selectors::erc20(),
            n_fns,
            benign_pool,
            benign_terminator,
            (1, 4),
        );
        let victim_fn = rng.below(functions.len());
        functions[victim_fn]
            .gadgets
            .push(Gadget::TransferFromSweep {
                token_slot: rng.below(8) as u64,
                attacker: rand_attacker(rng),
            });
        if rng.unit() < 0.5 {
            functions[victim_fn].gadgets.push(Gadget::DrainBalance {
                to_caller: false,
                attacker: rand_attacker(rng),
            });
        }
        let spec = ContractSpec {
            payable_guard: rng.unit() < 0.8,
            functions,
            metadata_seed: (rng.unit() < 0.8).then(|| rng.next_u64()),
        };
        return (finish(spec), "hidden-fee-token");
    }

    let family_choice = pick(
        rng,
        &[
            (3.0 - 1.2 * drift, 0usize), // approval drainer
            (2.5 - 0.8 * drift, 1),      // fake airdrop
            (1.8, 2),                    // sweeper
            (0.4 + 2.0 * drift, 3),      // wallet verifier (late wave)
        ],
    );
    let pool = |rng: &mut SplitMix| phishing_pool(rng, drift);
    match family_choice {
        0 => {
            let n_fns = 1 + rng.below(3);
            let mut functions =
                build_functions(rng, &bait, n_fns, pool, phishing_terminator, (2, 5));
            // The signature move: a sweep right in the claim path.
            functions[0].gadgets.push(Gadget::TransferFromSweep {
                token_slot: rng.below(8) as u64,
                attacker: rand_attacker(rng),
            });
            let spec = ContractSpec {
                payable_guard: rng.unit() < 0.5,
                functions,
                metadata_seed: (rng.unit() < 0.5).then(|| rng.next_u64()),
            };
            (finish(spec), "approval-drainer")
        }
        1 => {
            let n_fns = 1 + rng.below(2);
            let mut functions =
                build_functions(rng, &bait, n_fns, pool, phishing_terminator, (2, 4));
            functions[0].gadgets.insert(
                0,
                Gadget::TimestampGate {
                    deadline: 1_700_000_000 + rng.below(40_000_000) as u32,
                    after: false,
                },
            );
            functions[0].gadgets.push(Gadget::DrainBalance {
                to_caller: false,
                attacker: rand_attacker(rng),
            });
            let spec = ContractSpec {
                payable_guard: false, // airdrop scams accept value
                functions,
                metadata_seed: (rng.unit() < 0.55).then(|| rng.next_u64()),
            };
            (finish(spec), "fake-airdrop")
        }
        2 => {
            let n_fns = 1 + rng.below(2);
            let mut functions = build_functions(
                rng,
                &[selectors::vault()[1], bait[0], bait[1 % bait.len()]],
                n_fns,
                pool,
                phishing_terminator,
                (1, 4),
            );
            functions[0].gadgets.push(Gadget::DrainBalance {
                to_caller: false,
                attacker: rand_attacker(rng),
            });
            if rng.unit() < 0.4 {
                let last = functions.len() - 1;
                functions[last].terminator = Terminator::SelfDestruct {
                    slot: rng.below(4) as u64,
                };
            }
            let spec = ContractSpec {
                payable_guard: false,
                functions,
                metadata_seed: (rng.unit() < 0.4).then(|| rng.next_u64()),
            };
            (finish(spec), "sweeper")
        }
        _ => {
            // Wallet "verifier": delegatecall-backdoored late-wave scam.
            let n_fns = 1 + rng.below(3);
            let mut functions = build_functions(
                rng,
                &selectors::phishing_late(),
                n_fns,
                pool,
                phishing_terminator,
                (2, 5),
            );
            functions[0].gadgets.push(Gadget::DelegateForward {
                slot: rng.below(4) as u64,
            });
            functions[0].gadgets.push(Gadget::ObfuscatedConst {
                a: rng.next_u64() >> 24,
                b: rng.next_u64() >> 24,
            });
            let spec = ContractSpec {
                payable_guard: rng.unit() < 0.6,
                functions,
                metadata_seed: (rng.unit() < 0.5).then(|| rng.next_u64()),
            };
            (finish(spec), "wallet-verifier")
        }
    }
}

/// Convenience: default 7,000-sample corpus (slow-ish; prefer smaller sizes
/// in tests).
pub fn default_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig::default())
}

// Re-exported for the Fig. 2 experiment binary.
pub use crate::contract::Month as CorpusMonth;

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::interp::{Interpreter, Status};

    fn small(n: usize, seed: u64) -> Corpus {
        Corpus::generate(&CorpusConfig {
            n_contracts: n,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn corpus_is_balanced_and_sized() {
        let c = small(200, 1);
        assert_eq!(c.records.len(), 200);
        assert_eq!(c.phishing().count(), 100);
        assert_eq!(c.benign().count(), 100);
    }

    #[test]
    fn deduplicated_records_are_unique() {
        let c = small(300, 2);
        let hashes: HashSet<[u8; 32]> = c.records.iter().map(ContractRecord::code_hash).collect();
        assert_eq!(hashes.len(), c.records.len());
    }

    #[test]
    fn raw_phishing_contains_duplicates() {
        let c = small(200, 3);
        let unique: HashSet<[u8; 32]> = c
            .raw_phishing
            .iter()
            .map(ContractRecord::code_hash)
            .collect();
        assert!(
            c.raw_phishing.len() > unique.len() * 2,
            "duplicate factor too low"
        );
        // Clones keep the label but live at distinct addresses.
        let addrs: HashSet<[u8; 20]> = c.raw_phishing.iter().map(|r| r.address).collect();
        assert_eq!(addrs.len(), c.raw_phishing.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(100, 7);
        let b = small(100, 7);
        assert_eq!(a.records, b.records);
        assert_eq!(a.raw_phishing, b.raw_phishing);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small(100, 7);
        let b = small(100, 8);
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn monthly_counts_cover_window_and_sum() {
        let c = small(400, 4);
        let counts = c.monthly_phishing_counts();
        assert_eq!(counts.len(), 13);
        let unique_total: usize = counts.iter().map(|(_, _, u)| u).sum();
        let obtained_total: usize = counts.iter().map(|(_, o, _)| o).sum();
        assert_eq!(unique_total, 200);
        assert_eq!(obtained_total, c.raw_phishing.len());
        assert!(obtained_total > unique_total);
    }

    #[test]
    fn every_contract_executes_cleanly() {
        // The interpreter must accept every generated contract: fallback
        // path (empty calldata) and the first dispatched selector.
        let c = small(120, 5);
        for r in &c.records {
            let mut interp = Interpreter::new();
            for slot in 0..8u64 {
                interp.storage.insert(
                    phishinghook_evm::U256::from_u64(slot),
                    phishinghook_evm::U256::from_u64(0xBEEF),
                );
            }
            let status = interp.run_call(&r.bytecode, &[]).status;
            assert!(
                matches!(status, Status::Success | Status::Revert),
                "{} fallback: {status:?}",
                r.family
            );
            // Dispatch into the first selector if the contract has one.
            if r.family != "minimal-proxy" && r.bytecode.len() > 60 {
                let mut calldata = vec![0u8; 0x84];
                // Recover a selector from the dispatcher's first PUSH4.
                if let Some(sel) = first_push4(&r.bytecode) {
                    calldata[..4].copy_from_slice(&sel);
                    let status = interp.run_call(&r.bytecode, &calldata).status;
                    assert!(
                        !matches!(status, Status::Halted(_)),
                        "{} dispatch halted: {status:?}",
                        r.family
                    );
                }
            }
        }
    }

    fn first_push4(code: &[u8]) -> Option<[u8; 4]> {
        phishinghook_evm::disasm::disassemble(code)
            .into_iter()
            .find(|i| i.mnemonic() == "PUSH4")
            .map(|i| i.operand.as_slice().try_into().expect("PUSH4 has 4 bytes"))
    }

    #[test]
    fn phishing_and_benign_share_opcode_vocabulary() {
        // Fig. 3's point: the classes use the same opcodes. Check the
        // top-10 opcodes of each class overlap substantially.
        let c = small(200, 6);
        let top = |label: Label| -> Vec<&'static str> {
            let mut counts: std::collections::HashMap<&'static str, usize> = Default::default();
            for r in c.records.iter().filter(|r| r.label == label) {
                for i in phishinghook_evm::disasm::disassemble(&r.bytecode) {
                    *counts.entry(i.mnemonic()).or_default() += 1;
                }
            }
            let mut v: Vec<_> = counts.into_iter().collect();
            v.sort_by_key(|e| std::cmp::Reverse(e.1));
            v.into_iter().take(10).map(|(m, _)| m).collect()
        };
        let bt = top(Label::Benign);
        let pt = top(Label::Phishing);
        let overlap = bt.iter().filter(|m| pt.contains(m)).count();
        assert!(overlap >= 6, "top-10 opcode overlap only {overlap}");
    }

    #[test]
    fn families_are_diverse() {
        let c = small(400, 9);
        let families: HashSet<&'static str> = c.records.iter().map(|r| r.family).collect();
        assert!(families.len() >= 8, "only {families:?}");
    }

    #[test]
    fn honeypot_scenario_generates_paired_families() {
        let c = Corpus::generate(&CorpusConfig {
            n_contracts: 80,
            seed: 21,
            scenario: Scenario::Honeypot,
            ..Default::default()
        });
        assert_eq!(c.records.len(), 80);
        assert_eq!(c.phishing().count(), 40);
        for r in &c.records {
            match r.label {
                Label::Phishing => assert!(r.family.starts_with("hp-"), "{}", r.family),
                Label::Benign => assert!(r.family.starts_with("tw-"), "{}", r.family),
            }
        }
        // Determinism holds for the scenario too.
        let again = Corpus::generate(&CorpusConfig {
            n_contracts: 80,
            seed: 21,
            scenario: Scenario::Honeypot,
            ..Default::default()
        });
        assert_eq!(c.records, again.records);
    }

    #[test]
    fn scenario_tokens_round_trip() {
        for s in [Scenario::Mixed, Scenario::Honeypot] {
            assert_eq!(s.token().parse::<Scenario>(), Ok(s));
        }
        assert!("bogus".parse::<Scenario>().is_err());
    }

    #[test]
    fn time_matched_benign_profile() {
        let c = Corpus::generate(&CorpusConfig {
            n_contracts: 600,
            seed: 11,
            benign_months_match_phishing: true,
            ..Default::default()
        });
        // Benign months should now be non-uniform, concentrated mid-window.
        let mut per_month = [0usize; Month::COUNT];
        for r in c.benign() {
            per_month[r.month.0 as usize] += 1;
        }
        let early: usize = per_month[..3].iter().sum();
        let mid: usize = per_month[5..9].iter().sum();
        assert!(mid > early * 2, "mid={mid} early={early}");
    }
}
