//! CSV import/export of contract datasets.
//!
//! The paper releases its dataset as hex bytecodes with labels; this module
//! reads and writes that interchange format (`address,month,label,family,
//! bytecode` with `0x…` hex payloads).

use crate::contract::{ContractRecord, Label, Month};
use phishinghook_evm::keccak::from_hex;
use std::fmt;

/// Errors produced when parsing a dataset CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A row had the wrong number of columns.
    BadColumnCount {
        /// 1-based row number.
        row: usize,
        /// Number of columns found.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based row number.
        row: usize,
        /// Column name.
        column: &'static str,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadColumnCount { row, found } => {
                write!(f, "row {row}: expected 5 columns, found {found}")
            }
            CsvError::BadField { row, column } => write!(f, "row {row}: bad {column}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Serializes records to the interchange CSV (with header).
pub fn to_csv(records: &[ContractRecord]) -> String {
    let mut out = String::from("address,month,label,family,bytecode\n");
    for r in records {
        use fmt::Write;
        writeln!(
            out,
            "{},{},{},{},{}",
            r.address_hex(),
            r.month,
            r.label,
            r.family,
            r.bytecode_hex()
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Parses the interchange CSV produced by [`to_csv`].
///
/// Family strings are interned into a small static set (unknown families
/// parse as `"imported"` — the field is informational only).
///
/// # Errors
/// Returns a [`CsvError`] describing the first malformed row.
pub fn from_csv(text: &str) -> Result<Vec<ContractRecord>, CsvError> {
    const FAMILIES: &[&str] = &[
        "erc20",
        "erc721",
        "vault",
        "multisig",
        "ownable",
        "minimal-proxy",
        "approval-drainer",
        "fake-airdrop",
        "sweeper",
        "hidden-fee-token",
        "wallet-verifier",
        "test",
    ];
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if idx == 0 || line.is_empty() {
            continue; // header / trailing newline
        }
        let row = idx + 1;
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 5 {
            return Err(CsvError::BadColumnCount {
                row,
                found: cols.len(),
            });
        }
        let address_bytes = from_hex(cols[0]).ok_or(CsvError::BadField {
            row,
            column: "address",
        })?;
        let address: [u8; 20] = address_bytes.try_into().map_err(|_| CsvError::BadField {
            row,
            column: "address",
        })?;
        let month = parse_month(cols[1]).ok_or(CsvError::BadField {
            row,
            column: "month",
        })?;
        let label = match cols[2] {
            "benign" => Label::Benign,
            "phishing" => Label::Phishing,
            _ => {
                return Err(CsvError::BadField {
                    row,
                    column: "label",
                })
            }
        };
        let family = FAMILIES
            .iter()
            .find(|f| **f == cols[3])
            .copied()
            .unwrap_or("imported");
        let bytecode = from_hex(cols[4]).ok_or(CsvError::BadField {
            row,
            column: "bytecode",
        })?;
        records.push(ContractRecord {
            address,
            bytecode,
            label,
            month,
            family,
        });
    }
    Ok(records)
}

fn parse_month(s: &str) -> Option<Month> {
    let (year, month) = s.split_once('-')?;
    let year: i32 = year.parse().ok()?;
    let month: i32 = month.parse().ok()?;
    let index = (year - 2023) * 12 + (month - 10);
    if (0..Month::COUNT as i32).contains(&index) {
        Some(Month(index as u8))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ContractRecord> {
        vec![
            ContractRecord {
                address: [0x11; 20],
                bytecode: vec![0x60, 0x80, 0x60, 0x40, 0x52],
                label: Label::Benign,
                month: Month(0),
                family: "erc20",
            },
            ContractRecord {
                address: [0x22; 20],
                bytecode: vec![0x33, 0xFF],
                label: Label::Phishing,
                month: Month(12),
                family: "sweeper",
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let text = to_csv(&records);
        let parsed = from_csv(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn header_present() {
        let text = to_csv(&sample());
        assert!(text.starts_with("address,month,label,family,bytecode\n"));
    }

    #[test]
    fn rejects_bad_label() {
        let text = "address,month,label,family,bytecode\n0x1111111111111111111111111111111111111111,2023-10,dubious,erc20,0x6080\n";
        assert_eq!(
            from_csv(text),
            Err(CsvError::BadField {
                row: 2,
                column: "label"
            })
        );
    }

    #[test]
    fn rejects_bad_month() {
        let text = "address,month,label,family,bytecode\n0x1111111111111111111111111111111111111111,2025-01,benign,erc20,0x6080\n";
        assert_eq!(
            from_csv(text),
            Err(CsvError::BadField {
                row: 2,
                column: "month"
            })
        );
    }

    #[test]
    fn rejects_short_address() {
        let text = "address,month,label,family,bytecode\n0x11,2023-10,benign,erc20,0x6080\n";
        assert_eq!(
            from_csv(text),
            Err(CsvError::BadField {
                row: 2,
                column: "address"
            })
        );
    }

    #[test]
    fn rejects_wrong_column_count() {
        let text = "address,month,label,family,bytecode\na,b,c\n";
        assert_eq!(
            from_csv(text),
            Err(CsvError::BadColumnCount { row: 2, found: 3 })
        );
    }

    #[test]
    fn unknown_family_is_interned_as_imported() {
        let text = "address,month,label,family,bytecode\n0x1111111111111111111111111111111111111111,2023-10,benign,mystery,0x6080\n";
        let parsed = from_csv(text).unwrap();
        assert_eq!(parsed[0].family, "imported");
    }
}
