//! Simulated chain services: the BEM's `eth_getCode` endpoint and the
//! Etherscan-style labeling oracle.
//!
//! The paper's data-gathering phase queries BigQuery for contract hashes,
//! scrapes etherscan.io for "Phish/Hack" flags, and extracts bytecode via a
//! JSON-RPC `eth_getCode` endpoint. This module provides the same three
//! interfaces over the synthetic corpus so the framework's pipeline code is
//! shaped exactly like the real one.

use crate::contract::{ContractRecord, Label};
use phishinghook_evm::{CallOutcome, CallParams, Host, Interpreter, U256};
use phishinghook_ml::SplitMix;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A 20-byte Ethereum account address, as used by `eth_getCode`.
pub type Address = [u8; 20];

/// Why one chain lookup failed. Transient failures (an RPC timeout, a
/// rate-limited endpoint, a brief network partition) are worth retrying;
/// fatal ones (a revoked API key, a malformed endpoint) are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The lookup may succeed if retried (timeout, transient RPC fault).
    Transient(String),
    /// Retrying cannot help; fail the request now.
    Fatal(String),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Transient(detail) => write!(f, "transient chain fault: {detail}"),
            ChainError::Fatal(detail) => write!(f, "chain fault: {detail}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Anything that can resolve an [`Address`] into deployed runtime bytecode.
///
/// This is the one seam between the serving surface and a chain: the
/// simulated chain implements it directly, and a real deployment would put
/// a JSON-RPC client behind the same trait. `None` means the address holds
/// no code (an externally-owned account, or an unknown address) — the
/// JSON-RPC `eth_getCode` "0x" answer.
pub trait CodeSource: Send + Sync {
    /// The runtime bytecode deployed at `address`, or `None` for EOAs.
    fn code_at(&self, address: Address) -> Option<Vec<u8>>;

    /// The fallible lookup: like [`CodeSource::code_at`], but a source
    /// backed by a real network (or a fault-injecting test wrapper) can
    /// surface a [`ChainError`] instead of silently mapping every failure
    /// to "no code here". In-memory sources never fail, hence the default.
    ///
    /// # Errors
    /// [`ChainError::Transient`] for retryable faults, [`ChainError::Fatal`]
    /// otherwise.
    fn try_code_at(&self, address: Address) -> Result<Option<Vec<u8>>, ChainError> {
        Ok(self.code_at(address))
    }
}

/// A bounded retry/backoff policy for chain lookups: decorrelated-jitter
/// backoff, deterministic from `seed` — the same policy (same seed) always
/// produces the same backoff sequence, so fault-injection tests replay
/// exactly.
///
/// Decorrelated jitter (the AWS Architecture Blog variant): each delay is
/// drawn uniformly from `[base, prev * 3]`, clamped to `cap` — spreading
/// synchronized retry storms without ever collapsing back to lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Base (and first) backoff delay, in microseconds.
    pub base_micros: u64,
    /// Upper clamp on any single backoff delay, in microseconds.
    pub cap_micros: u64,
    /// Jitter seed; the backoff sequence is a pure function of it.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 3 attempts, 1 ms base, 50 ms cap: transparent to healthy chains,
    /// enough to ride out a one-tick fault without stalling a worker.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_micros: 1_000,
            cap_micros: 50_000,
            seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff delays this policy sleeps between
    /// attempts (`max_attempts - 1` entries).
    pub fn backoffs(&self) -> Vec<Duration> {
        let mut rng = SplitMix::new(self.seed);
        let base = self.base_micros.max(1);
        let cap = self.cap_micros.max(base);
        let mut prev = base;
        (1..self.max_attempts.max(1))
            .map(|_| {
                let hi = prev.saturating_mul(3).clamp(base, cap);
                let span = hi - base + 1;
                prev = base + (rng.next_u64() % span);
                Duration::from_micros(prev)
            })
            .collect()
    }

    /// Runs `op` under this policy: transient errors are retried (with
    /// `on_retry(attempt, error, backoff)` observed before each sleep)
    /// until the attempt budget is spent; fatal errors and successes
    /// return immediately.
    ///
    /// # Errors
    /// The last [`ChainError`] once attempts are exhausted, or the first
    /// fatal one.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, ChainError>,
        mut on_retry: impl FnMut(u32, &ChainError, Duration),
    ) -> Result<T, ChainError> {
        let mut backoffs = self.backoffs().into_iter();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op() {
                Ok(value) => return Ok(value),
                Err(err @ ChainError::Fatal(_)) => return Err(err),
                Err(err) => match backoffs.next() {
                    None => return Err(err),
                    Some(backoff) => {
                        on_retry(attempt, &err, backoff);
                        std::thread::sleep(backoff);
                    }
                },
            }
        }
    }
}

/// An in-memory contract store with an `eth_getCode`-shaped API.
#[derive(Debug, Clone, Default)]
pub struct SimulatedChain {
    code: HashMap<[u8; 20], Vec<u8>>,
}

impl SimulatedChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        SimulatedChain::default()
    }

    /// Builds a chain hosting every record of a corpus (raw view included).
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a ContractRecord>) -> Self {
        let mut chain = SimulatedChain::new();
        for r in records {
            chain.deploy(r.address, r.bytecode.clone());
        }
        chain
    }

    /// Deploys code at an address (overwrites silently, like a re-org test
    /// fixture would).
    pub fn deploy(&mut self, address: [u8; 20], code: Vec<u8>) {
        self.code.insert(address, code);
    }

    /// `eth_getCode`: the runtime bytecode at `address`, or the empty slice
    /// for externally-owned accounts — exactly the JSON-RPC semantics.
    pub fn eth_get_code(&self, address: [u8; 20]) -> &[u8] {
        self.code.get(&address).map_or(&[], Vec::as_slice)
    }

    /// Number of deployed contracts.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no contracts are deployed.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// All deployed addresses (unordered).
    pub fn addresses(&self) -> impl Iterator<Item = &[u8; 20]> {
        self.code.keys()
    }
}

impl CodeSource for SimulatedChain {
    fn code_at(&self, address: Address) -> Option<Vec<u8>> {
        let code = self.eth_get_code(address);
        if code.is_empty() {
            None
        } else {
            Some(code.to_vec())
        }
    }
}

/// A cloneable, thread-safe handle onto a [`SimulatedChain`].
///
/// The serving gateway resolves address-form requests concurrently from
/// worker threads while a watcher keeps deploying new contracts, so the
/// chain needs shared ownership with interior locking. Reads (the hot
/// `eth_getCode` path) take the read lock; deployments take the write lock.
#[derive(Debug, Clone, Default)]
pub struct SharedChain {
    inner: Arc<RwLock<SimulatedChain>>,
}

impl SharedChain {
    /// An empty shared chain.
    pub fn new() -> Self {
        SharedChain::default()
    }

    /// Wraps an already-populated chain.
    pub fn from_chain(chain: SimulatedChain) -> Self {
        SharedChain {
            inner: Arc::new(RwLock::new(chain)),
        }
    }

    /// Builds a shared chain hosting every record of a corpus.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a ContractRecord>) -> Self {
        SharedChain::from_chain(SimulatedChain::from_records(records))
    }

    /// Deploys code at an address (write lock; overwrites silently).
    pub fn deploy(&self, address: Address, code: Vec<u8>) {
        self.inner
            .write()
            .expect("chain lock poisoned")
            .deploy(address, code);
    }

    /// `eth_getCode` with owned-result semantics: the runtime bytecode at
    /// `address`, or the empty vec for EOAs.
    pub fn eth_get_code(&self, address: Address) -> Vec<u8> {
        self.inner
            .read()
            .expect("chain lock poisoned")
            .eth_get_code(address)
            .to_vec()
    }

    /// Number of deployed contracts.
    pub fn len(&self) -> usize {
        self.inner.read().expect("chain lock poisoned").len()
    }

    /// Whether no contracts are deployed.
    pub fn is_empty(&self) -> bool {
        self.inner.read().expect("chain lock poisoned").is_empty()
    }
}

impl CodeSource for SharedChain {
    fn code_at(&self, address: Address) -> Option<Vec<u8>> {
        self.inner
            .read()
            .expect("chain lock poisoned")
            .code_at(address)
    }
}

/// Truncates an EVM word to a 20-byte account address (the low 20 bytes,
/// big-endian) — how `CALL`/`BALANCE`/`EXTCODE*` operands map onto the
/// chain's address space.
pub fn word_to_address(word: &U256) -> Address {
    let bytes = word.to_be_bytes();
    bytes[12..].try_into().expect("20 bytes")
}

/// An EVM [`Host`] backed by a [`SimulatedChain`]: the dynamic-analysis
/// channel's view of the world.
///
/// With this host plugged into the interpreter (or the dispatcher
/// explorer), `BALANCE`/`EXTCODESIZE`/`EXTCODECOPY`/`EXTCODEHASH` observe
/// the chain's real deployed code, and `CALL`-family opcodes *execute* the
/// callee one bounded frame deep instead of returning the historical
/// simulated success. Every deployed contract is served with a uniform
/// nonzero balance (`contract_balance`) so honeypot bait like
/// `require(balance(target) > 0)` behaves as it would on mainnet.
#[derive(Debug, Clone)]
pub struct ChainHost<'a> {
    chain: &'a SimulatedChain,
    /// Balance reported for every deployed contract.
    pub contract_balance: U256,
    /// Gas budget for each nested callee frame.
    pub callee_gas: u64,
    /// Step budget for each nested callee frame.
    pub callee_steps: u64,
    depth: u32,
}

/// Deepest nested call frame [`ChainHost`] executes before reporting
/// failure (mirrors `phishinghook_evm::host::MAX_CALL_DEPTH`).
const CHAIN_HOST_MAX_DEPTH: u32 = 3;

impl<'a> ChainHost<'a> {
    /// A host over `chain` with default callee budgets.
    pub fn new(chain: &'a SimulatedChain) -> Self {
        ChainHost {
            chain,
            contract_balance: U256::from_u64(1_000_000_000),
            callee_gas: 100_000,
            callee_steps: 20_000,
            depth: 0,
        }
    }
}

impl Host for ChainHost<'_> {
    fn balance(&self, addr: &U256) -> Option<U256> {
        let code = self.chain.eth_get_code(word_to_address(addr));
        (!code.is_empty()).then_some(self.contract_balance)
    }

    fn code(&self, addr: &U256) -> Option<Vec<u8>> {
        self.chain.code_at(word_to_address(addr))
    }

    fn call(&mut self, params: &CallParams) -> CallOutcome {
        let Some(code) = self.code(&params.target) else {
            // Value transfer into an EOA: succeeds, returns nothing.
            return CallOutcome::simulated_success();
        };
        if self.depth >= CHAIN_HOST_MAX_DEPTH {
            return CallOutcome::failure();
        }
        self.depth += 1;
        let mut interp = Interpreter::new();
        interp.gas_limit = self.callee_gas.min(params.gas.max(1));
        interp.step_limit = self.callee_steps;
        interp.env.address = params.target;
        interp.env.callvalue = params.value;
        interp.env.calldata = params.input.clone();
        let result = interp.run_with_host(&code, self);
        self.depth -= 1;
        CallOutcome {
            success: result.status.is_ok(),
            returndata: result.output,
            gas_used: result.gas_used,
        }
    }
}

/// An etherscan.io-style labeling oracle with configurable flag noise.
///
/// `miss_rate` is the probability that a phishing contract is *not* flagged
/// (community labeling lag); `false_flag_rate` the probability a benign
/// contract is wrongly flagged. Both default to zero (the paper treats
/// Etherscan labels as ground truth).
#[derive(Debug, Clone)]
pub struct LabelOracle {
    labels: HashMap<[u8; 20], Label>,
    /// Probability a phishing contract goes unflagged.
    pub miss_rate: f64,
    /// Probability a benign contract is wrongly flagged.
    pub false_flag_rate: f64,
    seed: u64,
}

impl LabelOracle {
    /// Builds an oracle over the given records with exact labels.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a ContractRecord>) -> Self {
        let labels = records.into_iter().map(|r| (r.address, r.label)).collect();
        LabelOracle {
            labels,
            miss_rate: 0.0,
            false_flag_rate: 0.0,
            seed: 0x5EED,
        }
    }

    /// Sets label-noise rates (returns `self` for chaining).
    pub fn with_noise(mut self, miss_rate: f64, false_flag_rate: f64, seed: u64) -> Self {
        self.miss_rate = miss_rate;
        self.false_flag_rate = false_flag_rate;
        self.seed = seed;
        self
    }

    /// The oracle's (possibly noisy) verdict: is `address` flagged
    /// "Phish/Hack"? Unknown addresses are never flagged.
    pub fn is_flagged(&self, address: [u8; 20]) -> bool {
        let Some(&label) = self.labels.get(&address) else {
            return false;
        };
        // Deterministic per-address noise so repeated queries agree.
        let mut rng = SplitMix::new(
            self.seed ^ u64::from_le_bytes(address[..8].try_into().expect("8 bytes")),
        );
        match label {
            Label::Phishing => rng.unit() >= self.miss_rate,
            Label::Benign => rng.unit() < self.false_flag_rate,
        }
    }

    /// Number of known addresses.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the oracle knows no addresses.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// The bytecode extraction module (BEM): resolves flagged/unflagged
/// addresses into a labeled bytecode dataset, mirroring Fig. 1 steps ➋–➍.
pub fn extract_labeled_bytecodes(
    chain: &SimulatedChain,
    oracle: &LabelOracle,
    addresses: &[[u8; 20]],
) -> Vec<(Vec<u8>, Label)> {
    addresses
        .iter()
        .filter_map(|&addr| {
            let code = chain.eth_get_code(addr);
            if code.is_empty() {
                return None; // EOA or undeployed — skipped, as in the paper
            }
            let label = if oracle.is_flagged(addr) {
                Label::Phishing
            } else {
                Label::Benign
            };
            Some((code.to_vec(), label))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Month;

    fn record(addr: u8, label: Label) -> ContractRecord {
        ContractRecord {
            address: [addr; 20],
            bytecode: vec![0x60, 0x80, addr],
            label,
            month: Month(0),
            family: "test",
        }
    }

    #[test]
    fn eth_get_code_roundtrip() {
        let records = [record(1, Label::Benign), record(2, Label::Phishing)];
        let chain = SimulatedChain::from_records(&records);
        assert_eq!(chain.eth_get_code([1; 20]), &[0x60, 0x80, 1]);
        assert_eq!(chain.eth_get_code([9; 20]), &[] as &[u8]);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn code_source_distinguishes_contracts_from_eoas() {
        let records = [record(1, Label::Benign)];
        let chain = SimulatedChain::from_records(&records);
        assert_eq!(chain.code_at([1; 20]), Some(vec![0x60, 0x80, 1]));
        assert_eq!(chain.code_at([9; 20]), None, "EOA resolves to no code");
    }

    #[test]
    fn shared_chain_is_concurrently_usable() {
        let shared = SharedChain::from_records(&[record(1, Label::Benign)]);
        let reader = shared.clone();
        let writer = shared.clone();
        let t = std::thread::spawn(move || {
            for i in 2u8..50 {
                writer.deploy([i; 20], vec![0x60, i]);
            }
        });
        // Reads proceed while the writer deploys; the seeded contract is
        // always visible.
        for _ in 0..100 {
            assert_eq!(reader.eth_get_code([1; 20]), vec![0x60, 0x80, 1]);
        }
        t.join().expect("writer thread");
        assert_eq!(shared.len(), 49);
        assert!(!shared.is_empty());
        assert_eq!(shared.code_at([3; 20]), Some(vec![0x60, 3]));
        assert_eq!(shared.code_at([99; 20]), None);
    }

    #[test]
    fn exact_oracle_matches_ground_truth() {
        let records = [record(1, Label::Benign), record(2, Label::Phishing)];
        let oracle = LabelOracle::from_records(&records);
        assert!(!oracle.is_flagged([1; 20]));
        assert!(oracle.is_flagged([2; 20]));
        assert!(!oracle.is_flagged([99; 20]));
    }

    #[test]
    fn noisy_oracle_is_deterministic_per_address() {
        let records: Vec<ContractRecord> = (0..100).map(|i| record(i, Label::Phishing)).collect();
        let oracle = LabelOracle::from_records(&records).with_noise(0.3, 0.0, 42);
        let first: Vec<bool> = (0..100).map(|i| oracle.is_flagged([i; 20])).collect();
        let second: Vec<bool> = (0..100).map(|i| oracle.is_flagged([i; 20])).collect();
        assert_eq!(first, second);
        let missed = first.iter().filter(|&&f| !f).count();
        assert!((10..=50).contains(&missed), "missed {missed}/100");
    }

    #[test]
    fn try_code_at_defaults_to_the_infallible_lookup() {
        let chain = SimulatedChain::from_records(&[record(1, Label::Benign)]);
        assert_eq!(chain.try_code_at([1; 20]), Ok(Some(vec![0x60, 0x80, 1])));
        assert_eq!(chain.try_code_at([9; 20]), Ok(None));
    }

    #[test]
    fn retry_backoffs_are_deterministic_jittered_and_clamped() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_micros: 100,
            cap_micros: 900,
            seed: 7,
        };
        let first = policy.backoffs();
        assert_eq!(first.len(), 5, "attempts - 1 backoffs");
        assert_eq!(first, policy.backoffs(), "same seed, same sequence");
        for d in &first {
            let micros = d.as_micros() as u64;
            assert!((100..=900).contains(&micros), "{micros} out of range");
        }
        assert_ne!(
            first,
            RetryPolicy { seed: 8, ..policy }.backoffs(),
            "different seeds decorrelate"
        );
        assert!(
            RetryPolicy {
                max_attempts: 1,
                ..policy
            }
            .backoffs()
            .is_empty(),
            "one attempt means no retries"
        );
    }

    #[test]
    fn retry_run_retries_transient_and_stops_on_fatal() {
        let fast = RetryPolicy {
            max_attempts: 4,
            base_micros: 1,
            cap_micros: 2,
            seed: 3,
        };
        // Succeeds on the third attempt; two retries observed.
        let mut calls = 0u32;
        let mut retries = Vec::new();
        let out = fast.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err(ChainError::Transient("rpc timeout".into()))
                } else {
                    Ok(calls)
                }
            },
            |attempt, err, backoff| {
                assert!(matches!(err, ChainError::Transient(_)));
                assert!(backoff >= Duration::from_micros(1));
                retries.push(attempt);
            },
        );
        assert_eq!(out, Ok(3));
        assert_eq!(retries, vec![1, 2]);

        // A fatal error short-circuits without burning the budget.
        let mut calls = 0u32;
        let out: Result<(), _> = fast.run(
            || {
                calls += 1;
                Err(ChainError::Fatal("bad endpoint".into()))
            },
            |_, _, _| panic!("fatal errors must not retry"),
        );
        assert_eq!(out, Err(ChainError::Fatal("bad endpoint".into())));
        assert_eq!(calls, 1);

        // Exhausting the budget returns the last transient error.
        let mut calls = 0u32;
        let out: Result<(), _> = fast.run(
            || {
                calls += 1;
                Err(ChainError::Transient(format!("fault {calls}")))
            },
            |_, _, _| {},
        );
        assert_eq!(out, Err(ChainError::Transient("fault 4".into())));
        assert_eq!(calls, 4, "max_attempts bounds the calls");
    }

    #[test]
    fn chain_host_serves_code_and_balances() {
        let records = [record(1, Label::Benign)];
        let chain = SimulatedChain::from_records(&records);
        let host = ChainHost::new(&chain);
        let deployed = {
            let mut w = [0u8; 32];
            w[12..].copy_from_slice(&[1; 20]);
            U256::from_be_bytes(&w)
        };
        assert_eq!(host.code(&deployed), Some(vec![0x60, 0x80, 1]));
        assert_eq!(host.balance(&deployed), Some(host.contract_balance));
        assert_eq!(host.code(&U256::from_u64(0x99)), None, "EOA has no code");
        assert_eq!(host.balance(&U256::from_u64(0x99)), None);
    }

    #[test]
    fn chain_host_executes_deployed_callees() {
        use phishinghook_evm::Asm;
        // Deploy a callee at address 0x...07 that returns the word 99.
        let mut callee = Asm::new();
        callee.push_u64(99).push_u64(0).op("MSTORE");
        callee.push_u64(32).push_u64(0).op("RETURN");
        let mut chain = SimulatedChain::new();
        let mut addr = [0u8; 20];
        addr[19] = 0x07;
        chain.deploy(addr, callee.assemble().unwrap());

        // Caller: CALL 0x07, copy the 32-byte result out, return it.
        let mut caller = Asm::new();
        caller.push_u64(32).push_u64(0); // retLen retOff
        caller.push_u64(0).push_u64(0).push_u64(0); // argsLen argsOff value
        caller.push_u64(0x07).push_u64(50_000).op("CALL").op("POP");
        caller.push_u64(32).push_u64(0).op("RETURN");

        let mut host = ChainHost::new(&chain);
        let mut interp = Interpreter::new();
        let r = interp.run_with_host(&caller.assemble().unwrap(), &mut host);
        assert!(r.status.is_ok(), "{:?}", r.status);
        assert_eq!(U256::from_be_bytes(&r.output), U256::from_u64(99));
    }

    #[test]
    fn word_to_address_truncates_high_bytes() {
        let mut w = [0xFFu8; 32];
        w[12..].copy_from_slice(&[0xAB; 20]);
        assert_eq!(word_to_address(&U256::from_be_bytes(&w)), [0xAB; 20]);
        assert_eq!(word_to_address(&U256::ZERO), [0; 20]);
    }

    #[test]
    fn bem_extracts_labeled_dataset() {
        let records = [record(1, Label::Benign), record(2, Label::Phishing)];
        let chain = SimulatedChain::from_records(&records);
        let oracle = LabelOracle::from_records(&records);
        let addrs = [[1u8; 20], [2; 20], [50; 20]];
        let out = extract_labeled_bytecodes(&chain, &oracle, &addrs);
        assert_eq!(out.len(), 2); // EOA dropped
        assert_eq!(out[0].1, Label::Benign);
        assert_eq!(out[1].1, Label::Phishing);
    }
}
