//! Honeypot scenario generation: contracts that static histograms cannot
//! separate but execution traces can.
//!
//! "The Art of The Scam" (PAPERS.md) documents honeypot contracts engineered
//! to *look* like they pay out while the payout path is unreachable: a
//! storage gate that is never satisfied, an owner check against an
//! uninitialised struct field, an escape hatch only the deployer can reach.
//! These scams are invisible to opcode-occurrence features by construction —
//! the trap lives in *operands and reachability*, not opcode mix.
//!
//! This module makes that failure mode measurable. Every honeypot family is
//! generated as a **pair**: the rigged contract and a benign twin whose
//! opcode sequence is *identical instruction for instruction* — only the
//! `PUSH` immediates differ (a gate constant that can never match storage
//! versus one that always does; an address mask that redirects the payout
//! versus one that passes the caller through). An opcode histogram of a
//! rigged contract and its twin are therefore equal, pinning any static
//! detector at chance on this scenario, while the dispatcher explorer sees
//! the difference immediately: the twin's payout `CALL`/`SELFDESTRUCT`
//! executes and targets the caller, the honeypot's reverts or pays a
//! stranger.
//!
//! Four families, following the paper's taxonomy:
//!
//! | family | trap |
//! |--------|------|
//! | `hidden-state`  | withdraw gated on a storage word no deposit ever writes |
//! | `uninit-struct` | claim checks an uninitialised struct field against a nonzero constant |
//! | `owner-skim`    | exit's `SELFDESTRUCT` sits behind an unsatisfiable owner gate |
//! | `redirect`      | payout executes, but an `AND`/`OR` mask swaps the recipient |

use crate::contract::Label;
use crate::templates::{metadata_trailer, selectors};
use phishinghook_evm::asm::Asm;
use phishinghook_ml::SplitMix;

/// The four honeypot families of the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoneypotFamily {
    /// Withdraw gated on a storage slot no entry point ever satisfies.
    HiddenState,
    /// Claim compares an uninitialised struct field to a nonzero constant.
    UninitStruct,
    /// `SELFDESTRUCT` escape hatch behind an unsatisfiable owner gate.
    OwnerSkim,
    /// Reachable payout whose recipient is mask-redirected away from the
    /// caller.
    Redirect,
}

impl HoneypotFamily {
    /// All families, in a fixed order.
    pub const ALL: [HoneypotFamily; 4] = [
        HoneypotFamily::HiddenState,
        HoneypotFamily::UninitStruct,
        HoneypotFamily::OwnerSkim,
        HoneypotFamily::Redirect,
    ];

    /// Corpus family tag: `hp-*` for the rigged contract, `tw-*` for its
    /// benign twin.
    pub fn tag(self, rigged: bool) -> &'static str {
        match (self, rigged) {
            (HoneypotFamily::HiddenState, true) => "hp-hidden-state",
            (HoneypotFamily::HiddenState, false) => "tw-hidden-state",
            (HoneypotFamily::UninitStruct, true) => "hp-uninit-struct",
            (HoneypotFamily::UninitStruct, false) => "tw-uninit-struct",
            (HoneypotFamily::OwnerSkim, true) => "hp-owner-skim",
            (HoneypotFamily::OwnerSkim, false) => "tw-owner-skim",
            (HoneypotFamily::Redirect, true) => "hp-redirect",
            (HoneypotFamily::Redirect, false) => "tw-redirect",
        }
    }
}

/// Generates one honeypot-scenario contract: rigged when `label` is
/// phishing, the benign twin otherwise. Returns `(bytecode, family_tag)`.
pub fn generate(rng: &mut SplitMix, label: Label) -> (Vec<u8>, &'static str) {
    let family = HoneypotFamily::ALL[rng.below(HoneypotFamily::ALL.len())];
    let rigged = label == Label::Phishing;
    (build(rng, family, rigged), family.tag(rigged))
}

/// Builds one contract of `family`. The emitted *opcode sequence* is a pure
/// function of the rng draws — `rigged` only changes `PUSH` immediates, so
/// a rigged contract and a twin built from the same draws disassemble to
/// the same mnemonic stream.
pub fn build(rng: &mut SplitMix, family: HoneypotFamily, rigged: bool) -> Vec<u8> {
    let mut asm = Asm::new();

    // Solidity free-memory-pointer preamble.
    asm.push(&[0x80]).push(&[0x40]).op("MSTORE");

    // Selectors: a deposit-shaped bait, the family's payout, a view-shaped
    // noise function. Drawn from the same benign pools for both classes.
    let mut pool = selectors::vault();
    pool.extend(selectors::erc20());
    pool.sort_unstable();
    pool.dedup();
    rng.shuffle(&mut pool);
    let (bait_sel, payout_sel, view_sel) = (pool[0], pool[1], pool[2]);

    // Dispatcher (same shape as `ContractSpec::build`).
    asm.push(&[0x04]).op("CALLDATASIZE").op("LT");
    asm.jumpi("fallback");
    asm.op("PUSH0").op("CALLDATALOAD").push(&[0xE0]).op("SHR");
    for (sel, lbl) in [
        (bait_sel, "fn_bait"),
        (payout_sel, "fn_payout"),
        (view_sel, "fn_view"),
    ] {
        asm.op("DUP1").push_selector(sel).op("EQ");
        asm.jumpi(lbl);
    }
    asm.op("POP");
    asm.jump("fallback");

    // Bait: store the deposited amount, log it, return true. Writes slot
    // `bait_slot` — never the gate slot the payout checks.
    let bait_slot = 1 + (rng.below(4) as u8);
    asm.label("fn_bait");
    asm.op("POP");
    junk(&mut asm, rng);
    asm.push(&[0x04]).op("CALLDATALOAD");
    asm.push(&[bait_slot]).op("SSTORE");
    asm.push(&[0x2A]).op("PUSH0").op("MSTORE");
    let mut topic = [0u8; 32];
    topic[24..].copy_from_slice(&rng.next_u64().to_be_bytes());
    asm.push(&topic).push(&[0x20]).op("PUSH0").op("LOG1");
    asm.push(&[0x01]).op("PUSH0").op("MSTORE");
    asm.push(&[0x20]).op("PUSH0").op("RETURN");

    // Payout: the family-specific (possibly trapped) path.
    asm.label("fn_payout");
    asm.op("POP");
    junk(&mut asm, rng);
    emit_payout(&mut asm, rng, family, rigged);

    // View: return a storage word.
    asm.label("fn_view");
    asm.op("POP");
    junk(&mut asm, rng);
    asm.push(&[rng.below(8) as u8]).op("SLOAD");
    asm.op("PUSH0").op("MSTORE");
    asm.push(&[0x20]).op("PUSH0").op("RETURN");

    asm.label("fallback");
    asm.op("STOP");

    if rng.unit() < 0.8 {
        asm.raw(&[0xFE]);
        asm.raw(&metadata_trailer(rng.next_u64()));
    }
    asm.assemble().expect("honeypot templates always assemble")
}

/// 0–3 rounds of push-push-op-pop arithmetic noise, identical in shape for
/// both classes (per-sample variety without class signal).
fn junk(asm: &mut Asm, rng: &mut SplitMix) {
    for _ in 0..rng.below(4) {
        let a = 1 + (rng.below(255) as u8);
        let b = 1 + (rng.below(255) as u8);
        asm.push(&[a]).push(&[b]);
        asm.op(match rng.below(4) {
            0 => "ADD",
            1 => "XOR",
            2 => "AND",
            _ => "OR",
        });
        asm.op("POP");
    }
}

/// The full-balance `CALL` payout to whatever target word is on the stack
/// top when invoked... — here, always `CALLER`-derived; callers of this
/// helper push nothing, it emits the canonical withdraw-all sequence with
/// the recipient produced by `recipient`.
fn emit_call_payout(asm: &mut Asm, recipient: impl FnOnce(&mut Asm)) {
    asm.op("PUSH0").op("PUSH0").op("PUSH0").op("PUSH0");
    asm.op("SELFBALANCE");
    recipient(asm);
    asm.op("GAS").op("CALL").op("POP").op("STOP");
}

fn emit_payout(asm: &mut Asm, rng: &mut SplitMix, family: HoneypotFamily, rigged: bool) {
    match family {
        // withdraw(): `if (SLOAD(gate) == K) pay caller; else revert`.
        // Twin: K = 0 matches fresh storage. Rigged: K is a magic word no
        // entry point ever stores.
        HoneypotFamily::HiddenState => {
            let gate_slot = 5 + (rng.below(3) as u8); // disjoint from bait's 1..=4
                                                      // Draw unconditionally so rigged/twin consume the same rng
                                                      // stream (all later draws stay aligned across the pair).
            let magic = 1 + (rng.below(255) as u8);
            let k = if rigged { magic } else { 0 };
            asm.push(&[gate_slot]).op("SLOAD");
            asm.push(&[k]).op("EQ");
            asm.jumpi("pay");
            asm.op("PUSH0").op("PUSH0").op("REVERT");
            asm.label("pay");
            emit_call_payout(asm, |a| {
                a.op("CALLER");
            });
        }
        // claim(): `if (owner_field - V != 0) fail; pay caller`. The struct
        // field (slot 0) is uninitialised, so SLOAD gives 0: the twin's
        // V = 0 falls through to the payout, the rigged V never does.
        HoneypotFamily::UninitStruct => {
            let magic = 1 + (rng.below(255) as u8);
            let v = if rigged { magic } else { 0 };
            asm.push(&[0x00]).op("SLOAD");
            asm.push(&[v]).op("SUB");
            asm.jumpi("fail");
            emit_call_payout(asm, |a| {
                a.op("CALLER");
            });
            asm.label("fail");
            asm.op("PUSH0").op("PUSH0").op("REVERT");
        }
        // exit(): `if (SLOAD(owner_slot) == W) selfdestruct(caller)`. The
        // twin's W = 0 makes the hatch public; the rigged W means only a
        // deployer who pre-seeded storage (nobody, here) can leave.
        HoneypotFamily::OwnerSkim => {
            let owner_slot = rng.below(2) as u8;
            let magic = 1 + (rng.below(255) as u8);
            let w = if rigged { magic } else { 0 };
            asm.push(&[owner_slot]).op("SLOAD");
            asm.push(&[w]).op("EQ");
            asm.jumpi("skim");
            asm.op("PUSH0").op("PUSH0").op("REVERT");
            asm.label("skim");
            asm.op("CALLER").op("SELFDESTRUCT");
        }
        // payout(): always executes, but the recipient is
        // `(CALLER & m1) | m2`. Twin: m1 = all-ones, m2 = 0 — identity.
        // Rigged: m1 = 0, m2 = the operator's address — the caller funds a
        // stranger while the bytecode shape screams "withdraw to sender".
        HoneypotFamily::Redirect => {
            let mut m1 = [0u8; 32];
            let mut m2 = [0u8; 32];
            // Operator address drawn unconditionally (rng stream alignment).
            let mut operator = [0u8; 20];
            for byte in &mut operator {
                *byte = (rng.next_u64() & 0xFF) as u8;
            }
            if rigged {
                m2[12..].copy_from_slice(&operator);
                m2[31] |= 1; // never the zero address
            } else {
                for byte in &mut m1[12..] {
                    *byte = 0xFF;
                }
            }
            emit_call_payout(asm, |a| {
                a.op("CALLER");
                a.push(&m1);
                a.op("AND");
                a.push(&m2);
                a.op("OR");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::disasm::disassemble;
    use phishinghook_evm::{Explorer, Status};

    fn mnemonics(code: &[u8]) -> Vec<&'static str> {
        disassemble(code).iter().map(|i| i.mnemonic()).collect()
    }

    #[test]
    fn rigged_and_twin_share_an_opcode_sequence() {
        // The core property: same rng draws, same mnemonic stream — static
        // histograms are blind to the difference.
        for family in HoneypotFamily::ALL {
            let a = build(&mut SplitMix::new(42), family, true);
            let b = build(&mut SplitMix::new(42), family, false);
            assert_eq!(
                mnemonics(&a),
                mnemonics(&b),
                "{family:?} pair diverges statically"
            );
            assert_ne!(a, b, "{family:?} pair must differ in immediates");
        }
    }

    #[test]
    fn traces_separate_every_pair() {
        // The twin reaches a value transfer (or selfdestruct) to the
        // caller; the honeypot never does.
        let explorer = Explorer::default();
        for family in HoneypotFamily::ALL {
            for seed in 0..5u64 {
                let rigged = build(&mut SplitMix::new(seed), family, true);
                let twin = build(&mut SplitMix::new(seed), family, false);
                let pays = |code: &[u8]| {
                    let t = explorer.explore(code);
                    t.calls().any(|c| c.transfers_value && c.to_caller)
                        || t.selfdestructs().any(|s| s.to_caller)
                };
                assert!(pays(&twin), "{family:?}/{seed}: twin must pay the caller");
                assert!(!pays(&rigged), "{family:?}/{seed}: honeypot must not");
            }
        }
    }

    #[test]
    fn every_honeypot_executes_cleanly() {
        // All entry points terminate in Success/Revert/SelfDestructed —
        // never a structural halt — under the explorer's budgets.
        let explorer = Explorer::default();
        for family in HoneypotFamily::ALL {
            for rigged in [true, false] {
                for seed in 100..110u64 {
                    let code = build(&mut SplitMix::new(seed), family, rigged);
                    let trace = explorer.explore(&code);
                    assert_eq!(trace.selectors_total, 3, "{family:?}");
                    for run in &trace.runs {
                        assert!(
                            matches!(
                                run.status,
                                Status::Success | Status::Revert | Status::SelfDestructed
                            ),
                            "{family:?} rigged={rigged} seed={seed}: {:?}",
                            run.status
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn generate_tags_follow_the_label() {
        let (_, tag) = generate(&mut SplitMix::new(1), Label::Phishing);
        assert!(tag.starts_with("hp-"), "{tag}");
        let (_, tag) = generate(&mut SplitMix::new(1), Label::Benign);
        assert!(tag.starts_with("tw-"), "{tag}");
    }
}
