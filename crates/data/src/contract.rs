//! Contract records and dataset labels.

use phishinghook_evm::keccak::{keccak256, to_hex};
use std::fmt;

/// Ground-truth class of a contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Not flagged on the (simulated) explorer.
    Benign,
    /// Flagged "Phish/Hack".
    Phishing,
}

impl Label {
    /// `1` for phishing, `0` for benign — the classifier convention.
    pub fn as_index(self) -> usize {
        match self {
            Label::Benign => 0,
            Label::Phishing => 1,
        }
    }

    /// Inverse of [`Label::as_index`].
    pub fn from_index(i: usize) -> Self {
        if i == 1 {
            Label::Phishing
        } else {
            Label::Benign
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Benign => write!(f, "benign"),
            Label::Phishing => write!(f, "phishing"),
        }
    }
}

/// Deployment month, indexed from October 2023 (`0`) to October 2024 (`12`)
/// — the paper's collection window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Month(pub u8);

impl Month {
    /// Number of months in the collection window.
    pub const COUNT: usize = 13;

    /// Human-readable form, e.g. `"2023-10"`.
    pub fn as_str(self) -> String {
        let (year, month) = self.year_month();
        format!("{year}-{month:02}")
    }

    /// `(year, month)` pair.
    pub fn year_month(self) -> (u32, u32) {
        let idx = u32::from(self.0);
        let absolute = 9 + idx; // 0 = October 2023 (month index 9 zero-based)
        (2023 + absolute / 12, absolute % 12 + 1)
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One deployed contract in the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractRecord {
    /// 20-byte account address (derived from the bytecode + a nonce).
    pub address: [u8; 20],
    /// Deployed (runtime) bytecode.
    pub bytecode: Vec<u8>,
    /// Ground-truth label.
    pub label: Label,
    /// Deployment month.
    pub month: Month,
    /// Generator family name (e.g. `"erc20"`, `"approval-drainer"`).
    pub family: &'static str,
}

impl ContractRecord {
    /// Keccak-256 of the bytecode — the deduplication key (the paper dedups
    /// 17,455 phishing bytecodes to 3,458 bit-identical uniques).
    pub fn code_hash(&self) -> [u8; 32] {
        keccak256(&self.bytecode)
    }

    /// `0x…` hex form of the address.
    pub fn address_hex(&self) -> String {
        format!("0x{}", to_hex(&self.address))
    }

    /// `0x…` hex form of the bytecode.
    pub fn bytecode_hex(&self) -> String {
        format!("0x{}", to_hex(&self.bytecode))
    }
}

/// Derives a synthetic deterministic address from bytecode and nonce
/// (CREATE-like: hash of payload, truncated to 20 bytes).
pub fn derive_address(bytecode: &[u8], nonce: u64) -> [u8; 20] {
    let mut payload = bytecode.to_vec();
    payload.extend_from_slice(&nonce.to_be_bytes());
    let digest = keccak256(&payload);
    digest[12..].try_into().expect("20 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_index_roundtrip() {
        assert_eq!(
            Label::from_index(Label::Phishing.as_index()),
            Label::Phishing
        );
        assert_eq!(Label::from_index(Label::Benign.as_index()), Label::Benign);
    }

    #[test]
    fn month_names_span_window() {
        assert_eq!(Month(0).as_str(), "2023-10");
        assert_eq!(Month(2).as_str(), "2023-12");
        assert_eq!(Month(3).as_str(), "2024-01");
        assert_eq!(Month(12).as_str(), "2024-10");
    }

    #[test]
    fn addresses_differ_by_nonce() {
        let a = derive_address(&[0x60, 0x80], 0);
        let b = derive_address(&[0x60, 0x80], 1);
        assert_ne!(a, b);
    }

    #[test]
    fn code_hash_detects_duplicates() {
        let r1 = ContractRecord {
            address: [1; 20],
            bytecode: vec![0x60, 0x80, 0x60, 0x40, 0x52],
            label: Label::Phishing,
            month: Month(0),
            family: "test",
        };
        let mut r2 = r1.clone();
        r2.address = [2; 20];
        assert_eq!(r1.code_hash(), r2.code_hash());
        r2.bytecode.push(0x00);
        assert_ne!(r1.code_hash(), r2.code_hash());
    }

    #[test]
    fn hex_forms_are_prefixed() {
        let r = ContractRecord {
            address: [0xAB; 20],
            bytecode: vec![0x60, 0x80],
            label: Label::Benign,
            month: Month(1),
            family: "test",
        };
        assert!(r.address_hex().starts_with("0x"));
        assert_eq!(r.bytecode_hex(), "0x6080");
    }
}
