//! The deployment firehose: a "watch the chain" workload generator.
//!
//! The paper's deployment story is a daemon watching every contract
//! deployment on Ethereum and scoring it as it lands. Two properties of
//! that stream matter for serving-system design and are reproduced here:
//!
//! * **Template-skewed redeployment** — the same phishing template is
//!   redeployed thousands of times at fresh addresses (the paper dedups
//!   17,455 flagged bytecodes to 3,458 uniques; Torres et al.'s honeypot
//!   study observes the same template reuse). A verdict cache keyed on the
//!   code hash turns those redeploys into lookups, and this stream is
//!   deliberately skewed (Zipf-like over a fixed template pool) so the
//!   cache has something realistic to chew on.
//! * **Block bursts** — deployments arrive in per-block groups, the unit a
//!   chain-watching client would submit together.
//!
//! [`ChainFirehose`] is an infinite, deterministic iterator of
//! [`DeployEvent`]s. Each event carries a fresh CREATE-style address and a
//! bytecode drawn from the template pool; feed it into a
//! [`SimulatedChain`] (see
//! [`DeployEvent::deploy_onto`]) and read it back through `eth_getCode` to
//! exercise the paper's Fig. 1 extraction path end to end.
//!
//! ```
//! use phishinghook_data::firehose::{ChainFirehose, FirehoseConfig};
//!
//! let firehose = ChainFirehose::generate(&FirehoseConfig {
//!     templates: 8,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let events: Vec<_> = firehose.take(64).collect();
//! assert_eq!(events.len(), 64);
//! // Redeployment: far fewer distinct bytecodes than events …
//! let unique: std::collections::HashSet<_> =
//!     events.iter().map(|e| e.code_hash()).collect();
//! assert!(unique.len() <= 8);
//! // … but every deployment lands at a fresh address.
//! let addrs: std::collections::HashSet<_> =
//!     events.iter().map(|e| e.address).collect();
//! assert_eq!(addrs.len(), 64);
//! ```

use crate::chain::SimulatedChain;
use crate::contract::{derive_address, Label};
use crate::corpus::{Corpus, CorpusConfig};
use phishinghook_evm::keccak::Digest;
use phishinghook_ml::SplitMix;

/// One contract deployment observed on the (simulated) chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployEvent {
    /// Block the deployment landed in (monotonically non-decreasing).
    pub block: u64,
    /// Fresh CREATE-style address of the deployed contract.
    pub address: [u8; 20],
    /// Deployed runtime bytecode (shared with other events of the same
    /// template, bit-identically).
    pub bytecode: Vec<u8>,
    /// Ground-truth label of the template (for offline evaluation; a real
    /// watcher would not have this).
    pub label: Label,
    /// Index of the template in the firehose's pool.
    pub template: usize,
}

impl DeployEvent {
    /// Keccak-256 of the bytecode — the dedup / verdict-cache key.
    pub fn code_hash(&self) -> Digest {
        Digest::of(&self.bytecode)
    }

    /// Deploys the event's code onto a simulated chain at its address.
    pub fn deploy_onto(&self, chain: &mut SimulatedChain) {
        chain.deploy(self.address, self.bytecode.clone());
    }
}

/// Configuration for [`ChainFirehose`].
#[derive(Debug, Clone, PartialEq)]
pub struct FirehoseConfig {
    /// Distinct bytecode templates in the pool (the stream's dedup
    /// ceiling).
    pub templates: usize,
    /// RNG seed; the whole stream is deterministic given this.
    pub seed: u64,
    /// Zipf-like skew exponent over template ranks: weight of rank `i` is
    /// `1 / (i + 1)^skew`. `0.0` is uniform; the default `1.1` makes the
    /// head templates dominate, like real phishing-kit redeploys.
    pub skew: f64,
    /// Deployments per block (events are grouped `deploys_per_block` to a
    /// block number).
    pub deploys_per_block: usize,
}

impl Default for FirehoseConfig {
    fn default() -> Self {
        FirehoseConfig {
            templates: 64,
            seed: 0xF12E,
            skew: 1.1,
            deploys_per_block: 5,
        }
    }
}

/// An infinite, deterministic stream of [`DeployEvent`]s with
/// template-skewed redeployment.
#[derive(Debug, Clone)]
pub struct ChainFirehose {
    /// `(bytecode, label)` template pool, rank order = popularity order.
    pool: Vec<(Vec<u8>, Label)>,
    /// Cumulative rank weights for O(log n) skewed sampling.
    cumulative: Vec<f64>,
    rng: SplitMix,
    emitted: u64,
    deploys_per_block: usize,
}

impl ChainFirehose {
    /// Builds a firehose over its own template pool: a small synthetic
    /// corpus generated from `config.seed` supplies `config.templates`
    /// distinct bytecodes (phishing and benign mixed, as on a real chain).
    pub fn generate(config: &FirehoseConfig) -> Self {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: config.templates.max(2),
            seed: config.seed,
            ..Default::default()
        });
        Self::from_corpus(&corpus, config)
    }

    /// Builds a firehose whose template pool is the first
    /// `config.templates` records of an existing corpus.
    pub fn from_corpus(corpus: &Corpus, config: &FirehoseConfig) -> Self {
        let pool: Vec<(Vec<u8>, Label)> = corpus
            .records
            .iter()
            .take(config.templates.max(1))
            .map(|r| (r.bytecode.clone(), r.label))
            .collect();
        assert!(!pool.is_empty(), "firehose needs at least one template");
        let skew = config.skew.max(0.0);
        let mut total = 0.0;
        let cumulative = (0..pool.len())
            .map(|i| {
                total += 1.0 / ((i + 1) as f64).powf(skew);
                total
            })
            .collect();
        ChainFirehose {
            pool,
            cumulative,
            rng: SplitMix::new(config.seed ^ 0xF12E_F12E),
            emitted: 0,
            deploys_per_block: config.deploys_per_block.max(1),
        }
    }

    /// Number of distinct templates the stream draws from.
    pub fn template_pool(&self) -> usize {
        self.pool.len()
    }

    /// Draws a template index under the configured skew.
    fn pick_template(&mut self) -> usize {
        let total = *self.cumulative.last().expect("non-empty pool");
        let u = self.rng.unit() * total;
        // First rank whose cumulative weight covers `u`.
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.pool.len() - 1)
    }
}

impl Iterator for ChainFirehose {
    type Item = DeployEvent;

    fn next(&mut self) -> Option<DeployEvent> {
        let template = self.pick_template();
        let (bytecode, label) = self.pool[template].clone();
        // CREATE-style fresh address: hash(code ‖ global nonce).
        let address = derive_address(&bytecode, self.emitted ^ 0x5EED_F12E);
        let event = DeployEvent {
            block: self.emitted / self.deploys_per_block as u64,
            address,
            bytecode,
            label,
            template,
        };
        self.emitted += 1;
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn take(config: &FirehoseConfig, n: usize) -> Vec<DeployEvent> {
        ChainFirehose::generate(config).take(n).collect()
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let config = FirehoseConfig::default();
        assert_eq!(take(&config, 100), take(&config, 100));
        let other = FirehoseConfig {
            seed: 1,
            ..config.clone()
        };
        assert_ne!(take(&config, 100), take(&other, 100));
    }

    #[test]
    fn redeployment_is_template_skewed() {
        let config = FirehoseConfig {
            templates: 32,
            skew: 1.2,
            ..Default::default()
        };
        let events = take(&config, 1000);
        let mut per_template: HashMap<usize, usize> = HashMap::new();
        for e in &events {
            *per_template.entry(e.template).or_default() += 1;
        }
        // Skew: the most popular template dominates a uniform share …
        let max = per_template.values().max().copied().unwrap_or(0);
        assert!(max > 3 * events.len() / 32, "max share {max}/1000");
        // … and identical templates really are bit-identical bytecodes.
        let mut hash_of: HashMap<usize, Digest> = HashMap::new();
        for e in &events {
            let h = e.code_hash();
            assert_eq!(*hash_of.entry(e.template).or_insert(h), h);
        }
    }

    #[test]
    fn addresses_are_fresh_and_blocks_advance() {
        let config = FirehoseConfig {
            deploys_per_block: 4,
            ..Default::default()
        };
        let events = take(&config, 40);
        let addrs: HashSet<[u8; 20]> = events.iter().map(|e| e.address).collect();
        assert_eq!(addrs.len(), events.len(), "addresses must never repeat");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.block, i as u64 / 4);
        }
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let config = FirehoseConfig {
            templates: 8,
            skew: 0.0,
            ..Default::default()
        };
        let events = take(&config, 800);
        let mut per_template = [0usize; 8];
        for e in &events {
            per_template[e.template] += 1;
        }
        for (i, &n) in per_template.iter().enumerate() {
            assert!((40..=220).contains(&n), "template {i} drawn {n}/800");
        }
    }

    #[test]
    fn deploys_land_on_the_simulated_chain() {
        let mut chain = SimulatedChain::new();
        let events = take(&FirehoseConfig::default(), 25);
        for e in &events {
            e.deploy_onto(&mut chain);
        }
        for e in &events {
            assert_eq!(chain.eth_get_code(e.address), e.bytecode.as_slice());
        }
    }
}
