//! `phishinghook` — the command-line front end of the reproduction.
//!
//! ```text
//! phishinghook disasm  <hex-bytecode | ->        # BDM: opcode listing
//! phishinghook generate <n> <out.csv> [seed]     # synthetic labeled dataset
//! phishinghook eval    <dataset.csv> [folds]     # HSC cross-validation
//! phishinghook train   <ds.csv> --save <snap>    # fit once, snapshot the model
//! phishinghook scan    --model <snap> <hex…>     # classify with a saved model
//! phishinghook scan    <dataset.csv> <hex…>      # train RF, classify bytecodes
//! phishinghook serve   --model <snap> [--tcp a]  # batched scoring daemon
//! phishinghook watch   --model <snap> [--quick]  # chain-deployment firehose
//! ```
//!
//! See `docs/CLI.md` for the full man-style reference.
//!
//! The CSV format is the crate's interchange format
//! (`address,month,label,family,bytecode`), produced by `generate` or by the
//! `dataset_builder` example.

use phishinghook_cli::{run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
