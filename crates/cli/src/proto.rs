//! The serve daemon's wire protocols.
//!
//! # Protocol v2 (default): versioned JSONL
//!
//! One JSON object per line in each direction, hand-rolled (this workspace
//! is dependency-free by policy — see the README's dependency section).
//!
//! **Requests** are either a JSON object or, for convenience, a bare hex
//! line (the id then defaults to the 0-based request sequence number):
//!
//! ```text
//! {"id":"tx-9","bytecode":"0x6080604052"}
//! 6080604052
//! ```
//!
//! **Responses** echo the id and carry the combined verdict plus one
//! `per_model` entry per underlying model — the field that makes ensembles
//! observable over the wire:
//!
//! ```text
//! {"proto":2,"id":"tx-9","verdict":"phishing","proba":0.934211,"model_version":"hsc-ensemble/v1","per_model":[{"name":"Random Forest","proba":0.941023},{"name":"LightGBM","proba":0.927399}]}
//! {"proto":2,"id":"4","error":"not valid hex bytecode"}
//! ```
//!
//! `proto` is always the first field, so clients can dispatch on the
//! protocol version before touching anything else. Probabilities are
//! printed with six decimal places (same precision as protocol v1).
//!
//! # Protocol v1 (`--proto v1`): bare lines
//!
//! The original ad-hoc framing, kept verbatim for old clients: hex in,
//! `verdict\tproba` out, `error\t…` for malformed lines. No ids, no
//! per-model visibility.

use phishinghook_models::ScanReport;
use std::fmt::Write as _;

/// Which framing a serving loop speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Bare `verdict\tproba` lines (legacy).
    V1,
    /// Versioned JSONL with ids and per-model probabilities.
    #[default]
    V2,
}

impl Protocol {
    /// Parses a `--proto` flag value (`"v1"` / `"1"` / `"v2"` / `"2"`).
    pub fn parse(s: &str) -> Option<Protocol> {
        match s.trim().to_ascii_lowercase().as_str() {
            "v1" | "1" => Some(Protocol::V1),
            "v2" | "2" => Some(Protocol::V2),
            _ => None,
        }
    }
}

/// One decoded request line: the caller-visible id plus the raw hex payload
/// still to be validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Echoed in the response (v2); v1 responses are purely positional.
    pub id: String,
    /// Hex bytecode text (possibly `0x`-prefixed), not yet decoded.
    pub hex: String,
}

/// Decodes one v2 request line: a JSON object with `bytecode` (required)
/// and `id` (optional, defaulting to `fallback_id`), or a bare hex line.
///
/// # Errors
/// A human-readable message describing the malformed line (sent back to the
/// client as an error object; the daemon never disconnects on bad input).
pub fn parse_request_v2(line: &str, fallback_id: &str) -> Result<WireRequest, String> {
    let trimmed = line.trim();
    if !trimmed.starts_with('{') {
        // Bare hex convenience form.
        return Ok(WireRequest {
            id: fallback_id.to_owned(),
            hex: trimmed.to_owned(),
        });
    }
    let fields = parse_flat_object(trimmed)?;
    let mut id = None;
    let mut hex = None;
    for (key, value) in fields {
        match key.as_str() {
            "id" => id = Some(value),
            "bytecode" => hex = Some(value),
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    Ok(WireRequest {
        id: id.unwrap_or_else(|| fallback_id.to_owned()),
        hex: hex.ok_or("request object is missing `bytecode`")?,
    })
}

/// Renders one v2 response line (without trailing newline) for a scored
/// request.
pub fn render_report_v2(out: &mut String, report: &ScanReport) {
    out.push_str("{\"proto\":2,\"id\":");
    push_json_string(out, &report.id);
    let _ = write!(
        out,
        ",\"verdict\":\"{}\",\"proba\":{:.6},\"model_version\":",
        report.verdict, report.proba
    );
    push_json_string(out, &report.model_version);
    out.push_str(",\"per_model\":[");
    for (i, (name, proba)) in report.per_model.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(out, name);
        let _ = write!(out, ",\"proba\":{proba:.6}}}");
    }
    out.push_str("]}");
}

/// Renders one v2 error line (without trailing newline).
pub fn render_error_v2(out: &mut String, id: &str, message: &str) {
    out.push_str("{\"proto\":2,\"id\":");
    push_json_string(out, id);
    out.push_str(",\"error\":");
    push_json_string(out, message);
    out.push('}');
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a flat JSON object whose values are all strings —
/// `{"key":"value", …}` — which is everything a v2 *request* may carry.
/// Nested objects/arrays/numbers are rejected with a descriptive message.
fn parse_flat_object(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut chars = text.chars().peekable();
    let mut fields = Vec::new();

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("request is not a JSON object".to_owned());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            skip_ws(&mut chars);
            let value = parse_string(&mut chars)
                .map_err(|e| format!("field `{key}`: {e} (only string values are accepted)"))?;
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}` in request object".to_owned()),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after request object".to_owned());
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

/// Parses one JSON string literal, cursor positioned at the opening quote.
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected a JSON string".to_owned());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_owned()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000C}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    // Surrogates and other invalid scalars degrade to U+FFFD
                    // rather than failing the whole request.
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                _ => return Err("unknown escape sequence".to_owned()),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_models::Verdict;

    fn report(id: &str, per_model: Vec<(String, f64)>) -> ScanReport {
        ScanReport {
            id: id.to_owned(),
            verdict: Verdict::Phishing,
            proba: 0.75,
            per_model,
            model_version: "hsc-ensemble/v1".to_owned(),
        }
    }

    #[test]
    fn protocol_flag_parses() {
        assert_eq!(Protocol::parse("v1"), Some(Protocol::V1));
        assert_eq!(Protocol::parse("2"), Some(Protocol::V2));
        assert_eq!(Protocol::parse("V2"), Some(Protocol::V2));
        assert_eq!(Protocol::parse("v3"), None);
        assert_eq!(Protocol::default(), Protocol::V2);
    }

    #[test]
    fn bare_hex_requests_get_the_fallback_id() {
        let req = parse_request_v2("  0x6080  ", "7").expect("parses");
        assert_eq!(req.id, "7");
        assert_eq!(req.hex, "0x6080");
    }

    #[test]
    fn json_requests_carry_their_own_id() {
        let req = parse_request_v2(r#"{"id":"tx-1","bytecode":"0x60"}"#, "0").expect("parses");
        assert_eq!(req.id, "tx-1");
        assert_eq!(req.hex, "0x60");
        // Field order and whitespace don't matter; id is optional.
        let req = parse_request_v2(r#" { "bytecode" : "60" } "#, "fallback").expect("parses");
        assert_eq!(req.id, "fallback");
        assert_eq!(req.hex, "60");
    }

    #[test]
    fn malformed_json_requests_are_descriptive_errors() {
        assert!(parse_request_v2(r#"{"bytecode":}"#, "0").is_err());
        assert!(parse_request_v2(r#"{"id":"x"}"#, "0")
            .unwrap_err()
            .contains("missing `bytecode`"));
        assert!(parse_request_v2(r#"{"surprise":"y","bytecode":"60"}"#, "0")
            .unwrap_err()
            .contains("unknown request field"));
        assert!(parse_request_v2(r#"{"bytecode":42}"#, "0")
            .unwrap_err()
            .contains("string values"));
        assert!(parse_request_v2(r#"{"bytecode":"60"} extra"#, "0")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_request_v2(r#"{"bytecode":"60""#, "0").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let req = parse_request_v2(r#"{"id":"a\"b\\c\ndA","bytecode":"60"}"#, "0").expect("parses");
        assert_eq!(req.id, "a\"b\\c\ndA");
        let mut line = String::new();
        render_error_v2(&mut line, &req.id, "nope");
        assert_eq!(line, r#"{"proto":2,"id":"a\"b\\c\ndA","error":"nope"}"#);
    }

    #[test]
    fn response_rendering_is_stable() {
        let mut line = String::new();
        render_report_v2(
            &mut line,
            &report(
                "tx-9",
                vec![
                    ("Random Forest".to_owned(), 0.8),
                    ("LightGBM".to_owned(), 0.7),
                ],
            ),
        );
        assert_eq!(
            line,
            "{\"proto\":2,\"id\":\"tx-9\",\"verdict\":\"phishing\",\"proba\":0.750000,\
             \"model_version\":\"hsc-ensemble/v1\",\"per_model\":[\
             {\"name\":\"Random Forest\",\"proba\":0.800000},\
             {\"name\":\"LightGBM\",\"proba\":0.700000}]}"
        );
        // And it parses back through the flat-object reader far enough to
        // check framing (proto dispatch happens on the prefix).
        assert!(line.starts_with("{\"proto\":2,"));
    }
}
