//! The `phishinghook serve` daemon: long-running batched scoring over a
//! line protocol.
//!
//! # Protocols
//!
//! One request per line, one response line per request, in request order.
//! Two framings are supported (see [`crate::proto`] for the full grammar):
//!
//! * **v2 (default)** — versioned JSONL: requests are
//!   `{"id":…,"bytecode":…}` objects (or bare hex, id defaulting to the
//!   request's sequence number); responses carry `proto`, the echoed `id`,
//!   `verdict`, `proba`, `model_version` and a `per_model` array with one
//!   probability per underlying model — ensembles are observable over the
//!   wire.
//! * **v1 (`--proto v1`)** — the legacy framing, kept for old clients: hex
//!   in, `verdict\tproba` out, `error\t…` for malformed lines.
//!
//! Requests are scored in batches of `--batch` lines (the last batch may be
//! shorter) through the snapshot-restored [`Scanner`]'s batched hot path —
//! feature rows stream in place into a per-worker scratch matrix and every
//! underlying model scores the same rows — so the daemon's steady-state
//! cost per contract matches the pipeline benchmark's `contracts_per_sec`.
//! Responses for a batch are flushed as soon as the batch is scored; with
//! `--batch 1` the daemon is fully interactive.
//!
//! # Transports
//!
//! * **stdin/stdout** (default): score lines until EOF, then print a
//!   throughput/latency report to stderr (stdout carries only response
//!   lines) — doubling as a bulk scorer:
//!   `phishinghook serve --model rf.snap < addresses.hex > verdicts.jsonl`.
//! * **TCP** (`--tcp <addr>`, via [`std::net`]): accept connections
//!   concurrently, same line protocol on each socket; per-connection
//!   reports go to stderr. The snapshot is restored **once per process**:
//!   every connection handler is a [`Scanner::worker`] sibling sharing the
//!   immutable detector through an `Arc`, so accepting a connection costs
//!   a scratch-buffer allocation, never a model restore (the pipeline
//!   benchmark's `serve` section reports how many batches amortize one
//!   restore).
//!
//! # Worker pool
//!
//! `--workers <n>` fans batches out across `n` scoring threads, each owning
//! a scratch feature matrix ([`Scanner::worker`]). A collector thread
//! reorders finished batches so output order always matches input order
//! regardless of worker scheduling.

use crate::proto::{self, Protocol};
use phishinghook_evm::keccak::from_hex;
use phishinghook_models::{ScanRequest, Scanner};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Instant;

/// Tuning knobs of one serving loop.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Requests per scoring batch (≥ 1).
    pub batch: usize,
    /// Scoring worker threads (≥ 1).
    pub workers: usize,
    /// Wire framing (v2 JSONL by default; v1 for legacy clients).
    pub proto: Protocol,
}

impl Default for ServeOptions {
    fn default() -> Self {
        // 64-contract batches keep the scratch matrix hot without delaying
        // responses noticeably; one worker is right for the common case
        // (forest inference already parallelizes internally per batch).
        ServeOptions {
            batch: 64,
            workers: 1,
            proto: Protocol::default(),
        }
    }
}

/// Aggregate statistics of one serving loop (one stdin session or one TCP
/// connection).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Scored requests (excluding malformed lines).
    pub contracts: u64,
    /// Malformed request lines answered with an error response.
    pub errors: u64,
    /// Scored batches.
    pub batches: u64,
    /// Total bytecode bytes scored.
    pub bytes: u64,
    /// Wall-clock seconds from first read to last write.
    pub secs: f64,
    /// Sum over batches of per-batch scoring seconds (excludes I/O).
    pub busy_secs: f64,
    /// Slowest single batch's scoring seconds.
    pub max_batch_secs: f64,
}

impl ServeReport {
    /// Human-readable multi-line summary.
    pub fn render(&self, model: &str) -> String {
        let per_sec = if self.secs > 0.0 {
            self.contracts as f64 / self.secs
        } else {
            0.0
        };
        let mean_ms = if self.batches > 0 {
            self.busy_secs / self.batches as f64 * 1e3
        } else {
            0.0
        };
        format!(
            "serve report ({model}): {} contract(s) in {} batch(es), {} error line(s)\n\
             throughput {:.0} contracts/s ({:.2} MB/s), batch latency mean {:.2} ms / max {:.2} ms\n",
            self.contracts,
            self.batches,
            self.errors,
            per_sec,
            self.bytes as f64 / (1024.0 * 1024.0) / self.secs.max(1e-12),
            mean_ms,
            self.max_batch_secs * 1e3,
        )
    }

    fn absorb(&mut self, other: &ServeReport) {
        self.contracts += other.contracts;
        self.errors += other.errors;
        self.batches += other.batches;
        self.bytes += other.bytes;
        self.secs += other.secs;
        self.busy_secs += other.busy_secs;
        self.max_batch_secs = self.max_batch_secs.max(other.max_batch_secs);
    }
}

/// One scored batch on its way from a worker to the collector.
struct BatchResult {
    /// Formatted response lines, one per request in the batch.
    lines: String,
    contracts: u64,
    errors: u64,
    bytes: u64,
    secs: f64,
}

/// One request line after protocol decoding.
enum Decoded {
    /// Valid request, ready to score.
    Request(ScanRequest),
    /// Malformed line: id to echo plus the error message.
    Bad(String, String),
}

/// Decodes one line under the active protocol. `fallback_id` is the
/// 0-based global request index, used when the line carries no id of its
/// own (always, for v1 and bare-hex v2 lines).
fn decode_line(line: &str, fallback_id: u64, proto: Protocol) -> Decoded {
    match proto {
        Protocol::V1 => match from_hex(line.trim()) {
            Some(code) => Decoded::Request(ScanRequest {
                id: fallback_id.to_string(),
                bytecode: code,
            }),
            None => Decoded::Bad(fallback_id.to_string(), "not valid hex bytecode".to_owned()),
        },
        Protocol::V2 => match proto::parse_request_v2(line, &fallback_id.to_string()) {
            Ok(req) => match from_hex(req.hex.trim()) {
                Some(code) => Decoded::Request(ScanRequest {
                    id: req.id,
                    bytecode: code,
                }),
                None => Decoded::Bad(req.id, "not valid hex bytecode".to_owned()),
            },
            Err(msg) => Decoded::Bad(fallback_id.to_string(), msg),
        },
    }
}

/// Decodes and scores one batch of request lines. `first_index` is the
/// global index of the batch's first request (for fallback ids).
fn score_batch(
    scanner: &mut Scanner,
    requests: &[String],
    first_index: u64,
    proto: Protocol,
) -> BatchResult {
    let t0 = Instant::now();
    // Slot per line: valid requests move into `valid` (scored as one
    // batch), bad lines keep their id + message for the error response.
    enum Slot {
        Valid,
        Bad(String, String),
    }
    let mut valid: Vec<ScanRequest> = Vec::with_capacity(requests.len());
    let slots: Vec<Slot> = requests
        .iter()
        .enumerate()
        .map(
            |(i, line)| match decode_line(line, first_index + i as u64, proto) {
                Decoded::Request(req) => {
                    valid.push(req);
                    Slot::Valid
                }
                Decoded::Bad(id, msg) => Slot::Bad(id, msg),
            },
        )
        .collect();
    let bytes: u64 = valid.iter().map(|r| r.bytecode.len() as u64).sum();
    let reports = scanner.scan_batch(&valid);

    let mut lines = String::with_capacity(requests.len() * 64);
    let mut next_report = reports.iter();
    let mut errors = 0u64;
    for entry in &slots {
        match entry {
            Slot::Valid => {
                let report = next_report.next().expect("one report per valid request");
                match proto {
                    Protocol::V1 => {
                        use std::fmt::Write as _;
                        let _ = write!(lines, "{}\t{:.6}", report.verdict, report.proba);
                    }
                    Protocol::V2 => proto::render_report_v2(&mut lines, report),
                }
            }
            Slot::Bad(id, message) => {
                errors += 1;
                match proto {
                    Protocol::V1 => {
                        lines.push_str("error\t");
                        lines.push_str(message);
                    }
                    Protocol::V2 => proto::render_error_v2(&mut lines, id, message),
                }
            }
        }
        lines.push('\n');
    }
    BatchResult {
        lines,
        contracts: valid.len() as u64,
        errors,
        bytes,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Serves one request stream to completion: reads lines from `input`,
/// writes one response line per request to `output` (flushed per batch),
/// and returns the session's aggregate report.
///
/// # Errors
/// Propagates I/O errors from either side of the stream.
pub fn serve_lines(
    scanner: &Scanner,
    input: impl BufRead,
    mut output: impl Write + Send,
    opts: &ServeOptions,
) -> std::io::Result<ServeReport> {
    let batch_size = opts.batch.max(1);
    let workers = opts.workers.max(1);
    let proto = opts.proto;
    let t0 = Instant::now();

    // In-flight batches bounded per worker (and workers×BOUND overall on
    // the result side): scoring a multi-gigabyte input cannot buffer the
    // whole file in channel queues, and a stalled output stream
    // back-pressures all the way to the reader.
    const CHANNEL_BOUND: usize = 4;

    std::thread::scope(|scope| {
        let (result_tx, result_rx) =
            mpsc::sync_channel::<(u64, BatchResult)>(workers * CHANNEL_BOUND);
        let batch_txs: Vec<mpsc::SyncSender<(u64, Vec<String>)>> = (0..workers)
            .map(|_| {
                let (tx, rx) = mpsc::sync_channel::<(u64, Vec<String>)>(CHANNEL_BOUND);
                let mut worker = scanner.worker();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((seq, requests)) = rx.recv() {
                        // Every batch before the last is full, so the global
                        // index of a batch's first request is seq × size.
                        let first_index = seq * batch_size as u64;
                        let result = score_batch(&mut worker, &requests, first_index, proto);
                        if result_tx.send((seq, result)).is_err() {
                            return; // collector gone: the session is over
                        }
                    }
                });
                tx
            })
            .collect();
        drop(result_tx);

        // Collector: restores batch order and owns the output stream.
        let collector = scope.spawn(move || -> std::io::Result<ServeReport> {
            let mut report = ServeReport::default();
            let mut pending: BTreeMap<u64, BatchResult> = BTreeMap::new();
            let mut next_seq = 0u64;
            for (seq, result) in result_rx {
                pending.insert(seq, result);
                let mut wrote = false;
                while let Some(result) = pending.remove(&next_seq) {
                    output.write_all(result.lines.as_bytes())?;
                    report.contracts += result.contracts;
                    report.errors += result.errors;
                    report.batches += 1;
                    report.bytes += result.bytes;
                    report.busy_secs += result.secs;
                    report.max_batch_secs = report.max_batch_secs.max(result.secs);
                    next_seq += 1;
                    wrote = true;
                }
                if wrote {
                    output.flush()?;
                }
            }
            Ok(report)
        });

        // Reader (this thread): batch request lines and hand them out.
        let mut seq = 0u64;
        let mut batch: Vec<String> = Vec::with_capacity(batch_size);
        let mut read_error: Option<std::io::Error> = None;
        for line in input.lines() {
            match line {
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    batch.push(line);
                    if batch.len() == batch_size {
                        let full = std::mem::replace(&mut batch, Vec::with_capacity(batch_size));
                        // A full channel blocks (backpressure); an Err means
                        // the worker died because the collector hit an I/O
                        // error (joined below) — stop reading, don't drain
                        // the rest of the input into a dead pipeline.
                        if batch_txs[(seq as usize) % workers]
                            .send((seq, full))
                            .is_err()
                        {
                            break;
                        }
                        seq += 1;
                    }
                }
            }
        }
        if !batch.is_empty() {
            let _ = batch_txs[(seq as usize) % workers].send((seq, batch));
        }
        drop(batch_txs); // workers drain and exit, then the collector ends

        let mut report = collector.join().expect("collector thread panicked")?;
        if let Some(e) = read_error {
            return Err(e);
        }
        report.secs = t0.elapsed().as_secs_f64();
        Ok(report)
    })
}

/// Accepts TCP connections and serves the line protocol on each, one
/// handler thread per connection. The handlers are [`Scanner::worker`]
/// siblings of `scanner`: the model snapshot is restored once by the
/// caller and shared via `Arc` across every connection, never re-restored
/// per connection.
///
/// `max_conns` bounds how many connections are accepted before returning
/// the aggregate report — `None` serves forever (the daemon case). Each
/// connection's individual report is written to stderr as it closes.
///
/// # Errors
/// Propagates accept errors; per-connection I/O errors are reported to
/// stderr and do not stop the daemon.
pub fn serve_tcp(
    listener: &TcpListener,
    scanner: &Scanner,
    opts: &ServeOptions,
    max_conns: Option<usize>,
) -> std::io::Result<ServeReport> {
    let model = scanner.model_name();
    let mut total = ServeReport::default();
    let mut accepted = 0usize;
    std::thread::scope(|scope| -> std::io::Result<()> {
        // Reports are aggregated only in the bounded (test/batch) case: a
        // forever-running daemon would otherwise accumulate one report per
        // connection in a channel that is never drained.
        let channel = max_conns.map(|_| mpsc::channel::<ServeReport>());
        let report_tx = channel.as_ref().map(|(tx, _)| tx);
        while max_conns.is_none_or(|m| accepted < m) {
            let (stream, peer) = listener.accept()?;
            accepted += 1;
            // Arc-clone of the shared detector + a fresh scratch buffer —
            // O(1), no snapshot decode on the accept path.
            let handler = scanner.worker();
            debug_assert!(handler.shares_model_with(scanner));
            let opts = opts.clone();
            let report_tx = report_tx.cloned();
            scope.spawn(move || match serve_connection(&handler, &stream, &opts) {
                Ok(report) => {
                    eprint!("[{peer}] {}", report.render(model));
                    if let Some(tx) = report_tx {
                        let _ = tx.send(report);
                    }
                }
                Err(e) => eprintln!("[{peer}] connection error: {e}"),
            });
        }
        if let Some((tx, rx)) = channel {
            drop(tx);
            for report in rx {
                total.absorb(&report);
            }
        }
        Ok(())
    })?;
    Ok(total)
}

/// Serves one accepted TCP stream (split into buffered read and write
/// halves) to EOF.
fn serve_connection(
    scanner: &Scanner,
    stream: &TcpStream,
    opts: &ServeOptions,
) -> std::io::Result<ServeReport> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(scanner, reader, stream, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};
    use phishinghook_evm::keccak::to_hex;
    use phishinghook_models::{Detector, DetectorRegistry};
    use std::sync::OnceLock;

    /// One fitted single-model scanner shared by every test (training is
    /// the slow part).
    fn scanner() -> &'static Scanner {
        static SCANNER: OnceLock<Scanner> = OnceLock::new();
        SCANNER.get_or_init(|| {
            let corpus = Corpus::generate(&CorpusConfig {
                n_contracts: 80,
                seed: 5,
                ..Default::default()
            });
            let (codes, labels) = corpus.as_dataset();
            let mut det = DetectorRegistry::global()
                .build_str("rf:seed=7", 7)
                .expect("valid spec");
            det.fit(&codes, &labels);
            Scanner::new(det).expect("fitted")
        })
    }

    /// A 2-member ensemble scanner for per-model wire assertions.
    fn ensemble_scanner() -> &'static Scanner {
        static SCANNER: OnceLock<Scanner> = OnceLock::new();
        SCANNER.get_or_init(|| {
            let corpus = Corpus::generate(&CorpusConfig {
                n_contracts: 80,
                seed: 5,
                ..Default::default()
            });
            let (codes, labels) = corpus.as_dataset();
            let mut det = DetectorRegistry::global()
                .build_str("ensemble:rf+lgbm:vote=soft", 7)
                .expect("valid spec");
            det.fit(&codes, &labels);
            Scanner::new(det).expect("fitted")
        })
    }

    fn probe_lines(n: usize) -> (String, Vec<Vec<u8>>) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: n,
            seed: 99,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.into_iter().map(|r| r.bytecode).collect();
        let text: String = codes.iter().map(|c| format!("0x{}\n", to_hex(c))).collect();
        (text, codes)
    }

    fn serve_with(scanner: &Scanner, input: &str, opts: &ServeOptions) -> (String, ServeReport) {
        let mut out = Vec::new();
        let report = serve_lines(scanner, input.as_bytes(), &mut out, opts).expect("serves");
        (String::from_utf8(out).expect("utf8 output"), report)
    }

    fn serve_to_string(input: &str, opts: &ServeOptions) -> (String, ServeReport) {
        serve_with(scanner(), input, opts)
    }

    fn v1() -> ServeOptions {
        ServeOptions {
            proto: Protocol::V1,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn v1_one_response_line_per_request_in_order() {
        let (input, codes) = probe_lines(10);
        let (out, report) = serve_to_string(&input, &v1());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), codes.len());
        assert_eq!(report.contracts, codes.len() as u64);
        assert_eq!(report.errors, 0);
        assert_eq!(
            report.bytes,
            codes.iter().map(|c| c.len() as u64).sum::<u64>()
        );

        // Responses match direct scanner scoring, in request order.
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let probs = scanner().worker().score_batch(&refs);
        for (line, p) in lines.iter().zip(&probs) {
            let verdict = if *p >= 0.5 { "phishing" } else { "benign" };
            assert_eq!(*line, format!("{verdict}\t{p:.6}"));
        }
    }

    #[test]
    fn v2_responses_carry_ids_and_parse_as_jsonl() {
        let (input, codes) = probe_lines(6);
        let (out, report) = serve_to_string(&input, &ServeOptions::default());
        assert_eq!(report.contracts, codes.len() as u64);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let probs = scanner().worker().score_batch(&refs);
        for (i, (line, p)) in out.lines().zip(&probs).enumerate() {
            // Bare-hex requests get sequence-number ids.
            assert!(
                line.starts_with(&format!("{{\"proto\":2,\"id\":\"{i}\",")),
                "{line}"
            );
            let verdict = if *p >= 0.5 { "phishing" } else { "benign" };
            assert!(
                line.contains(&format!("\"verdict\":\"{verdict}\"")),
                "{line}"
            );
            assert!(line.contains(&format!("\"proba\":{p:.6}")), "{line}");
            assert!(
                line.contains("\"model_version\":\"hsc-detector/v1\""),
                "{line}"
            );
            assert!(
                line.contains("\"per_model\":[{\"name\":\"Random Forest\""),
                "{line}"
            );
            assert!(line.ends_with("]}"), "{line}");
        }
    }

    #[test]
    fn v2_json_requests_echo_their_ids() {
        let (_, codes) = probe_lines(2);
        let input = format!(
            "{{\"id\":\"tx-a\",\"bytecode\":\"0x{}\"}}\n{{\"bytecode\":\"0x{}\"}}\nnot json or hex!!\n",
            to_hex(&codes[0]),
            to_hex(&codes[1]),
        );
        let (out, report) = serve_to_string(&input, &ServeOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].starts_with("{\"proto\":2,\"id\":\"tx-a\","),
            "{}",
            lines[0]
        );
        // Missing id falls back to the request's global sequence number.
        assert!(
            lines[1].starts_with("{\"proto\":2,\"id\":\"1\","),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"error\":"), "{}", lines[2]);
        assert_eq!(report.contracts, 2);
        assert_eq!(report.errors, 1);
    }

    #[test]
    fn v2_ensembles_expose_per_member_probabilities() {
        let (input, codes) = probe_lines(4);
        let (out, _) = serve_with(ensemble_scanner(), &input, &ServeOptions::default());
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let combined = ensemble_scanner().worker().score_batch(&refs);
        for (line, p) in out.lines().zip(&combined) {
            assert!(
                line.contains("\"model_version\":\"hsc-ensemble/v1\""),
                "{line}"
            );
            assert!(
                line.contains("{\"name\":\"Random Forest\",\"proba\":"),
                "{line}"
            );
            assert!(line.contains("{\"name\":\"LightGBM\",\"proba\":"), "{line}");
            assert!(line.contains(&format!("\"proba\":{p:.6}")), "{line}");
            assert_eq!(line.matches("\"name\":").count(), 2, "{line}");
        }
    }

    #[test]
    fn output_order_is_stable_for_any_batch_size_and_worker_count() {
        let (input, _) = probe_lines(23);
        for proto in [Protocol::V1, Protocol::V2] {
            let (reference, _) = serve_to_string(
                &input,
                &ServeOptions {
                    batch: 64,
                    workers: 1,
                    proto,
                },
            );
            for (batch, workers) in [(1, 1), (4, 3), (5, 2), (64, 4)] {
                let (out, report) = serve_to_string(
                    &input,
                    &ServeOptions {
                        batch,
                        workers,
                        proto,
                    },
                );
                assert_eq!(out, reference, "batch={batch} workers={workers} {proto:?}");
                assert_eq!(report.batches, 23u64.div_ceil(batch as u64));
            }
        }
    }

    #[test]
    fn v1_malformed_and_blank_lines() {
        let (mut input, codes) = probe_lines(3);
        input.push_str("zznothex\n\n   \n0x60\n");
        let (out, report) = serve_to_string(
            &input,
            &ServeOptions {
                batch: 2,
                workers: 2,
                proto: Protocol::V1,
            },
        );
        let lines: Vec<&str> = out.lines().collect();
        // 3 contracts + 1 malformed + 1 tiny-but-valid; blanks are skipped.
        assert_eq!(lines.len(), codes.len() + 2);
        assert_eq!(lines[codes.len()], "error\tnot valid hex bytecode");
        assert!(
            lines[codes.len() + 1].starts_with("phishing\t")
                || lines[codes.len() + 1].starts_with("benign\t")
        );
        assert_eq!(report.errors, 1);
        assert_eq!(report.contracts, codes.len() as u64 + 1);
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let (out, report) = serve_to_string("", &ServeOptions::default());
        assert!(out.is_empty());
        assert_eq!(report.contracts, 0);
        assert_eq!(report.batches, 0);
        let rendered = report.render("Random Forest");
        assert!(rendered.contains("0 contract(s)"), "{rendered}");
    }

    #[test]
    fn tcp_round_trip_shares_one_restored_model_across_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("addr");
        let (input, codes) = probe_lines(5);

        let clients: Vec<_> = (0..2)
            .map(|_| {
                let input = input.clone();
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.write_all(input.as_bytes()).expect("send requests");
                    stream
                        .shutdown(std::net::Shutdown::Write)
                        .expect("half-close");
                    let mut response = String::new();
                    use std::io::Read;
                    stream
                        .read_to_string(&mut response)
                        .expect("read responses");
                    response
                })
            })
            .collect();

        let opts = ServeOptions {
            batch: 2,
            workers: 2,
            proto: Protocol::V2,
        };
        // One scanner (one restore) serves both connections.
        let total = serve_tcp(&listener, scanner(), &opts, Some(2)).expect("serves two conns");
        assert_eq!(total.contracts, 2 * codes.len() as u64);
        for client in clients {
            let response = client.join().expect("client thread");
            assert_eq!(response.lines().count(), codes.len());
            for line in response.lines() {
                assert!(line.starts_with("{\"proto\":2,"), "{line}");
                assert!(
                    line.contains("\"verdict\":\"phishing\"")
                        || line.contains("\"verdict\":\"benign\""),
                    "{line}"
                );
            }
        }
    }
}
