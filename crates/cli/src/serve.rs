//! The `phishinghook serve` daemon: long-running batched scoring over a
//! line protocol.
//!
//! # Protocol
//!
//! One request per line: hex-encoded deployed bytecode (optional `0x`
//! prefix, surrounding whitespace ignored, blank lines skipped). One
//! response line per request, in request order:
//!
//! ```text
//! phishing\t0.934211
//! benign\t0.021002
//! error\tnot valid hex bytecode
//! ```
//!
//! Requests are scored in batches of `--batch` lines (the last batch may be
//! shorter) through the snapshot-restored detector's batched hot path —
//! [`ScoringEngine::score_batch`] streams feature rows in place and runs
//! block-parallel forest inference — so the daemon's steady-state cost per
//! contract is the same as the pipeline benchmark's `contracts_per_sec`.
//! Responses for a batch are flushed as soon as the batch is scored; with
//! `--batch 1` the daemon is fully interactive.
//!
//! # Transports
//!
//! * **stdin/stdout** (default): score lines until EOF, then print a
//!   throughput/latency report to stderr (stdout carries only verdict
//!   lines) — doubling as a bulk scorer:
//!   `phishinghook serve --model rf.snap < addresses.hex > verdicts.tsv`.
//! * **TCP** (`--tcp <addr>`, via [`std::net`]): accept connections
//!   concurrently, one worker engine per connection, same line protocol on
//!   each socket; per-connection reports go to stderr.
//!
//! # Worker pool
//!
//! `--workers <n>` fans batches out across `n` scoring threads, each owning
//! a scratch feature matrix ([`ScoringEngine::worker`] shares the immutable
//! detector). A collector thread reorders finished batches so output order
//! always matches input order regardless of worker scheduling.

use phishinghook_evm::keccak::from_hex;
use phishinghook_models::ScoringEngine;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Instant;

/// Tuning knobs of one serving loop.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Requests per scoring batch (≥ 1).
    pub batch: usize,
    /// Scoring worker threads (≥ 1).
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        // 64-contract batches keep the scratch matrix hot without delaying
        // responses noticeably; one worker is right for the common case
        // (forest inference already parallelizes internally per batch).
        ServeOptions {
            batch: 64,
            workers: 1,
        }
    }
}

/// Aggregate statistics of one serving loop (one stdin session or one TCP
/// connection).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Scored requests (excluding malformed lines).
    pub contracts: u64,
    /// Malformed request lines answered with `error\t…`.
    pub errors: u64,
    /// Scored batches.
    pub batches: u64,
    /// Total bytecode bytes scored.
    pub bytes: u64,
    /// Wall-clock seconds from first read to last write.
    pub secs: f64,
    /// Sum over batches of per-batch scoring seconds (excludes I/O).
    pub busy_secs: f64,
    /// Slowest single batch's scoring seconds.
    pub max_batch_secs: f64,
}

impl ServeReport {
    /// Human-readable multi-line summary.
    pub fn render(&self, model: &str) -> String {
        let per_sec = if self.secs > 0.0 {
            self.contracts as f64 / self.secs
        } else {
            0.0
        };
        let mean_ms = if self.batches > 0 {
            self.busy_secs / self.batches as f64 * 1e3
        } else {
            0.0
        };
        format!(
            "serve report ({model}): {} contract(s) in {} batch(es), {} error line(s)\n\
             throughput {:.0} contracts/s ({:.2} MB/s), batch latency mean {:.2} ms / max {:.2} ms\n",
            self.contracts,
            self.batches,
            self.errors,
            per_sec,
            self.bytes as f64 / (1024.0 * 1024.0) / self.secs.max(1e-12),
            mean_ms,
            self.max_batch_secs * 1e3,
        )
    }

    fn absorb(&mut self, other: &ServeReport) {
        self.contracts += other.contracts;
        self.errors += other.errors;
        self.batches += other.batches;
        self.bytes += other.bytes;
        self.secs += other.secs;
        self.busy_secs += other.busy_secs;
        self.max_batch_secs = self.max_batch_secs.max(other.max_batch_secs);
    }
}

/// One scored batch on its way from a worker to the collector.
struct BatchResult {
    /// Formatted response lines, one per request in the batch.
    lines: String,
    contracts: u64,
    errors: u64,
    bytes: u64,
    secs: f64,
}

/// Decodes and scores one batch of request lines.
fn score_batch(engine: &mut ScoringEngine, requests: &[String]) -> BatchResult {
    let t0 = Instant::now();
    let decoded: Vec<Option<Vec<u8>>> = requests.iter().map(|line| from_hex(line.trim())).collect();
    let valid: Vec<&[u8]> = decoded.iter().flatten().map(Vec::as_slice).collect();
    let bytes: u64 = valid.iter().map(|c| c.len() as u64).sum();
    let probs = engine.score_batch(&valid);

    let mut lines = String::with_capacity(requests.len() * 20);
    let mut next_prob = probs.iter();
    let mut errors = 0u64;
    for code in &decoded {
        match code {
            Some(_) => {
                let p = next_prob.next().expect("one probability per valid code");
                let verdict = if *p >= 0.5 { "phishing" } else { "benign" };
                lines.push_str(&format!("{verdict}\t{p:.6}\n"));
            }
            None => {
                errors += 1;
                lines.push_str("error\tnot valid hex bytecode\n");
            }
        }
    }
    BatchResult {
        lines,
        contracts: valid.len() as u64,
        errors,
        bytes,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Serves one request stream to completion: reads lines from `input`,
/// writes one response line per request to `output` (flushed per batch),
/// and returns the session's aggregate report.
///
/// # Errors
/// Propagates I/O errors from either side of the stream.
pub fn serve_lines(
    engine: &ScoringEngine,
    input: impl BufRead,
    mut output: impl Write + Send,
    opts: &ServeOptions,
) -> std::io::Result<ServeReport> {
    let batch_size = opts.batch.max(1);
    let workers = opts.workers.max(1);
    let t0 = Instant::now();

    // In-flight batches bounded per worker (and workers×BOUND overall on
    // the result side): scoring a multi-gigabyte input cannot buffer the
    // whole file in channel queues, and a stalled output stream
    // back-pressures all the way to the reader.
    const CHANNEL_BOUND: usize = 4;

    std::thread::scope(|scope| {
        let (result_tx, result_rx) =
            mpsc::sync_channel::<(u64, BatchResult)>(workers * CHANNEL_BOUND);
        let batch_txs: Vec<mpsc::SyncSender<(u64, Vec<String>)>> = (0..workers)
            .map(|_| {
                let (tx, rx) = mpsc::sync_channel::<(u64, Vec<String>)>(CHANNEL_BOUND);
                let mut worker = engine.worker();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((seq, requests)) = rx.recv() {
                        let result = score_batch(&mut worker, &requests);
                        if result_tx.send((seq, result)).is_err() {
                            return; // collector gone: the session is over
                        }
                    }
                });
                tx
            })
            .collect();
        drop(result_tx);

        // Collector: restores batch order and owns the output stream.
        let collector = scope.spawn(move || -> std::io::Result<ServeReport> {
            let mut report = ServeReport::default();
            let mut pending: BTreeMap<u64, BatchResult> = BTreeMap::new();
            let mut next_seq = 0u64;
            for (seq, result) in result_rx {
                pending.insert(seq, result);
                let mut wrote = false;
                while let Some(result) = pending.remove(&next_seq) {
                    output.write_all(result.lines.as_bytes())?;
                    report.contracts += result.contracts;
                    report.errors += result.errors;
                    report.batches += 1;
                    report.bytes += result.bytes;
                    report.busy_secs += result.secs;
                    report.max_batch_secs = report.max_batch_secs.max(result.secs);
                    next_seq += 1;
                    wrote = true;
                }
                if wrote {
                    output.flush()?;
                }
            }
            Ok(report)
        });

        // Reader (this thread): batch request lines and hand them out.
        let mut seq = 0u64;
        let mut batch: Vec<String> = Vec::with_capacity(batch_size);
        let mut read_error: Option<std::io::Error> = None;
        for line in input.lines() {
            match line {
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    batch.push(line);
                    if batch.len() == batch_size {
                        let full = std::mem::replace(&mut batch, Vec::with_capacity(batch_size));
                        // A full channel blocks (backpressure); an Err means
                        // the worker died because the collector hit an I/O
                        // error (joined below) — stop reading, don't drain
                        // the rest of the input into a dead pipeline.
                        if batch_txs[(seq as usize) % workers]
                            .send((seq, full))
                            .is_err()
                        {
                            break;
                        }
                        seq += 1;
                    }
                }
            }
        }
        if !batch.is_empty() {
            let _ = batch_txs[(seq as usize) % workers].send((seq, batch));
        }
        drop(batch_txs); // workers drain and exit, then the collector ends

        let mut report = collector.join().expect("collector thread panicked")?;
        if let Some(e) = read_error {
            return Err(e);
        }
        report.secs = t0.elapsed().as_secs_f64();
        Ok(report)
    })
}

/// Accepts TCP connections and serves the line protocol on each, one
/// handler thread (and one worker engine) per connection.
///
/// `max_conns` bounds how many connections are accepted before returning
/// the aggregate report — `None` serves forever (the daemon case). Each
/// connection's individual report is written to stderr as it closes.
///
/// # Errors
/// Propagates accept errors; per-connection I/O errors are reported to
/// stderr and do not stop the daemon.
pub fn serve_tcp(
    listener: &TcpListener,
    engine: &ScoringEngine,
    opts: &ServeOptions,
    max_conns: Option<usize>,
) -> std::io::Result<ServeReport> {
    let model = engine.model_name();
    let mut total = ServeReport::default();
    let mut accepted = 0usize;
    std::thread::scope(|scope| -> std::io::Result<()> {
        // Reports are aggregated only in the bounded (test/batch) case: a
        // forever-running daemon would otherwise accumulate one report per
        // connection in a channel that is never drained.
        let channel = max_conns.map(|_| mpsc::channel::<ServeReport>());
        let report_tx = channel.as_ref().map(|(tx, _)| tx);
        while max_conns.is_none_or(|m| accepted < m) {
            let (stream, peer) = listener.accept()?;
            accepted += 1;
            let handler = engine.worker();
            let opts = opts.clone();
            let report_tx = report_tx.cloned();
            scope.spawn(move || match serve_connection(&handler, &stream, &opts) {
                Ok(report) => {
                    eprint!("[{peer}] {}", report.render(model));
                    if let Some(tx) = report_tx {
                        let _ = tx.send(report);
                    }
                }
                Err(e) => eprintln!("[{peer}] connection error: {e}"),
            });
        }
        if let Some((tx, rx)) = channel {
            drop(tx);
            for report in rx {
                total.absorb(&report);
            }
        }
        Ok(())
    })?;
    Ok(total)
}

/// Serves one accepted TCP stream (split into buffered read and write
/// halves) to EOF.
fn serve_connection(
    engine: &ScoringEngine,
    stream: &TcpStream,
    opts: &ServeOptions,
) -> std::io::Result<ServeReport> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(engine, reader, stream, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};
    use phishinghook_evm::keccak::to_hex;
    use phishinghook_models::{Detector, HscDetector};
    use std::sync::OnceLock;

    /// One fitted engine shared by every test (training is the slow part).
    fn engine() -> &'static ScoringEngine {
        static ENGINE: OnceLock<ScoringEngine> = OnceLock::new();
        ENGINE.get_or_init(|| {
            let corpus = Corpus::generate(&CorpusConfig {
                n_contracts: 80,
                seed: 5,
                ..Default::default()
            });
            let (codes, labels) = corpus.as_dataset();
            let mut det = HscDetector::random_forest(7);
            det.fit(&codes, &labels);
            ScoringEngine::new(det).expect("fitted")
        })
    }

    fn probe_lines(n: usize) -> (String, Vec<Vec<u8>>) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: n,
            seed: 99,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.into_iter().map(|r| r.bytecode).collect();
        let text: String = codes.iter().map(|c| format!("0x{}\n", to_hex(c))).collect();
        (text, codes)
    }

    fn serve_to_string(input: &str, opts: &ServeOptions) -> (String, ServeReport) {
        let mut out = Vec::new();
        let report = serve_lines(engine(), input.as_bytes(), &mut out, opts).expect("serves");
        (String::from_utf8(out).expect("utf8 output"), report)
    }

    #[test]
    fn one_response_line_per_request_in_order() {
        let (input, codes) = probe_lines(10);
        let (out, report) = serve_to_string(&input, &ServeOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), codes.len());
        assert_eq!(report.contracts, codes.len() as u64);
        assert_eq!(report.errors, 0);
        assert_eq!(
            report.bytes,
            codes.iter().map(|c| c.len() as u64).sum::<u64>()
        );

        // Responses match direct engine scoring, in request order.
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let probs = engine().worker().score_batch(&refs);
        for (line, p) in lines.iter().zip(&probs) {
            let verdict = if *p >= 0.5 { "phishing" } else { "benign" };
            assert_eq!(*line, format!("{verdict}\t{p:.6}"));
        }
    }

    #[test]
    fn output_order_is_stable_for_any_batch_size_and_worker_count() {
        let (input, _) = probe_lines(23);
        let (reference, _) = serve_to_string(
            &input,
            &ServeOptions {
                batch: 64,
                workers: 1,
            },
        );
        for (batch, workers) in [(1, 1), (4, 3), (5, 2), (64, 4)] {
            let (out, report) = serve_to_string(&input, &ServeOptions { batch, workers });
            assert_eq!(out, reference, "batch={batch} workers={workers}");
            assert_eq!(report.batches, 23u64.div_ceil(batch as u64));
        }
    }

    #[test]
    fn malformed_and_blank_lines() {
        let (mut input, codes) = probe_lines(3);
        input.push_str("zznothex\n\n   \n0x60\n");
        let (out, report) = serve_to_string(
            &input,
            &ServeOptions {
                batch: 2,
                workers: 2,
            },
        );
        let lines: Vec<&str> = out.lines().collect();
        // 3 contracts + 1 malformed + 1 tiny-but-valid; blanks are skipped.
        assert_eq!(lines.len(), codes.len() + 2);
        assert_eq!(lines[codes.len()], "error\tnot valid hex bytecode");
        assert!(
            lines[codes.len() + 1].starts_with("phishing\t")
                || lines[codes.len() + 1].starts_with("benign\t")
        );
        assert_eq!(report.errors, 1);
        assert_eq!(report.contracts, codes.len() as u64 + 1);
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let (out, report) = serve_to_string("", &ServeOptions::default());
        assert!(out.is_empty());
        assert_eq!(report.contracts, 0);
        assert_eq!(report.batches, 0);
        let rendered = report.render("Random Forest");
        assert!(rendered.contains("0 contract(s)"), "{rendered}");
    }

    #[test]
    fn tcp_round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("addr");
        let (input, codes) = probe_lines(5);

        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(input.as_bytes()).expect("send requests");
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut response = String::new();
            use std::io::Read;
            stream
                .read_to_string(&mut response)
                .expect("read responses");
            response
        });

        let opts = ServeOptions {
            batch: 2,
            workers: 2,
        };
        let total = serve_tcp(&listener, engine(), &opts, Some(1)).expect("serves one conn");
        let response = client.join().expect("client thread");
        assert_eq!(response.lines().count(), codes.len());
        assert_eq!(total.contracts, codes.len() as u64);
        for line in response.lines() {
            assert!(
                line.starts_with("phishing\t") || line.starts_with("benign\t"),
                "{line}"
            );
        }
    }
}
