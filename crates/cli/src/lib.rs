//! Implementation of the `phishinghook` command-line tool.
//!
//! Kept as a library so every subcommand is unit-testable without spawning
//! processes; [`run`] maps an argument vector to rendered output. The
//! crate is deliberately thin — argument parsing and wiring only; the
//! serving machinery (scheduler, verdict cache, wire protocols, firehose
//! driver) lives in [`phishinghook_serve`].

use phishinghook_core::cv::stratified_kfold;
use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_data::csv::{from_csv, to_csv};
use phishinghook_data::{
    ContractRecord, Corpus, CorpusConfig, Label, RetryPolicy, Scenario, SharedChain,
};
use phishinghook_evm::disasm::{disassemble, to_csv as disasm_csv};
use phishinghook_evm::keccak::from_hex;
use phishinghook_models::{
    AnyDetector, Detector, DetectorRegistry, FeatureSet, Scanner, SpecError,
};
use phishinghook_persist::PersistError;
use phishinghook_serve::{ConfigError, FaultConfig, Protocol, ServeConfig, WatchOptions};
use std::fmt;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the message is the usage text.
    Usage(String),
    /// Malformed hex payload.
    BadHex(String),
    /// Dataset file problems.
    Io(std::io::Error),
    /// Dataset CSV parse problems.
    Csv(phishinghook_data::csv::CsvError),
    /// Model snapshot problems (corrupt, truncated, wrong version/kind, …).
    Snapshot(PersistError),
    /// Malformed detector spec passed to `--model`.
    Spec(SpecError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::BadHex(s) => write!(f, "not valid hex bytecode: `{s}`"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Csv(e) => write!(f, "{e}"),
            CliError::Snapshot(e) => write!(f, "{e}"),
            CliError::Spec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::Spec(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<phishinghook_data::csv::CsvError> for CliError {
    fn from(e: phishinghook_data::csv::CsvError) -> Self {
        CliError::Csv(e)
    }
}

impl From<PersistError> for CliError {
    fn from(e: PersistError) -> Self {
        CliError::Snapshot(e)
    }
}

const USAGE: &str = "\
phishinghook — opcode-based phishing detection for EVM bytecode

USAGE:
  phishinghook disasm   <hex | ->              disassemble bytecode (BDM)
  phishinghook generate <n> <out.csv> [seed] [--scenario mixed|honeypot]
                                               emit a synthetic labeled dataset
  phishinghook eval     <dataset.csv> [folds]  cross-validate the 7 HSC models
  phishinghook train    <dataset.csv> [--model <spec>] [--seed <n>] [--save <out.snap>]
                                               fit a spec-built detector, snapshot it
  phishinghook scan     --model <snap-or-spec> [--train <dataset.csv>] <hex…>
                                               classify bytecodes (snapshot, or spec
                                               trained on --train first)
  phishinghook scan     <dataset.csv> <hex…>   train Random Forest, classify bytecodes
  phishinghook serve    --model <snap-or-spec> [--train <dataset.csv>] [--proto v1|v2]
                        [--shards <n>] [--pin-cores] [--batch <n>] [--workers <n>]
                        [--queue-depth <n>] [--cache-bytes <n>] [--tcp <addr>]
                        [--http <addr>] [--chain <dataset.csv>] [--max-conns <n>]
                        [--accept <n>] [--deadline-ms <n>] [--drain-ms <n>]
                        [--retry-attempts <n>]
                        [--cache-first-pct <n>] [--cache-only-pct <n>]
                        [--fault-panic-every <n>] [--fault-panic-shard <n>]
                        [--fault-chain-permille <n>] [--fault-seed <n>]
                                               batched scoring daemon (stdin, TCP JSONL
                                               and/or HTTP gateway): cross-connection
                                               micro-batching, keccak-keyed verdict
                                               cache, typed overload
  phishinghook watch    --model <snap-or-spec> [--train <dataset.csv>] [--events <n>]
                        [--templates <n>] [--seed <n>] [--batch <n>] [--workers <n>]
                        [--cache-bytes <n>] [--quick]
                                               score a simulated chain-deployment
                                               firehose through the serving core

--model takes a detector spec or a snapshot file. Spec grammar:
  rf | knn | svm | lr | xgb | lgbm | catboost          one HSC
  <family>:seed=<n>                                    explicit seed
  <family>:features=hist|trace|hist+trace              feature channels
  ensemble:<f>+<f>[+…][:vote=soft|hard|weighted[:weights=w,…]]
          [:features=…][:seed=<n>]
Legacy names (random-forest, logistic-regression, …) remain aliases.
features= picks what the model trains on: static opcode histograms
(default), dynamic execution-trace features from the dispatcher explorer,
or both concatenated. generate --scenario honeypot emits rigged/twin
contract pairs whose histograms are identical across classes — static
detectors sit at chance there; features=hist+trace does not.
serve speaks versioned JSONL by default; --proto v1 keeps the legacy
tab-separated framing for old clients. --cache-bytes 0 disables the
verdict cache; the `stats` request line reports scheduler/cache counters.
--http binds an HTTP/1.1 gateway (POST /predict, GET /healthz, GET /readyz,
Prometheus GET /metrics) over the same scheduler and cache as the JSONL
front-ends; --chain loads a dataset as the eth_getCode source so
address-form requests ({\"address\":\"0x…\"}) resolve to deployed bytecode.
--shards splits the scheduler into independent lanes (queue + workers +
cache slice), routed by code-hash digest; --pin-cores pins each lane's
workers to a core (best-effort, Linux). --workers counts per lane.
Robustness: --deadline-ms answers requests that waited too long with a
typed timeout (504 over HTTP); --drain-ms caps the shutdown drain;
--retry-attempts bounds chain-lookup retries (decorrelated-jitter
backoff); --cache-first-pct / --cache-only-pct set the queue-fill
percentages where brownout degrades shedding traffic to cheapest-member
and then cache-only scoring. The --fault-* flags arm the deterministic
fault-injection plan (chaos testing only); --fault-panic-shard confines
the injected worker panics to one lane.
";

/// Executes a CLI invocation, returning the text to print.
///
/// # Errors
/// Returns [`CliError::Usage`] for malformed invocations and I/O / parse /
/// snapshot errors otherwise.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("disasm") => disasm(args.get(1).map(String::as_str)),
        Some("generate") => generate(&args[1..]),
        Some("eval") => eval(&args[1..]),
        Some("train") => train(&args[1..]),
        Some("scan") => scan(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("watch") => watch_cmd(&args[1..]),
        _ => Err(CliError::Usage(USAGE.to_owned())),
    }
}

fn read_hex(payload: &str) -> Result<Vec<u8>, CliError> {
    let text = if payload == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf.trim().to_owned()
    } else {
        payload.to_owned()
    };
    from_hex(&text).ok_or(CliError::BadHex(text))
}

fn disasm(payload: Option<&str>) -> Result<String, CliError> {
    let payload = payload.ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let code = read_hex(payload)?;
    let instructions = disassemble(&code);
    let mut out = disasm_csv(&instructions);
    out.push_str(&format!(
        "# {} bytes, {} instructions\n",
        code.len(),
        instructions.len()
    ));
    Ok(out)
}

fn generate(args: &[String]) -> Result<String, CliError> {
    let mut positional: Vec<&String> = Vec::new();
    let mut scenario = Scenario::Mixed;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--scenario" {
            let v = iter
                .next()
                .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
            scenario = v
                .parse()
                .map_err(|e| CliError::Usage(format!("{e}\n\n{USAGE}")))?;
        } else {
            positional.push(arg);
        }
    }
    let (Some(n), Some(path)) = (positional.first(), positional.get(1)) else {
        return Err(CliError::Usage(USAGE.to_owned()));
    };
    let n: usize = n
        .parse()
        .map_err(|_| CliError::Usage(format!("`{n}` is not a sample count\n\n{USAGE}")))?;
    let seed: u64 = positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: n,
        seed,
        scenario,
        ..Default::default()
    });
    std::fs::write(path, to_csv(&corpus.records))?;
    // The default scenario keeps the historical banner; non-default ones
    // name themselves so a dataset's provenance is visible in logs.
    let tag = match scenario {
        Scenario::Mixed => String::new(),
        s => format!("{s} "),
    };
    Ok(format!(
        "wrote {} {tag}contracts ({} phishing / {} benign) to {path}\n",
        corpus.records.len(),
        corpus.phishing().count(),
        corpus.benign().count()
    ))
}

fn load_dataset(path: &str) -> Result<Vec<ContractRecord>, CliError> {
    let text = std::fs::read_to_string(path)?;
    Ok(from_csv(&text)?)
}

fn eval(args: &[String]) -> Result<String, CliError> {
    let path = args
        .first()
        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let folds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let records = load_dataset(path)?;
    let codes: Vec<&[u8]> = records.iter().map(|r| r.bytecode.as_slice()).collect();
    let labels: Vec<usize> = records.iter().map(|r| r.label.as_index()).collect();
    let splits = stratified_kfold(&labels, folds, 7);

    let mut out = format!(
        "{}-fold cross-validation on {} contracts\n\n",
        folds,
        records.len()
    );
    out.push_str(&format!(
        "{:<20} {:>7} {:>7} {:>7} {:>7}\n",
        "Model", "Acc%", "F1%", "Prec%", "Rec%"
    ));
    let registry = DetectorRegistry::global();
    for spec in registry.hsc_specs() {
        // Building is cheap (fitting is the expensive part), so a throwaway
        // build supplies the display name.
        let name = registry.build(&spec, 7).name().to_owned();
        let mut sums = [0.0f64; 4];
        for fold in &splits {
            let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
            let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
            let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
            let test_y: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
            let mut det = registry.build(&spec, 7);
            det.fit(&train_x, &train_y);
            let m = BinaryMetrics::from_predictions(&det.predict(&test_x), &test_y);
            sums[0] += m.accuracy;
            sums[1] += m.f1;
            sums[2] += m.precision;
            sums[3] += m.recall;
        }
        let k = splits.len() as f64;
        out.push_str(&format!(
            "{:<20} {:>7.2} {:>7.2} {:>7.2} {:>7.2}\n",
            name,
            sums[0] / k * 100.0,
            sums[1] / k * 100.0,
            sums[2] / k * 100.0,
            sums[3] / k * 100.0
        ));
    }
    Ok(out)
}

/// Human spelling of a detector's feature width, naming the channels so a
/// `features=trace` model's banner does not claim opcode features.
fn feature_desc(n: usize, features: FeatureSet) -> String {
    match features {
        FeatureSet::Histogram => format!("{n} opcode features"),
        FeatureSet::Trace => format!("{n} trace features"),
        FeatureSet::HistogramTrace => format!("{n} opcode+trace features"),
    }
}

/// Human spelling of a scoring engine: the quantized u16 walk with its bin
/// width, or the f64 reference arena (`quantize=off`, or a model family
/// with no tree mirror).
fn engine_parts_desc(quantize: bool, quant_bins: Option<usize>) -> String {
    match (quantize, quant_bins) {
        (true, Some(bins)) => format!("quantized engine, {bins} bins/feature"),
        _ => "f64 reference engine".to_owned(),
    }
}

/// [`engine_parts_desc`] for the scanner a serve/scan surface runs.
fn engine_desc(scanner: &Scanner) -> String {
    engine_parts_desc(scanner.quantize(), scanner.quant_bins())
}

/// Resolves a `--model` argument: an existing file loads as a snapshot (of
/// either kind); anything else must parse as a detector spec, which is then
/// trained on `--train <dataset.csv>`.
fn scanner_from_model_arg(
    model: &str,
    train: Option<&str>,
    seed: u64,
) -> Result<(Scanner, String), CliError> {
    if std::path::Path::new(model).exists() {
        // Refuse the ambiguous combination rather than silently serving the
        // snapshot while the user believes --train retrained it.
        if let Some(train) = train {
            return Err(CliError::Usage(format!(
                "`{model}` is a snapshot file, so --train {train} would be ignored; \
                 pass a detector spec to train, or drop --train to serve the snapshot\n\n{USAGE}"
            )));
        }
        let scanner = Scanner::load(model)?;
        let banner = format!(
            "loaded {} snapshot ({}; {}) from {model}\n",
            scanner.model_name(),
            feature_desc(scanner.n_features(), scanner.model().features()),
            engine_desc(&scanner),
        );
        return Ok((scanner, banner));
    }
    // Not a file: must be a spec. Parse first so a typo'd snapshot path
    // fails with the spec diagnostics rather than a bare "missing file".
    let mut det = DetectorRegistry::global().build_str(model, seed)?;
    let path = train.ok_or_else(|| {
        CliError::Usage(format!(
            "`{model}` is a detector spec (not a snapshot file); training data is \
             required — add --train <dataset.csv>\n\n{USAGE}"
        ))
    })?;
    let records = load_dataset(path)?;
    let codes: Vec<&[u8]> = records.iter().map(|r| r.bytecode.as_slice()).collect();
    let labels: Vec<usize> = records.iter().map(|r| r.label.as_index()).collect();
    det.fit(&codes, &labels);
    let scanner = Scanner::new(det)?;
    let banner = format!(
        "trained {} on {} labeled contracts from {path} ({})\n",
        scanner.model_name(),
        records.len(),
        engine_desc(&scanner),
    );
    Ok((scanner, banner))
}

fn train(args: &[String]) -> Result<String, CliError> {
    let mut dataset: Option<&str> = None;
    let mut model_name = "random-forest".to_owned();
    let mut seed = 7u64;
    let mut save: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => {
                model_name = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?
                    .clone();
            }
            "--seed" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
                seed = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("`{v}` is not a seed\n\n{USAGE}")))?;
            }
            "--save" => {
                save = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?,
                );
            }
            other if dataset.is_none() && !other.starts_with("--") => dataset = Some(other),
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n\n{USAGE}"
                )))
            }
        }
    }
    let path = dataset.ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let mut det = DetectorRegistry::global()
        .build_str(&model_name, seed)
        .map_err(|e| CliError::Usage(format!("bad model spec `{model_name}`: {e}\n\n{USAGE}")))?;

    let records = load_dataset(path)?;
    let codes: Vec<&[u8]> = records.iter().map(|r| r.bytecode.as_slice()).collect();
    let labels: Vec<usize> = records.iter().map(|r| r.label.as_index()).collect();
    let t0 = std::time::Instant::now();
    det.fit(&codes, &labels);
    let train_secs = t0.elapsed().as_secs_f64();

    let members = match &det {
        AnyDetector::Hsc(_) => String::new(),
        AnyDetector::Ensemble(e) => format!(" [{} members]", e.members().len()),
    };
    let mut out = format!(
        "trained {}{members} on {} labeled contracts in {:.2}s ({}; {})\n",
        det.name(),
        records.len(),
        train_secs,
        feature_desc(det.n_features(), det.features()),
        engine_parts_desc(det.quantize(), det.quant_bins()),
    );
    if let Some(path) = save {
        let bytes = det.to_snapshot_bytes();
        // Atomic save: a crash (or full disk) mid-write must not leave a
        // torn snapshot where a good one used to be.
        phishinghook_persist::write_bytes_atomic(path, &bytes)?;
        out.push_str(&format!(
            "saved snapshot to {path} ({} bytes)\n",
            bytes.len()
        ));
    }
    Ok(out)
}

fn scan(args: &[String]) -> Result<String, CliError> {
    if args.first().map(String::as_str) == Some("--model") {
        // Spec-or-snapshot path: load a fitted detector (or train a spec on
        // --train data) and score through the Scanner facade.
        let model = args
            .get(1)
            .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
        let mut payloads: Vec<&String> = Vec::new();
        let mut train: Option<&str> = None;
        let mut iter = args[2..].iter();
        while let Some(arg) = iter.next() {
            if arg == "--train" {
                train = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?,
                );
            } else {
                payloads.push(arg);
            }
        }
        if payloads.is_empty() {
            return Err(CliError::Usage(USAGE.to_owned()));
        }
        let (mut scanner, banner) = scanner_from_model_arg(model, train, 7)?;
        let mut out = banner;
        for payload in payloads {
            let code = read_hex(payload)?;
            let reports = scanner.scan_batch(
                &[phishinghook_models::ScanRequest::bytecode("", code)],
                None,
            );
            let report = reports[0].as_ref().expect("bytecode targets always score");
            out.push_str(&format!(
                "{}…  →  {} (p={:.4})\n",
                preview(payload),
                report.verdict,
                report.proba
            ));
            if report.per_model.len() > 1 {
                for (name, proba) in &report.per_model {
                    out.push_str(&format!("    {name:<20} p={proba:.4}\n"));
                }
            }
        }
        return Ok(out);
    }

    let path = args
        .first()
        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    if args.len() < 2 {
        return Err(CliError::Usage(USAGE.to_owned()));
    }
    let records = load_dataset(path)?;
    let codes: Vec<&[u8]> = records.iter().map(|r| r.bytecode.as_slice()).collect();
    let labels: Vec<usize> = records.iter().map(|r| r.label.as_index()).collect();
    let mut det = DetectorRegistry::global()
        .build_str("rf", 7)
        .expect("built-in spec");
    det.fit(&codes, &labels);

    let mut out = format!("detector trained on {} labeled contracts\n", records.len());
    for payload in &args[1..] {
        let code = read_hex(payload)?;
        let verdict = Label::from_index(det.predict(&[code.as_slice()])[0]);
        out.push_str(&format!("{}…  →  {verdict}\n", preview(payload)));
    }
    Ok(out)
}

/// First few characters of a hex payload for display.
fn preview(payload: &str) -> &str {
    if payload.len() > 18 {
        &payload[..18]
    } else {
        payload
    }
}

fn numeric(v: &str, name: &str) -> Result<usize, CliError> {
    v.parse()
        .map_err(|_| CliError::Usage(format!("`{v}` is not a valid {name}\n\n{USAGE}")))
}

fn serve_cmd(args: &[String]) -> Result<String, CliError> {
    let mut model: Option<&str> = None;
    let mut train: Option<&str> = None;
    let mut chain_path: Option<&str> = None;
    let mut builder = ServeConfig::builder();
    let mut fault = FaultConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::Usage(USAGE.to_owned()))
        };
        match arg.as_str() {
            "--model" => model = Some(value()?),
            "--train" => train = Some(value()?),
            "--chain" => chain_path = Some(value()?),
            "--batch" => builder = builder.batch(numeric(value()?, "batch size")?),
            "--shards" => builder = builder.shards(numeric(value()?, "shard count")?),
            "--pin-cores" => builder = builder.pin_cores(true),
            "--workers" => builder = builder.workers(numeric(value()?, "worker count")?),
            "--queue-depth" => builder = builder.queue_depth(numeric(value()?, "queue depth")?),
            "--cache-bytes" => {
                builder = builder.cache_bytes(numeric(value()?, "cache byte budget")?);
            }
            "--max-conns" => builder = builder.max_conns(numeric(value()?, "connection limit")?),
            "--accept" => builder = builder.accept(numeric(value()?, "accept count")?),
            "--deadline-ms" => {
                builder = builder.deadline_ms(numeric(value()?, "deadline")? as u64);
            }
            "--drain-ms" => builder = builder.drain_ms(numeric(value()?, "drain budget")? as u64),
            "--cache-first-pct" => {
                builder = builder.cache_first_pct(numeric(value()?, "brownout percentage")? as u32);
            }
            "--cache-only-pct" => {
                builder = builder.cache_only_pct(numeric(value()?, "brownout percentage")? as u32);
            }
            "--retry-attempts" => {
                builder = builder.retry(RetryPolicy {
                    max_attempts: numeric(value()?, "retry attempt count")? as u32,
                    ..RetryPolicy::default()
                });
            }
            "--fault-panic-every" => {
                fault.worker_panic_every = numeric(value()?, "fault batch interval")? as u64;
            }
            "--fault-panic-shard" => {
                fault.worker_panic_shard = Some(numeric(value()?, "fault shard index")?);
            }
            "--fault-chain-permille" => {
                fault.chain_fail_permille = numeric(value()?, "fault rate (permille)")? as u32;
            }
            "--fault-seed" => fault.seed = numeric(value()?, "fault seed")? as u64,
            "--proto" => {
                let v = value()?;
                let proto = Protocol::parse(v).ok_or_else(|| {
                    CliError::Usage(format!(
                        "`{v}` is not a protocol version (expected v1 or v2)\n\n{USAGE}"
                    ))
                })?;
                builder = builder.proto(proto);
            }
            "--tcp" => builder = builder.tcp(value()?),
            "--http" => builder = builder.http(value()?),
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n\n{USAGE}"
                )))
            }
        }
    }
    let model = model.ok_or_else(|| {
        CliError::Usage(format!(
            "serve requires --model <snapshot-or-spec>\n\n{USAGE}"
        ))
    })?;
    if !fault.is_inert() {
        let lane = fault
            .worker_panic_shard
            .map_or_else(|| "any lane".to_owned(), |s| format!("lane {s} only"));
        eprintln!(
            "fault injection ON (seed {}): panic every {} batch(es) ({lane}), chain fail {}‰",
            fault.seed, fault.worker_panic_every, fault.chain_fail_permille
        );
        builder = builder.fault(fault);
    }
    // The builder validates the whole shape before any model work: sizes
    // must be ≥ 1, and connection limits without a listener are refused,
    // not silently ignored.
    let config = builder.build().map_err(|e| match e {
        ConfigError::LimitsWithoutListener(_) => CliError::Usage(format!(
            "--max-conns and --accept are connection limits; add --tcp <addr> or \
             --http <addr> (stdin mode serves exactly one stream)\n\n{USAGE}"
        )),
        e => CliError::Usage(format!("{e}\n\n{USAGE}")),
    })?;
    let chain = chain_path
        .map(|path| -> Result<SharedChain, CliError> {
            let records = load_dataset(path)?;
            let chain = SharedChain::from_records(&records);
            eprintln!("chain source: {} contract(s) from {path}", chain.len());
            Ok(chain)
        })
        .transpose()?;
    // The model is restored (or trained) exactly once per process; one
    // scheduler (worker pool + verdict cache) serves every front-end.
    // `run` prints the listener banners, serves stdin or the bound
    // listeners, and renders the aggregate report to stderr.
    let (scanner, banner) = scanner_from_model_arg(model, train, 7)?;
    eprint!("{banner}");
    phishinghook_serve::run(&scanner, &config, chain)?;
    Ok(String::new())
}

fn watch_cmd(args: &[String]) -> Result<String, CliError> {
    let mut model: Option<&str> = None;
    let mut train: Option<&str> = None;
    // The --quick preset is resolved first so the flags below override it
    // regardless of argument order.
    let mut opts = if args.iter().any(|a| a == "--quick") {
        WatchOptions::quick()
    } else {
        WatchOptions::default()
    };
    let mut serve = ServeConfig::builder();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::Usage(USAGE.to_owned()))
        };
        match arg.as_str() {
            "--model" => model = Some(value()?),
            "--train" => train = Some(value()?),
            "--quick" => {} // applied above, before any overrides
            "--events" => opts.events = numeric(value()?, "event count")?,
            "--templates" => {
                opts.firehose.templates = numeric(value()?, "template count")?.max(1);
            }
            "--seed" => opts.firehose.seed = numeric(value()?, "seed")? as u64,
            "--batch" => serve = serve.batch(numeric(value()?, "batch size")?),
            "--workers" => serve = serve.workers(numeric(value()?, "worker count")?),
            "--cache-bytes" => {
                serve = serve.cache_bytes(numeric(value()?, "cache byte budget")?);
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n\n{USAGE}"
                )))
            }
        }
    }
    opts.serve = serve
        .build()
        .map_err(|e| CliError::Usage(format!("{e}\n\n{USAGE}")))?;
    let model = model.ok_or_else(|| {
        CliError::Usage(format!(
            "watch requires --model <snapshot-or-spec>\n\n{USAGE}"
        ))
    })?;
    let (scanner, banner) = scanner_from_model_arg(model, train, 7)?;
    let report = phishinghook_serve::run_watch(&scanner, &opts);
    Ok(format!("{banner}{}", report.render(scanner.model_name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::keccak::to_hex;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn usage_on_no_command() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn disasm_renders_instructions() {
        let out = run(&args(&["disasm", "0x6080604052"])).expect("disassembles");
        assert!(out.contains("PUSH1,0x80,3"));
        assert!(out.contains("MSTORE"));
        assert!(out.contains("5 bytes, 3 instructions"));
    }

    #[test]
    fn disasm_rejects_bad_hex() {
        assert!(matches!(
            run(&args(&["disasm", "0xzz"])),
            Err(CliError::BadHex(_))
        ));
    }

    #[test]
    fn generate_then_eval_then_scan_roundtrip() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let csv_str = csv.to_str().expect("utf8 path");

        let out = run(&args(&["generate", "120", csv_str, "5"])).expect("generates");
        assert!(out.contains("120 contracts"));

        // Scan one phishing and one benign bytecode from a *fresh* corpus.
        let probe = Corpus::generate(&CorpusConfig {
            n_contracts: 20,
            seed: 77,
            ..Default::default()
        });
        let phishing = probe.phishing().next().expect("phishing sample");
        let benign = probe.benign().next().expect("benign sample");
        let out = run(&args(&[
            "scan",
            csv_str,
            &format!("0x{}", to_hex(&phishing.bytecode)),
            &format!("0x{}", to_hex(&benign.bytecode)),
        ]))
        .expect("scans");
        assert!(out.contains("trained on 120"));
        assert_eq!(out.matches('→').count(), 2);
    }

    #[test]
    fn eval_reports_all_hscs() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test2");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let csv_str = csv.to_str().expect("utf8 path");
        run(&args(&["generate", "90", csv_str])).expect("generates");
        let out = run(&args(&["eval", csv_str, "3"])).expect("evaluates");
        for model in [
            "Random Forest",
            "k-NN",
            "SVM",
            "Logistic Regression",
            "XGBoost",
        ] {
            assert!(out.contains(model), "missing {model} in:\n{out}");
        }
    }

    #[test]
    fn train_save_then_scan_with_snapshot() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test3");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let snap = dir.join("knn.snap");
        let (csv_str, snap_str) = (csv.to_str().unwrap(), snap.to_str().unwrap());
        run(&args(&["generate", "100", csv_str, "9"])).expect("generates");

        let out = run(&args(&[
            "train", csv_str, "--model", "knn", "--save", snap_str,
        ]))
        .expect("trains");
        assert!(
            out.contains("trained k-NN on 100 labeled contracts"),
            "{out}"
        );
        assert!(out.contains("saved snapshot to"), "{out}");
        assert!(snap.exists());

        let probe = Corpus::generate(&CorpusConfig {
            n_contracts: 4,
            seed: 31,
            ..Default::default()
        });
        let hex = format!("0x{}", to_hex(&probe.records[0].bytecode));
        let out = run(&args(&["scan", "--model", snap_str, &hex])).expect("scans");
        assert!(out.contains("loaded k-NN snapshot"), "{out}");
        assert!(out.contains("(p="), "{out}");
        assert_eq!(out.matches('→').count(), 1);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test4");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let bogus = dir.join("bogus.snap");
        std::fs::write(&bogus, b"definitely not a snapshot").expect("write");
        let err = run(&args(&["scan", "--model", bogus.to_str().unwrap(), "0x60"])).unwrap_err();
        assert!(matches!(err, CliError::Snapshot(_)), "{err:?}");
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn train_rejects_unknown_model() {
        let err = run(&args(&["train", "ds.csv", "--model", "resnet"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn serve_robustness_flags_validate_before_serving() {
        // Bad robustness knobs are refused at validation time — no model
        // is trained and no listener is bound.
        let err = run(&args(&[
            "serve",
            "--model",
            "rf",
            "--cache-first-pct",
            "90",
            "--cache-only-pct",
            "10",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("cache_first_pct"), "{err}");

        let err = run(&args(&["serve", "--model", "rf", "--retry-attempts", "0"])).unwrap_err();
        assert!(err.to_string().contains("retry.max_attempts"), "{err}");

        let err = run(&args(&["serve", "--model", "rf", "--deadline-ms", "soon"])).unwrap_err();
        assert!(err.to_string().contains("not a valid deadline"), "{err}");
    }

    #[test]
    fn train_ensemble_spec_save_then_scan_and_serve() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test5");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let snap = dir.join("ens.snap");
        let (csv_str, snap_str) = (csv.to_str().unwrap(), snap.to_str().unwrap());
        run(&args(&["generate", "90", csv_str, "21"])).expect("generates");

        let out = run(&args(&[
            "train",
            csv_str,
            "--model",
            "ensemble:rf+lgbm:vote=soft",
            "--save",
            snap_str,
        ]))
        .expect("trains");
        assert!(
            out.contains("trained ensemble:rf+lgbm:vote=soft [2 members]"),
            "{out}"
        );
        assert!(snap.exists());

        // Scanning the ensemble snapshot reports the combined verdict plus
        // one probability per member.
        let probe = Corpus::generate(&CorpusConfig {
            n_contracts: 3,
            seed: 41,
            ..Default::default()
        });
        let hex = format!("0x{}", to_hex(&probe.records[0].bytecode));
        let out = run(&args(&["scan", "--model", snap_str, &hex])).expect("scans");
        assert!(
            out.contains("loaded ensemble:rf+lgbm:vote=soft snapshot"),
            "{out}"
        );
        assert!(out.contains("Random Forest"), "{out}");
        assert!(out.contains("LightGBM"), "{out}");
        assert_eq!(out.matches("p=").count(), 3, "{out}");
    }

    #[test]
    fn scan_with_spec_trains_on_the_given_dataset() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test6");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let csv_str = csv.to_str().unwrap();
        run(&args(&["generate", "80", csv_str, "33"])).expect("generates");

        let probe = Corpus::generate(&CorpusConfig {
            n_contracts: 2,
            seed: 51,
            ..Default::default()
        });
        let hex = format!("0x{}", to_hex(&probe.records[0].bytecode));
        let out = run(&args(&["scan", "--model", "knn", "--train", csv_str, &hex])).expect("scans");
        assert!(
            out.contains("trained k-NN on 80 labeled contracts"),
            "{out}"
        );
        assert_eq!(out.matches('→').count(), 1);

        // A spec without training data is a usage error that says so.
        let err = run(&args(&["scan", "--model", "knn", &hex])).unwrap_err();
        assert!(err.to_string().contains("--train"), "{err}");
        // A snapshot combined with --train is refused, not silently stale:
        // csv_str exists, so it stands in for a snapshot path here.
        let err = run(&args(&[
            "scan", "--model", csv_str, "--train", csv_str, &hex,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("would be ignored"), "{err}");
        // A malformed spec (that is also not a file) is a spec error.
        let err = run(&args(&["scan", "--model", "ensemble:", &hex])).unwrap_err();
        assert!(matches!(err, CliError::Spec(_)), "{err:?}");
    }

    #[test]
    fn serve_rejects_unknown_protocol() {
        let err = run(&args(&["serve", "--model", "x.snap", "--proto", "v9"])).unwrap_err();
        assert!(err.to_string().contains("protocol version"), "{err}");
    }

    #[test]
    fn serve_requires_model_flag() {
        let err = run(&args(&["serve"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn serve_validates_admission_flags() {
        let err = run(&args(&[
            "serve",
            "--model",
            "x.snap",
            "--max-conns",
            "lots",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("connection limit"), "{err}");
        let err = run(&args(&[
            "serve",
            "--model",
            "x.snap",
            "--cache-bytes",
            "-3",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cache byte budget"), "{err}");
        // Connection limits without a TCP listener are refused, not
        // silently ignored.
        let err = run(&args(&["serve", "--model", "x.snap", "--accept", "2"])).unwrap_err();
        assert!(err.to_string().contains("add --tcp"), "{err}");
        let err = run(&args(&["serve", "--model", "x.snap", "--max-conns", "4"])).unwrap_err();
        assert!(err.to_string().contains("add --tcp"), "{err}");
        // An HTTP listener satisfies the limits-need-a-listener rule at
        // the parse layer (binding happens later, in serve::run).
        let err = run(&args(&[
            "serve",
            "--model",
            "nonexistent.snap",
            "--http",
            "127.0.0.1:0",
            "--accept",
            "1",
        ]))
        .unwrap_err();
        assert!(!err.to_string().contains("add --tcp"), "{err}");
    }

    #[test]
    fn serve_rejects_zero_sizes_through_the_typed_config() {
        let err = run(&args(&["serve", "--model", "x.snap", "--batch", "0"])).unwrap_err();
        assert!(
            err.to_string().contains("`batch` must be at least 1"),
            "{err}"
        );
        let err = run(&args(&["serve", "--model", "x.snap", "--workers", "0"])).unwrap_err();
        assert!(
            err.to_string().contains("`workers` must be at least 1"),
            "{err}"
        );
        let err = run(&args(&["watch", "--model", "rf", "--batch", "0"])).unwrap_err();
        assert!(
            err.to_string().contains("`batch` must be at least 1"),
            "{err}"
        );
    }

    #[test]
    fn serve_validates_shard_flags() {
        // Zero lanes are refused by the typed config, before any model
        // work happens.
        let err = run(&args(&["serve", "--model", "x.snap", "--shards", "0"])).unwrap_err();
        assert!(
            err.to_string().contains("`shards` must be at least 1"),
            "{err}"
        );
        let err = run(&args(&["serve", "--model", "x.snap", "--shards", "lots"])).unwrap_err();
        assert!(err.to_string().contains("shard count"), "{err}");
        let err = run(&args(&[
            "serve",
            "--model",
            "x.snap",
            "--fault-panic-shard",
            "two",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("fault shard index"), "{err}");
        // --pin-cores takes no value: the next flag must still parse.
        let err = run(&args(&[
            "serve",
            "--model",
            "x.snap",
            "--pin-cores",
            "--batch",
            "0",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("`batch` must be at least 1"),
            "{err}"
        );
    }

    #[test]
    fn watch_requires_model_flag() {
        let err = run(&args(&["watch"])).unwrap_err();
        assert!(err.to_string().contains("watch requires --model"), "{err}");
        let err = run(&args(&["watch", "--model", "rf", "--events", "ten"])).unwrap_err();
        assert!(err.to_string().contains("event count"), "{err}");
    }

    #[test]
    fn watch_quick_runs_the_firehose_end_to_end() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test7");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let csv_str = csv.to_str().unwrap();
        run(&args(&["generate", "80", csv_str, "13"])).expect("generates");
        // --quick placed *after* the overrides: the preset must not
        // clobber explicit flags whatever the argument order.
        let out = run(&args(&[
            "watch",
            "--model",
            "rf",
            "--train",
            csv_str,
            "--events",
            "60",
            "--templates",
            "8",
            "--quick",
        ]))
        .expect("watches");
        assert!(out.contains("trained Random Forest"), "{out}");
        assert!(out.contains("watch report"), "{out}");
        assert!(out.contains("60 deploy event(s)"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
    }

    #[test]
    fn generate_honeypot_scenario_and_train_trace_spec() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test8");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("hp.csv");
        let csv_str = csv.to_str().unwrap();
        let out = run(&args(&[
            "generate",
            "40",
            csv_str,
            "3",
            "--scenario",
            "honeypot",
        ]))
        .expect("generates");
        assert!(out.contains("wrote 40 honeypot contracts"), "{out}");

        // A trace-bearing spec trains on it and the banner names the
        // channels rather than claiming opcode features.
        let out = run(&args(&[
            "train",
            csv_str,
            "--model",
            "rf:features=hist+trace",
        ]))
        .expect("trains");
        assert!(out.contains("trained Random Forest"), "{out}");
        assert!(out.contains("opcode+trace features"), "{out}");

        // Unknown scenarios are usage errors that say so.
        let err = run(&args(&["generate", "40", csv_str, "--scenario", "mainnet"])).unwrap_err();
        assert!(err.to_string().contains("unknown scenario"), "{err}");
    }

    #[test]
    fn missing_dataset_file_is_io_error() {
        assert!(matches!(
            run(&args(&["eval", "/nonexistent/ds.csv"])),
            Err(CliError::Io(_))
        ));
    }
}
