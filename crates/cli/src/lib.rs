//! Implementation of the `phishinghook` command-line tool.
//!
//! Kept as a library so every subcommand is unit-testable without spawning
//! processes; [`run`] maps an argument vector to rendered output.

use phishinghook_core::cv::stratified_kfold;
use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_data::csv::{from_csv, to_csv};
use phishinghook_data::{ContractRecord, Corpus, CorpusConfig, Label};
use phishinghook_evm::disasm::{disassemble, to_csv as disasm_csv};
use phishinghook_evm::keccak::from_hex;
use phishinghook_models::{all_hscs, Detector, HscDetector};
use std::fmt;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the message is the usage text.
    Usage(String),
    /// Malformed hex payload.
    BadHex(String),
    /// Dataset file problems.
    Io(std::io::Error),
    /// Dataset CSV parse problems.
    Csv(phishinghook_data::csv::CsvError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::BadHex(s) => write!(f, "not valid hex bytecode: `{s}`"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Csv(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<phishinghook_data::csv::CsvError> for CliError {
    fn from(e: phishinghook_data::csv::CsvError) -> Self {
        CliError::Csv(e)
    }
}

const USAGE: &str = "\
phishinghook — opcode-based phishing detection for EVM bytecode

USAGE:
  phishinghook disasm   <hex | ->              disassemble bytecode (BDM)
  phishinghook generate <n> <out.csv> [seed]   emit a synthetic labeled dataset
  phishinghook eval     <dataset.csv> [folds]  cross-validate the 7 HSC models
  phishinghook scan     <dataset.csv> <hex…>   train Random Forest, classify bytecodes
";

/// Executes a CLI invocation, returning the text to print.
///
/// # Errors
/// Returns [`CliError::Usage`] for malformed invocations and I/O / parse
/// errors otherwise.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("disasm") => disasm(args.get(1).map(String::as_str)),
        Some("generate") => generate(&args[1..]),
        Some("eval") => eval(&args[1..]),
        Some("scan") => scan(&args[1..]),
        _ => Err(CliError::Usage(USAGE.to_owned())),
    }
}

fn read_hex(payload: &str) -> Result<Vec<u8>, CliError> {
    let text = if payload == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf.trim().to_owned()
    } else {
        payload.to_owned()
    };
    from_hex(&text).ok_or(CliError::BadHex(text))
}

fn disasm(payload: Option<&str>) -> Result<String, CliError> {
    let payload = payload.ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let code = read_hex(payload)?;
    let instructions = disassemble(&code);
    let mut out = disasm_csv(&instructions);
    out.push_str(&format!(
        "# {} bytes, {} instructions\n",
        code.len(),
        instructions.len()
    ));
    Ok(out)
}

fn generate(args: &[String]) -> Result<String, CliError> {
    let (Some(n), Some(path)) = (args.first(), args.get(1)) else {
        return Err(CliError::Usage(USAGE.to_owned()));
    };
    let n: usize = n
        .parse()
        .map_err(|_| CliError::Usage(format!("`{n}` is not a sample count\n\n{USAGE}")))?;
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: n,
        seed,
        ..Default::default()
    });
    std::fs::write(path, to_csv(&corpus.records))?;
    Ok(format!(
        "wrote {} contracts ({} phishing / {} benign) to {path}\n",
        corpus.records.len(),
        corpus.phishing().count(),
        corpus.benign().count()
    ))
}

fn load_dataset(path: &str) -> Result<Vec<ContractRecord>, CliError> {
    let text = std::fs::read_to_string(path)?;
    Ok(from_csv(&text)?)
}

fn eval(args: &[String]) -> Result<String, CliError> {
    let path = args
        .first()
        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let folds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let records = load_dataset(path)?;
    let codes: Vec<&[u8]> = records.iter().map(|r| r.bytecode.as_slice()).collect();
    let labels: Vec<usize> = records.iter().map(|r| r.label.as_index()).collect();
    let splits = stratified_kfold(&labels, folds, 7);

    let mut out = format!(
        "{}-fold cross-validation on {} contracts\n\n",
        folds,
        records.len()
    );
    out.push_str(&format!(
        "{:<20} {:>7} {:>7} {:>7} {:>7}\n",
        "Model", "Acc%", "F1%", "Prec%", "Rec%"
    ));
    for template in all_hscs(7) {
        let name = template.name();
        let mut sums = [0.0f64; 4];
        for fold in &splits {
            let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
            let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
            let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
            let test_y: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
            let mut det = rebuild(name);
            det.fit(&train_x, &train_y);
            let m = BinaryMetrics::from_predictions(&det.predict(&test_x), &test_y);
            sums[0] += m.accuracy;
            sums[1] += m.f1;
            sums[2] += m.precision;
            sums[3] += m.recall;
        }
        let k = splits.len() as f64;
        out.push_str(&format!(
            "{:<20} {:>7.2} {:>7.2} {:>7.2} {:>7.2}\n",
            name,
            sums[0] / k * 100.0,
            sums[1] / k * 100.0,
            sums[2] / k * 100.0,
            sums[3] / k * 100.0
        ));
    }
    Ok(out)
}

fn rebuild(name: &str) -> Box<dyn Detector> {
    all_hscs(7)
        .into_iter()
        .find(|d| d.name() == name)
        .map(|d| Box::new(d) as Box<dyn Detector>)
        .expect("known HSC name")
}

fn scan(args: &[String]) -> Result<String, CliError> {
    let path = args
        .first()
        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    if args.len() < 2 {
        return Err(CliError::Usage(USAGE.to_owned()));
    }
    let records = load_dataset(path)?;
    let codes: Vec<&[u8]> = records.iter().map(|r| r.bytecode.as_slice()).collect();
    let labels: Vec<usize> = records.iter().map(|r| r.label.as_index()).collect();
    let mut det = HscDetector::random_forest(7);
    det.fit(&codes, &labels);

    let mut out = format!("detector trained on {} labeled contracts\n", records.len());
    for payload in &args[1..] {
        let code = read_hex(payload)?;
        let verdict = Label::from_index(det.predict(&[code.as_slice()])[0]);
        let preview = if payload.len() > 18 {
            &payload[..18]
        } else {
            payload
        };
        out.push_str(&format!("{preview}…  →  {verdict}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::keccak::to_hex;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn usage_on_no_command() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn disasm_renders_instructions() {
        let out = run(&args(&["disasm", "0x6080604052"])).expect("disassembles");
        assert!(out.contains("PUSH1,0x80,3"));
        assert!(out.contains("MSTORE"));
        assert!(out.contains("5 bytes, 3 instructions"));
    }

    #[test]
    fn disasm_rejects_bad_hex() {
        assert!(matches!(
            run(&args(&["disasm", "0xzz"])),
            Err(CliError::BadHex(_))
        ));
    }

    #[test]
    fn generate_then_eval_then_scan_roundtrip() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let csv_str = csv.to_str().expect("utf8 path");

        let out = run(&args(&["generate", "120", csv_str, "5"])).expect("generates");
        assert!(out.contains("120 contracts"));

        // Scan one phishing and one benign bytecode from a *fresh* corpus.
        let probe = Corpus::generate(&CorpusConfig {
            n_contracts: 20,
            seed: 77,
            ..Default::default()
        });
        let phishing = probe.phishing().next().expect("phishing sample");
        let benign = probe.benign().next().expect("benign sample");
        let out = run(&args(&[
            "scan",
            csv_str,
            &format!("0x{}", to_hex(&phishing.bytecode)),
            &format!("0x{}", to_hex(&benign.bytecode)),
        ]))
        .expect("scans");
        assert!(out.contains("trained on 120"));
        assert_eq!(out.matches('→').count(), 2);
    }

    #[test]
    fn eval_reports_all_hscs() {
        let dir = std::env::temp_dir().join("phishinghook-cli-test2");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let csv = dir.join("ds.csv");
        let csv_str = csv.to_str().expect("utf8 path");
        run(&args(&["generate", "90", csv_str])).expect("generates");
        let out = run(&args(&["eval", csv_str, "3"])).expect("evaluates");
        for model in [
            "Random Forest",
            "k-NN",
            "SVM",
            "Logistic Regression",
            "XGBoost",
        ] {
            assert!(out.contains(model), "missing {model} in:\n{out}");
        }
    }

    #[test]
    fn missing_dataset_file_is_io_error() {
        assert!(matches!(
            run(&args(&["eval", "/nonexistent/ds.csv"])),
            Err(CliError::Io(_))
        ));
    }
}
