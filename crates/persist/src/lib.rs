#![warn(missing_docs)]

//! Versioned binary snapshots of fitted PhishingHook artifacts.
//!
//! Training a detector is expensive (fitting 100 random-forest trees on a
//! multi-thousand-contract corpus); scoring one is cheap. This crate is the
//! boundary between the two: fitted artifacts — forests, histogram
//! vocabularies, n-gram tables, NN weights — implement [`Snapshot`] /
//! [`Restore`] and travel as self-describing byte envelopes, so a detector
//! is trained once, saved, and served forever.
//!
//! The format is deliberately dependency-free (the build environment has no
//! registry access, so `serde`/`bincode` are not options) and fully
//! deterministic: saving the same fitted artifact twice yields byte-identical
//! snapshots.
//!
//! # Envelope layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PHISHSNP"
//! 8       2     format version (u16 LE) — currently 1
//! 10      2     kind length K (u16 LE)
//! 12      K     kind tag (UTF-8), e.g. "hsc-detector"
//! 12+K    8     payload length P (u64 LE)
//! 20+K    P     payload (artifact-defined, written via `Writer`)
//! 20+K+P  4     CRC-32 (IEEE) of every preceding byte (u32 LE)
//! ```
//!
//! Every multi-byte integer is little-endian; floats are stored as their IEEE
//! 754 bit patterns, so restored models reproduce *bit-identical*
//! predictions. Malformed inputs never panic: truncation, corruption,
//! version skew and kind mismatches all surface as typed [`PersistError`]s.
//!
//! # Version / compatibility policy
//!
//! * The envelope version is bumped only when the *envelope* layout changes.
//!   Artifact payloads version themselves through their kind tag (e.g. a
//!   breaking `HscDetector` payload change renames the kind).
//! * Readers reject versions they do not know ([`PersistError::UnsupportedVersion`])
//!   rather than guessing; there is no silent fallback.
//! * Snapshots are architecture-independent: explicit little-endian
//!   encoding, no `usize` in the wire format (widths are fixed `u16`/`u32`/
//!   `u64`).
//!
//! # Example
//!
//! ```
//! use phishinghook_persist::{from_envelope, to_envelope, PersistError, Reader, Restore,
//!                            Snapshot, Writer};
//!
//! struct Fitted { weights: Vec<f64> }
//!
//! impl Snapshot for Fitted {
//!     fn snapshot(&self, w: &mut Writer) { self.weights.snapshot(w); }
//! }
//! impl Restore for Fitted {
//!     fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
//!         Ok(Fitted { weights: Vec::restore(r)? })
//!     }
//! }
//!
//! let bytes = to_envelope("fitted", &Fitted { weights: vec![1.0, -0.5] });
//! let back: Fitted = from_envelope("fitted", &bytes).unwrap();
//! assert_eq!(back.weights, vec![1.0, -0.5]);
//! assert!(matches!(from_envelope::<Fitted>("other", &bytes),
//!                  Err(PersistError::WrongKind { .. })));
//! ```

use std::fmt;
use std::path::Path;

/// The 8-byte envelope magic.
pub const MAGIC: [u8; 8] = *b"PHISHSNP";

/// The envelope format version this build writes and accepts.
pub const FORMAT_VERSION: u16 = 1;

/// Typed failure modes of snapshot decoding.
///
/// Every variant corresponds to a distinct way a snapshot can be unusable;
/// callers can match on them to distinguish "file corrupt" from "produced by
/// a newer build" from "wrong artifact".
#[derive(Debug)]
pub enum PersistError {
    /// The leading bytes are not [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The envelope was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the envelope.
        found: u16,
        /// Version this build supports ([`FORMAT_VERSION`]).
        supported: u16,
    },
    /// The envelope carries a different artifact kind than requested.
    WrongKind {
        /// Kind the caller asked for.
        expected: String,
        /// Kind stored in the envelope.
        found: String,
    },
    /// The input ends before the declared structure does.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The CRC-32 trailer does not match the recomputed checksum.
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        stored: u32,
        /// Checksum recomputed over the received bytes.
        computed: u32,
    },
    /// Well-formed envelope, but bytes remain after the payload decoded.
    TrailingBytes {
        /// Number of unconsumed payload bytes.
        count: usize,
    },
    /// The payload decoded structurally but carries an impossible value
    /// (unknown enum tag, out-of-range index, non-UTF-8 string, …).
    Malformed(String),
    /// Filesystem error while reading or writing a snapshot file.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a PhishingHook snapshot (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            PersistError::WrongKind { expected, found } => {
                write!(f, "snapshot holds a `{found}` artifact, expected `{expected}`")
            }
            PersistError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} more byte(s), {available} available"
            ),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot corrupted: stored checksum {stored:#010x} != computed {computed:#010x}"
            ),
            PersistError::TrailingBytes { count } => {
                write!(f, "snapshot has {count} trailing byte(s) after the payload")
            }
            PersistError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            PersistError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serializes a fitted artifact into a [`Writer`].
///
/// Implementations must be deterministic (iterate hash maps in sorted order)
/// and must round-trip bit-identically through [`Restore`].
pub trait Snapshot {
    /// Appends this value's wire encoding to `w`.
    fn snapshot(&self, w: &mut Writer);
}

/// Reconstructs an artifact from a [`Reader`].
pub trait Restore: Sized {
    /// Decodes one value, consuming exactly the bytes [`Snapshot::snapshot`]
    /// wrote.
    ///
    /// # Errors
    /// Returns a [`PersistError`] on truncated or malformed input; never
    /// panics on untrusted bytes.
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

/// Append-only little-endian byte sink for [`Snapshot`] implementations.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the wire format has no `usize`).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` as its IEEE 754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE 754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor over a snapshot payload for [`Restore`] implementations.
///
/// All `take_*` methods fail with [`PersistError::Truncated`] instead of
/// panicking when the buffer runs out.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] when fewer than `n` bytes remain.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take_raw(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, PersistError> {
        let b = self.take_raw(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take_raw(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take_raw(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    /// [`PersistError::Malformed`] when the value does not fit in `usize`.
    pub fn take_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.take_u64()?;
        usize::try_from(v)
            .map_err(|_| PersistError::Malformed(format!("length {v} overflows usize")))
    }

    /// Reads a `u64` length prefix, validating it against the bytes left.
    ///
    /// `bytes_per_item` lets collection decoders reject absurd lengths
    /// *before* allocating: a corrupted prefix claiming 2⁶⁰ elements fails
    /// here as [`PersistError::Truncated`] rather than aborting on OOM.
    pub fn take_len(&mut self, bytes_per_item: usize) -> Result<usize, PersistError> {
        let len = self.take_usize()?;
        let needed = len.saturating_mul(bytes_per_item.max(1));
        if needed > self.remaining() {
            return Err(PersistError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads an `f32` from its bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0 and 1.
    pub fn take_bool(&mut self) -> Result<bool, PersistError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Malformed(format!(
                "invalid bool byte {b:#04x}"
            ))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let len = self.take_len(1)?;
        self.take_raw(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, PersistError> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|e| PersistError::Malformed(format!("invalid UTF-8 string: {e}")))
    }
}

// --- Snapshot/Restore for primitives and std containers -------------------

macro_rules! primitive_persist {
    ($($ty:ty => $put:ident, $take:ident;)*) => {$(
        impl Snapshot for $ty {
            fn snapshot(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }
        impl Restore for $ty {
            fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
                r.$take()
            }
        }
    )*};
}

primitive_persist! {
    u8 => put_u8, take_u8;
    u16 => put_u16, take_u16;
    u32 => put_u32, take_u32;
    u64 => put_u64, take_u64;
    usize => put_usize, take_usize;
    f32 => put_f32, take_f32;
    f64 => put_f64, take_f64;
    bool => put_bool, take_bool;
}

impl Snapshot for String {
    fn snapshot(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Restore for String {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(r.take_str()?.to_owned())
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snapshot(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for item in self {
            item.snapshot(w);
        }
    }
}

impl<T: Restore> Restore for Vec<T> {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        // Every element costs ≥ 1 byte, so the length check bounds the
        // allocation by the remaining payload size.
        let len = r.take_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn snapshot(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snapshot(w);
            }
        }
    }
}

impl<T: Restore> Restore for Option<T> {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            b => Err(PersistError::Malformed(format!(
                "invalid Option tag {b:#04x}"
            ))),
        }
    }
}

// --- Envelope --------------------------------------------------------------

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), bitwise implementation.
/// Snapshots are megabytes at most, so a lookup table is not worth the code.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Wraps an artifact into a self-describing envelope (see the crate docs for
/// the byte layout). `kind` tags the artifact type, e.g. `"hsc-detector"`.
pub fn to_envelope(kind: &str, artifact: &impl Snapshot) -> Vec<u8> {
    let mut w = Writer::new();
    artifact.snapshot(&mut w);
    let payload = w.into_bytes();

    let mut out = Vec::with_capacity(MAGIC.len() + 16 + kind.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let kind_len = u16::try_from(kind.len()).expect("kind tag fits u16");
    out.extend_from_slice(&kind_len.to_le_bytes());
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates an envelope's framing (magic, version, lengths) and returns
/// the artifact kind it declares, without decoding the payload and
/// **without verifying the checksum** — peeking stays O(header) so kind
/// dispatch does not double the cost of the full decode that follows
/// (which does verify the CRC).
///
/// This is the dispatch point for callers that accept more than one artifact
/// kind behind a single front door (e.g. a scanner that serves both
/// single-detector and ensemble snapshots): peek the kind, then decode with
/// the matching [`Restore`] type.
///
/// # Errors
/// Any framing-level [`PersistError`] ([`PersistError::BadMagic`],
/// [`PersistError::UnsupportedVersion`], [`PersistError::Truncated`],
/// [`PersistError::TrailingBytes`]).
pub fn envelope_kind(bytes: &[u8]) -> Result<&str, PersistError> {
    parse_envelope(bytes, false).map(|(kind, _)| kind)
}

/// Validates an envelope (magic, version, checksum, kind) and returns its
/// payload slice without decoding it.
///
/// # Errors
/// Any [`PersistError`] variant except `TrailingBytes`/`Malformed`, which
/// belong to payload decoding.
pub fn open_envelope<'a>(kind: &str, bytes: &'a [u8]) -> Result<&'a [u8], PersistError> {
    let (found_kind, payload) = parse_envelope(bytes, true)?;
    if found_kind != kind {
        return Err(PersistError::WrongKind {
            expected: kind.to_owned(),
            found: found_kind.to_owned(),
        });
    }
    Ok(payload)
}

/// Shared envelope walk: checks magic, version and framing (plus the CRC
/// trailer when `check_crc`), then returns `(kind, payload)` borrowed from
/// `bytes`.
fn parse_envelope(bytes: &[u8], check_crc: bool) -> Result<(&str, &[u8]), PersistError> {
    let mut r = Reader::new(bytes);
    if r.take_raw(MAGIC.len())? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.take_u16()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind_len = usize::from(r.take_u16()?);
    let found_kind = std::str::from_utf8(r.take_raw(kind_len)?)
        .map_err(|e| PersistError::Malformed(format!("invalid kind tag: {e}")))?;
    let payload_len = r.take_usize()?;
    // The payload plus the 4-byte CRC trailer must close the buffer exactly.
    // Saturating add: a crafted length near usize::MAX must report
    // truncation, not overflow.
    if r.remaining() < payload_len.saturating_add(4) {
        return Err(PersistError::Truncated {
            needed: payload_len.saturating_add(4),
            available: r.remaining(),
        });
    }
    let payload = r.take_raw(payload_len)?;
    let stored_crc = r.take_u32()?;
    if r.remaining() != 0 {
        return Err(PersistError::TrailingBytes {
            count: r.remaining(),
        });
    }
    if check_crc {
        let computed = crc32(&bytes[..bytes.len() - 4]);
        if stored_crc != computed {
            return Err(PersistError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }
    }
    Ok((found_kind, payload))
}

/// Decodes a `T` from an envelope, enforcing that the payload is consumed
/// exactly.
///
/// # Errors
/// Every [`PersistError`] variant is reachable: envelope problems from
/// [`open_envelope`], then `Malformed`/`Truncated`/`TrailingBytes` from the
/// payload decode.
pub fn from_envelope<T: Restore>(kind: &str, bytes: &[u8]) -> Result<T, PersistError> {
    let payload = open_envelope(kind, bytes)?;
    let mut r = Reader::new(payload);
    let value = T::restore(&mut r)?;
    if r.remaining() != 0 {
        return Err(PersistError::TrailingBytes {
            count: r.remaining(),
        });
    }
    Ok(value)
}

/// The temp-file sibling `write_bytes_atomic` stages into before the
/// rename: `<name>.<pid>.tmp` next to the destination, so the rename
/// never crosses a filesystem boundary and concurrent processes writing
/// the same path cannot clobber each other's staging file.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(std::ffi::OsStr::to_os_string)
        .unwrap_or_else(|| "snapshot".into());
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Writes `bytes` to `path` crash-safely: stage into a temp sibling,
/// `fsync`, then atomically rename over the destination.
///
/// A crash at any instant leaves either the old complete file or the new
/// complete file — never a torn mix of the two. A leftover `*.tmp`
/// sibling from an interrupted write is inert: loads read only the
/// destination path. After the rename the parent directory is fsynced
/// (best-effort) so the new directory entry is durable too.
///
/// # Errors
/// Any I/O error from the staging write, sync, or rename; on a failed
/// rename the staging file is removed before the error is returned.
pub fn write_bytes_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Directory fsync is platform-dependent; failing to open or sync
        // the directory must not fail an already-complete write.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Saves an artifact envelope to a file via [`write_bytes_atomic`]: a
/// crash mid-save cannot leave a torn snapshot behind.
///
/// # Errors
/// [`PersistError::Io`] on filesystem failure.
pub fn save_file(
    path: impl AsRef<Path>,
    kind: &str,
    artifact: &impl Snapshot,
) -> Result<(), PersistError> {
    write_bytes_atomic(path, &to_envelope(kind, artifact))?;
    Ok(())
}

/// Loads an artifact of the given kind from a snapshot file.
///
/// # Errors
/// [`PersistError::Io`] on filesystem failure, otherwise any decode error
/// from [`from_envelope`].
pub fn load_file<T: Restore>(path: impl AsRef<Path>, kind: &str) -> Result<T, PersistError> {
    let bytes = std::fs::read(path)?;
    from_envelope(kind, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Toy {
        weights: Vec<f64>,
        bias: f64,
        name: String,
        threads: Option<u64>,
    }

    impl Snapshot for Toy {
        fn snapshot(&self, w: &mut Writer) {
            self.weights.snapshot(w);
            self.bias.snapshot(w);
            self.name.snapshot(w);
            self.threads.snapshot(w);
        }
    }

    impl Restore for Toy {
        fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
            Ok(Toy {
                weights: Vec::restore(r)?,
                bias: f64::restore(r)?,
                name: String::restore(r)?,
                threads: Option::restore(r)?,
            })
        }
    }

    fn toy() -> Toy {
        Toy {
            weights: vec![0.25, -1.5, f64::MIN_POSITIVE, 1e308],
            bias: -0.125,
            name: "toy".to_owned(),
            threads: Some(4),
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let bytes = to_envelope("toy", &toy());
        let back: Toy = from_envelope("toy", &bytes).expect("round-trips");
        assert_eq!(back, toy());
    }

    #[test]
    fn snapshots_are_deterministic() {
        assert_eq!(to_envelope("toy", &toy()), to_envelope("toy", &toy()));
    }

    #[test]
    fn nan_and_signed_zero_round_trip_bitwise() {
        let t = Toy {
            weights: vec![f64::NAN, -0.0, f64::INFINITY, f64::NEG_INFINITY],
            ..toy()
        };
        let back: Toy = from_envelope("toy", &to_envelope("toy", &t)).expect("round-trips");
        for (a, b) in back.weights.iter().zip(&t.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_envelope("toy", &toy());
        bytes[0] ^= 0xFF;
        assert!(matches!(
            from_envelope::<Toy>("toy", &bytes),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = to_envelope("toy", &toy());
        bytes[8] = 99; // version u16 LE lives at offset 8
        bytes[9] = 0;
        let err = from_envelope::<Toy>("toy", &bytes).unwrap_err();
        match err {
            PersistError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_is_rejected_by_checksum() {
        let bytes = to_envelope("toy", &toy());
        // Flip one payload byte (after the header, before the CRC trailer).
        for i in (MAGIC.len() + 4)..bytes.len() - 4 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            let err = from_envelope::<Toy>("toy", &corrupt).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::ChecksumMismatch { .. }
                        | PersistError::Truncated { .. }
                        | PersistError::Malformed(_)
                ),
                "byte {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = to_envelope("toy", &toy());
        for cut in 0..bytes.len() {
            let err = from_envelope::<Toy>("toy", &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated { .. } | PersistError::BadMagic),
                "cut {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_envelope("toy", &toy());
        bytes.push(0xAB);
        assert!(matches!(
            from_envelope::<Toy>("toy", &bytes),
            Err(PersistError::TrailingBytes { .. }) | Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let bytes = to_envelope("toy", &toy());
        match from_envelope::<Toy>("forest", &bytes).unwrap_err() {
            PersistError::WrongKind { expected, found } => {
                assert_eq!(expected, "forest");
                assert_eq!(found, "toy");
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_fails_before_allocating() {
        // A payload whose Vec length prefix claims u64::MAX elements must
        // fail with Truncated, not attempt the allocation. Build it by hand
        // with a valid envelope around a bogus payload.
        struct Huge;
        impl Snapshot for Huge {
            fn snapshot(&self, w: &mut Writer) {
                w.put_u64(u64::MAX);
            }
        }
        let bytes = to_envelope("toy", &Huge);
        assert!(matches!(
            from_envelope::<Toy>("toy", &bytes),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn huge_declared_payload_length_is_rejected_not_overflowed() {
        // A hand-crafted header declaring a payload of u64::MAX bytes must
        // fail as Truncated — not overflow `payload_len + 4` (a debug-build
        // panic before the saturating check).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&3u16.to_le_bytes());
        bytes.extend_from_slice(b"toy");
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_envelope::<Toy>("toy", &bytes),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("phishinghook-persist-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("toy.snap");
        save_file(&path, "toy", &toy()).expect("saves");
        let back: Toy = load_file(&path, "toy").expect("loads");
        assert_eq!(back, toy());
        assert!(matches!(
            load_file::<Toy>(dir.join("missing.snap"), "toy"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn atomic_save_leaves_no_staging_file_behind() {
        let dir = std::env::temp_dir().join("phishinghook-persist-atomic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("toy.snap");
        save_file(&path, "toy", &toy()).expect("saves");
        save_file(&path, "toy", &toy()).expect("overwrites in place");
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("readable")
            .map(|e| e.expect("entry").file_name())
            .collect();
        // The staging temp was renamed away — only the snapshot remains.
        assert_eq!(entries, vec![std::ffi::OsString::from("toy.snap")]);
        let back: Toy = load_file(&path, "toy").expect("loads");
        assert_eq!(back, toy());
    }

    #[test]
    fn torn_staging_write_does_not_corrupt_the_snapshot() {
        // Simulate a crash mid-save: a partial staging file sits next to a
        // complete snapshot. Loading must see only the complete file, and
        // the next save must replace the snapshot atomically regardless.
        let dir = std::env::temp_dir().join("phishinghook-persist-torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("toy.snap");
        save_file(&path, "toy", &toy()).expect("saves");

        let torn = to_envelope("toy", &toy());
        let stale_tmp = dir.join(format!("toy.snap.{}.tmp", std::process::id()));
        std::fs::write(&stale_tmp, &torn[..torn.len() / 2]).expect("torn write");

        let back: Toy = load_file(&path, "toy").expect("recovers");
        assert_eq!(back, toy());
        // And the stale staging file is simply overwritten by the next
        // save's staging pass, then renamed away.
        save_file(&path, "toy", &toy()).expect("saves again");
        assert!(!stale_tmp.exists());
        // A torn *snapshot* itself (the pre-atomic failure mode) is the
        // thing the rename prevents; decoding one is a typed error, not UB.
        std::fs::write(&path, &torn[..torn.len() / 2]).expect("simulate old format");
        assert!(load_file::<Toy>(&path, "toy").is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding untrusted input must always return a typed error (or,
            // vanishingly unlikely, succeed) — never panic.
            let _ = from_envelope::<Toy>("toy", &bytes);
        }

        #[test]
        fn f64_vectors_round_trip(values in proptest::collection::vec(any::<u64>(), 0..64)) {
            let t = Toy {
                weights: values.iter().map(|&b| f64::from_bits(b)).collect(),
                ..toy()
            };
            let back: Toy = from_envelope("toy", &to_envelope("toy", &t)).expect("round-trips");
            let a: Vec<u64> = back.weights.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = t.weights.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }
}
