//! Criterion benches for model training/inference — the micro-scale version
//! of the paper's Fig. 7 cost axis (Random Forest vs the deep models).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_models::{
    Detector, HscDetector, LanguageConfig, ScsGuardDetector, VisionConfig, VisionDetector,
};

fn dataset(n: usize) -> (Vec<Vec<u8>>, Vec<usize>) {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: n,
        seed: 0x0DE1,
        ..Default::default()
    });
    (
        corpus.records.iter().map(|r| r.bytecode.clone()).collect(),
        corpus.records.iter().map(|r| r.label.as_index()).collect(),
    )
}

fn bench_training(c: &mut Criterion) {
    let (codes, labels) = dataset(128);
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let mut group = c.benchmark_group("train-128");
    group.sample_size(10);

    group.bench_function("random-forest", |b| {
        b.iter_batched(
            || HscDetector::random_forest(1),
            |mut det| det.fit(&refs, &labels),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("eca-efficientnet", |b| {
        b.iter_batched(
            || {
                VisionDetector::eca_efficientnet(VisionConfig {
                    epochs: 1,
                    ..VisionConfig::default()
                })
            },
            |mut det| det.fit(&refs, &labels),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("scsguard", |b| {
        b.iter_batched(
            || {
                ScsGuardDetector::new(LanguageConfig {
                    epochs: 1,
                    max_len: 48,
                    ..LanguageConfig::default()
                })
            },
            |mut det| det.fit(&refs, &labels),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let (codes, labels) = dataset(128);
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let mut rf = HscDetector::random_forest(2);
    rf.fit(&refs, &labels);
    let mut scs = ScsGuardDetector::new(LanguageConfig {
        epochs: 1,
        max_len: 48,
        ..LanguageConfig::default()
    });
    scs.fit(&refs, &labels);

    let mut group = c.benchmark_group("infer-128");
    group.sample_size(10);
    group.bench_function("random-forest", |b| {
        b.iter(|| rf.predict(std::hint::black_box(&refs)))
    });
    group.bench_function("scsguard", |b| {
        b.iter(|| scs.predict(std::hint::black_box(&refs)))
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference);
criterion_main!(benches);
