//! Criterion benches for the streaming/batch spine introduced by the
//! zero-allocation pipeline work: stream-vs-collect disassembly, fused
//! feature extraction vs. the seed two-phase path, and batch forest
//! inference vs. the seed per-row walk.
//!
//! The `bench` binary (`cargo run --release -p phishinghook-bench --bin
//! bench`) measures the same pairs and emits `BENCH_pipeline.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use phishinghook_bench::seed_paths;
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_evm::disasm::disasm_iter;
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, RandomForest};

fn codes() -> Vec<Vec<u8>> {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 64,
        seed: 0x51BE,
        ..Default::default()
    });
    corpus.records.into_iter().map(|r| r.bytecode).collect()
}

fn bench_disasm(c: &mut Criterion) {
    let codes = codes();
    let total: usize = codes.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("pipeline/disasm");
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("collect", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for code in &codes {
                n += seed_paths::disassemble(std::hint::black_box(code)).len();
            }
            n
        })
    });
    group.bench_function("stream", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for code in &codes {
                n += disasm_iter(std::hint::black_box(code)).count();
            }
            n
        })
    });
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let codes = codes();
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let extractor = HistogramExtractor::fit(&refs);
    let mut group = c.benchmark_group("pipeline/extract");
    group.throughput(Throughput::Elements(refs.len() as u64));
    group.bench_function("seed-two-phase", |b| {
        b.iter(|| seed_paths::histogram_transform(&extractor, std::hint::black_box(&refs)))
    });
    group.bench_function("fused-stream", |b| {
        b.iter(|| extractor.transform(std::hint::black_box(&refs)))
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let codes = codes();
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let extractor = HistogramExtractor::fit(&refs);
    let x = extractor.transform(&refs);
    let y: Vec<usize> = (0..refs.len()).map(|i| i % 2).collect();
    let mut forest = RandomForest::new(ForestConfig {
        n_trees: 100,
        max_depth: 20,
        seed: 7,
        ..ForestConfig::default()
    });
    forest.fit(&x, &y);
    let mut group = c.benchmark_group("pipeline/forest-inference");
    group.throughput(Throughput::Elements(x.rows() as u64));
    group.bench_function("seed-per-row", |b| {
        b.iter(|| seed_paths::forest_predict_proba(&forest, std::hint::black_box(&x)))
    });
    group.bench_function("batch", |b| {
        b.iter(|| forest.predict_proba_batch(std::hint::black_box(&x)))
    });
    group.finish();
}

criterion_group!(benches, bench_disasm, bench_extraction, bench_inference);
criterion_main!(benches);
