//! Criterion benches for the EVM substrate: hashing, disassembly (the BDM's
//! per-contract cost), assembly and interpretation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_evm::disasm::disassemble;
use phishinghook_evm::interp::Interpreter;
use phishinghook_evm::keccak::keccak256;

fn corpus_codes() -> Vec<Vec<u8>> {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 64,
        seed: 0xBE7C,
        ..Default::default()
    });
    corpus.records.into_iter().map(|r| r.bytecode).collect()
}

fn bench_keccak(c: &mut Criterion) {
    let data = vec![0xABu8; 1024];
    let mut group = c.benchmark_group("keccak256");
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("1KiB", |b| {
        b.iter(|| keccak256(std::hint::black_box(&data)))
    });
    group.finish();
}

fn bench_disassemble(c: &mut Criterion) {
    let codes = corpus_codes();
    let total: usize = codes.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("disassemble");
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("corpus-64", |b| {
        b.iter(|| {
            let mut instructions = 0usize;
            for code in &codes {
                instructions += disassemble(std::hint::black_box(code)).len();
            }
            instructions
        })
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let codes = corpus_codes();
    c.bench_function("interpret/fallback-call", |b| {
        b.iter_batched(
            Interpreter::new,
            |mut interp| {
                for code in codes.iter().take(16) {
                    std::hint::black_box(interp.run_call(code, &[]));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_keccak, bench_disassemble, bench_interpreter);
criterion_main!(benches);
