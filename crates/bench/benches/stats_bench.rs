//! Criterion benches for the post hoc statistics: TreeSHAP (the Fig. 9
//! bottleneck) and the hypothesis tests.

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, Matrix, RandomForest, SplitMix};
use phishinghook_stats::{forest_shap, kruskal_wallis, shapiro_wilk};

fn bench_shap(c: &mut Criterion) {
    let mut rng = SplitMix::new(3);
    let rows: Vec<Vec<f64>> = (0..400)
        .map(|_| (0..30).map(|_| rng.normal()).collect())
        .collect();
    let y: Vec<usize> = rows
        .iter()
        .map(|r| usize::from(r[0] + r[1] > 0.0))
        .collect();
    let x = Matrix::from_rows(&rows);
    let mut forest = RandomForest::new(ForestConfig {
        n_trees: 20,
        max_depth: 10,
        ..ForestConfig::default()
    });
    forest.fit(&x, &y);
    let sample = x.row(0).to_vec();
    c.bench_function("stats/forest-shap-1-sample", |b| {
        b.iter(|| forest_shap(&forest, std::hint::black_box(&sample)))
    });
}

fn bench_tests(c: &mut Criterion) {
    let mut rng = SplitMix::new(4);
    let groups: Vec<Vec<f64>> = (0..13)
        .map(|g| (0..30).map(|_| rng.normal() + g as f64 * 0.05).collect())
        .collect();
    c.bench_function("stats/kruskal-wallis-13x30", |b| {
        b.iter(|| kruskal_wallis(std::hint::black_box(&groups)))
    });
    let sample: Vec<f64> = (0..30).map(|_| rng.normal()).collect();
    c.bench_function("stats/shapiro-wilk-30", |b| {
        b.iter(|| shapiro_wilk(std::hint::black_box(&sample)))
    });
}

criterion_group!(benches, bench_shap, bench_tests);
criterion_main!(benches);
