//! Criterion benches for the four feature-extraction paths (per-contract
//! preprocessing cost of each model family).

use criterion::{criterion_group, criterion_main, Criterion};
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_features::{
    freq_image, r2d2_image, tokenize, BigramVocab, FreqLookup, HistogramExtractor, Tokenization,
};

fn codes() -> Vec<Vec<u8>> {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 64,
        seed: 0xFEA7,
        ..Default::default()
    });
    corpus.records.into_iter().map(|r| r.bytecode).collect()
}

fn bench_features(c: &mut Criterion) {
    let codes = codes();
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();

    let histogram = HistogramExtractor::fit(&refs);
    c.bench_function("features/histogram-64", |b| {
        b.iter(|| histogram.transform(std::hint::black_box(&refs)))
    });

    c.bench_function("features/r2d2-image", |b| {
        b.iter(|| {
            for code in &codes {
                std::hint::black_box(r2d2_image(code, 16));
            }
        })
    });

    let lookup = FreqLookup::fit(&refs);
    c.bench_function("features/freq-image", |b| {
        b.iter(|| {
            for code in &codes {
                std::hint::black_box(freq_image(code, &lookup, 16));
            }
        })
    });

    let vocab = BigramVocab::fit(&refs, 512, 96);
    c.bench_function("features/scsguard-ngram", |b| {
        b.iter(|| {
            for code in &codes {
                std::hint::black_box(vocab.encode(code));
            }
        })
    });

    c.bench_function("features/tokenize-beta", |b| {
        b.iter(|| {
            for code in &codes {
                std::hint::black_box(tokenize(
                    code,
                    Tokenization::SlidingWindow {
                        window: 96,
                        stride: 64,
                    },
                ));
            }
        })
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
