//! `load` — the standalone load-harness binary: drives an in-process
//! sharded scheduler with the firehose generators from
//! [`phishinghook_bench::load`] and prints one JSON report line.
//!
//! ```text
//! load [--quick] [--open-loop|--closed-loop] [--clients N]
//!      [--generators N] [--requests N] [--rate R|max] [--shards N]
//!      [--templates N] [--seed N] [--warm]
//!      [--assert-p99-ms MS] [--assert-clean]
//! ```
//!
//! The `--assert-*` flags make the binary CI-shaped: `--assert-p99-ms`
//! fails the process when the measured verdict p99 exceeds the bound,
//! and `--assert-clean` fails it when any response was an untyped error,
//! a timeout, or a worker-panic internal.

use phishinghook_bench::load::{run_load, warm_caches, LoadConfig};
use phishinghook_serve::{fixture, Scheduler, SchedulerOptions};
use std::process::ExitCode;

struct Args {
    cfg: LoadConfig,
    shards: usize,
    cache_bytes: Option<usize>,
    warm: bool,
    assert_p99_ms: Option<f64>,
    assert_clean: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: LoadConfig {
            clients: 512,
            generators: 8,
            requests_per_client: 64,
            ..LoadConfig::default()
        },
        shards: 2,
        cache_bytes: None,
        warm: false,
        assert_p99_ms: None,
        assert_clean: false,
    };
    let mut it = std::env::args().skip(1);
    let numeric = |v: Option<String>, name: &str| -> f64 {
        v.and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} needs a numeric value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                args.cfg.clients = 512;
                args.cfg.requests_per_client = 8;
            }
            "--open-loop" => args.cfg.open_loop = true,
            "--closed-loop" => args.cfg.open_loop = false,
            "--clients" => args.cfg.clients = numeric(it.next(), "--clients") as usize,
            "--generators" => args.cfg.generators = numeric(it.next(), "--generators") as usize,
            "--requests" => {
                args.cfg.requests_per_client = numeric(it.next(), "--requests") as usize;
            }
            "--rate" => {
                let v = it.next().expect("--rate needs a value");
                args.cfg.rate = if v == "max" {
                    f64::INFINITY
                } else {
                    v.parse().expect("--rate needs a number or 'max'")
                };
            }
            "--shards" => args.shards = numeric(it.next(), "--shards") as usize,
            "--templates" => args.cfg.templates = numeric(it.next(), "--templates") as usize,
            "--seed" => args.cfg.seed = numeric(it.next(), "--seed") as u64,
            "--assert-p99-ms" => {
                args.assert_p99_ms = Some(numeric(it.next(), "--assert-p99-ms"));
            }
            "--cache-bytes" => {
                args.cache_bytes = Some(numeric(it.next(), "--cache-bytes") as usize);
            }
            "--warm" => args.warm = true,
            "--assert-clean" => args.assert_clean = true,
            other => panic!("unknown flag: {other}"),
        }
    }
    args
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let defaults = SchedulerOptions::default();
    let scheduler = Scheduler::new(
        fixture::rf_scanner(),
        &SchedulerOptions {
            shards: args.shards,
            cache_bytes: args.cache_bytes.unwrap_or(defaults.cache_bytes),
            ..defaults
        },
    );
    if args.warm {
        warm_caches(&scheduler, &args.cfg);
    }
    let report = run_load(&scheduler, &args.cfg);
    scheduler.shutdown();

    println!(
        concat!(
            "{{\"schema\":\"phishinghook-load/v1\",",
            "\"mode\":\"{mode}\",\"clients\":{clients},\"generators\":{generators},",
            "\"requests_per_client\":{requests},\"shards\":{shards},\"rate\":{rate},",
            "\"sent\":{sent},\"verdicts\":{verdicts},\"overloads\":{overloads},",
            "\"errors\":{errors},\"timeouts\":{timeouts},\"internals\":{internals},",
            "\"secs\":{secs},\"throughput_rps\":{throughput},",
            "\"p50_ms\":{p50},\"p90_ms\":{p90},\"p99_ms\":{p99},\"p999_ms\":{p999}}}"
        ),
        mode = if args.cfg.open_loop { "open" } else { "closed" },
        clients = args.cfg.clients,
        generators = args.cfg.generators,
        requests = args.cfg.requests_per_client,
        shards = args.shards,
        rate = json_f(args.cfg.rate),
        sent = report.sent,
        verdicts = report.verdicts,
        overloads = report.overloads,
        errors = report.errors,
        timeouts = report.timeouts,
        internals = report.internals,
        secs = json_f(report.secs),
        throughput = json_f(report.throughput),
        p50 = json_f(report.p50_ms),
        p90 = json_f(report.p90_ms),
        p99 = json_f(report.p99_ms),
        p999 = json_f(report.p999_ms),
    );

    let mut failed = false;
    if report.sent
        != report.verdicts + report.overloads + report.errors + report.timeouts + report.internals
    {
        eprintln!(
            "FAIL: {} submits but {} responses — a request was dropped",
            report.sent,
            report.verdicts + report.overloads + report.errors + report.timeouts + report.internals
        );
        failed = true;
    }
    if args.assert_clean && report.errors + report.timeouts + report.internals > 0 {
        eprintln!(
            "FAIL: untyped-failure budget is zero (errors {}, timeouts {}, internals {})",
            report.errors, report.timeouts, report.internals
        );
        failed = true;
    }
    if let Some(bound) = args.assert_p99_ms {
        if report.p99_ms > bound {
            eprintln!(
                "FAIL: p99 {:.3}ms exceeds bound {bound:.3}ms",
                report.p99_ms
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
