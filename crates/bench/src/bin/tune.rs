//! Hyperparameter search demo (the paper's §IV-C, Optuna substitute):
//! grid search over the Random Forest's space with a cross-validated
//! accuracy objective.

use phishinghook_bench::banner;
use phishinghook_core::cv::stratified_kfold;
use phishinghook_core::experiments::ExperimentScale;
use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_core::tuning::{grid_search, SearchSpace};
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, RandomForest};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("hyperparameter search (grid, CV objective)", &scale);

    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();
    let folds = stratified_kfold(&labels, scale.folds.max(3), scale.seed);

    // Precompute histograms per fold (feature extraction is fold-local).
    let space = SearchSpace::new()
        .with("n_trees", &[25.0, 50.0, 100.0])
        .with("max_depth", &[8.0, 14.0, 20.0]);
    println!(
        "search space: {} grid points × {} folds\n",
        space.grid_size(),
        folds.len()
    );

    let result = grid_search(&space, |params| {
        let mut accs = Vec::new();
        for fold in &folds {
            let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
            let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
            let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
            let test_y: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
            let extractor = HistogramExtractor::fit(&train_x);
            let mut forest = RandomForest::new(ForestConfig {
                n_trees: params["n_trees"] as usize,
                max_depth: params["max_depth"] as usize,
                seed: scale.seed,
                ..ForestConfig::default()
            });
            forest.fit(&extractor.transform(&train_x), &train_y);
            let preds = forest.predict(&extractor.transform(&test_x));
            accs.push(BinaryMetrics::from_predictions(&preds, &test_y).accuracy);
        }
        accs.iter().sum::<f64>() / accs.len() as f64
    });

    for (params, score) in &result.trials {
        println!(
            "  n_trees={:<4} max_depth={:<3} → CV accuracy {:.2}%",
            params["n_trees"],
            params["max_depth"],
            score * 100.0
        );
    }
    println!(
        "\nbest: n_trees={} max_depth={} at {:.2}%",
        result.best_params["n_trees"],
        result.best_params["max_depth"],
        result.best_score * 100.0
    );
}
