//! Table III: Kruskal-Wallis test per metric with Holm-Bonferroni
//! correction, over the Table II trials (13 models after the paper's
//! exclusions).
//!
//! Reuses `results/table2_trials.csv` when present (run `table2` first);
//! otherwise runs a fresh evaluation at the requested scale.

use phishinghook_bench::{banner, load_cached_trials};
use phishinghook_core::experiments::{main_eval, posthoc, ExperimentScale};
use phishinghook_core::report::{render_table, save_csv, sci};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Table III (Kruskal-Wallis per metric)", &scale);

    let trials = match load_cached_trials() {
        Some(t) => {
            println!(
                "using cached trials from results/table2_trials.csv ({} rows)\n",
                t.len()
            );
            t
        }
        None => {
            println!("no cached trials; running the main evaluation first\n");
            main_eval::run(&scale).trials
        }
    };

    let analysis = posthoc::run(&trials);
    println!(
        "normality: Shapiro-Wilk rejected {}/{} model-metric pairs (paper: 20/52)\n",
        analysis.normality_violations, analysis.normality_tests
    );

    let rows: Vec<Vec<String>> = analysis
        .kruskal
        .iter()
        .map(|r| {
            vec![
                r.metric.to_owned(),
                format!("{:.2}", r.h),
                sci(r.p),
                sci(r.p_adjusted),
            ]
        })
        .collect();
    println!("{}", render_table(&["Metric", "H", "p", "p_adj"], &rows));
    println!("expected shape: all four metrics significant (paper: p_adj ≤ 2.9e-69 .. 1.1e-61)");

    let _ = save_csv(
        "table3",
        &["metric", "h", "p", "p_adj"],
        &analysis
            .kruskal
            .iter()
            .map(|r| {
                vec![
                    r.metric.to_owned(),
                    r.h.to_string(),
                    r.p.to_string(),
                    r.p_adjusted.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
