//! Fig. 6: critical difference diagram of the scalability experiment
//! (Friedman test → pairwise Wilcoxon with Holm correction → rank line with
//! connected cliques), plus Cliff's δ effect sizes.

use phishinghook_bench::banner;
use phishinghook_core::experiments::{scalability, ExperimentScale};
use phishinghook_core::report::{render_table, save_csv, sci};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 6 (critical difference diagram)", &scale);

    let result = scalability::run(&scale);
    let models = scalability::MODELS;

    for (metric, cdd) in &result.cdd {
        println!("{metric}: Friedman p = {}", sci(cdd.friedman_p));
        let mut ranked: Vec<(usize, f64)> = cdd.mean_ranks.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ranks"));
        let line: Vec<String> = ranked
            .iter()
            .map(|(i, r)| format!("{} ({r:.2})", models[*i]))
            .collect();
        println!("  rank line (left = worst): {}", line.join("  <  "));
        for clique in &cdd.cliques {
            let names: Vec<&str> = clique.iter().map(|&i| models[i]).collect();
            println!(
                "  connected (no significant difference): {}",
                names.join(" ═ ")
            );
        }
        for ((a, b), p) in &cdd.pairwise_p {
            println!(
                "  Wilcoxon {} vs {}: p_adj = {}",
                models[*a],
                models[*b],
                sci(*p)
            );
        }
        println!();
    }

    println!("Cliff's δ effect sizes (paper: SCSGuard vs ECA+EfficientNet = -0.778 Acc/F1,");
    println!("-0.333 Prec, -1.0 Rec — large effects that the tiny sample cannot certify):");
    let rows: Vec<Vec<String>> = result
        .effect_sizes
        .iter()
        .map(|e| {
            vec![
                e.metric.to_owned(),
                e.model_a.to_owned(),
                e.model_b.to_owned(),
                format!("{:.3}", e.delta),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Metric", "A", "B", "Cliff's δ"], &rows)
    );
    println!("expected shape: Random Forest holds the best (rightmost) rank for all metrics;");
    println!(
        "pairwise Wilcoxon p-values stay ≥ 0.25 (n = 3 splits is too small for significance)."
    );

    let _ = save_csv(
        "fig6",
        &["metric", "model_a", "model_b", "cliffs_delta"],
        &result
            .effect_sizes
            .iter()
            .map(|e| {
                vec![
                    e.metric.to_owned(),
                    e.model_a.to_owned(),
                    e.model_b.to_owned(),
                    e.delta.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
