//! The perf-trajectory benchmark: measures the disasm→features→inference
//! spine against the seed reference paths and emits `BENCH_pipeline.json`,
//! the repository's first committed performance datapoint.
//!
//! ```text
//! cargo run --release -p phishinghook-bench --bin bench             # full
//! cargo run --release -p phishinghook-bench --bin bench -- --quick  # CI smoke
//! cargo run --release -p phishinghook-bench --bin bench -- --contracts 512 --out results/BENCH_pipeline.json
//! ```
//!
//! JSON schema (`phishinghook-bench-pipeline/v1`): see the README's
//! "Performance" section. All times are best-of-`reps` wall-clock seconds
//! for one full pass over the corpus; throughputs derive from the same
//! pass.

use phishinghook_bench::seed_paths;
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_evm::disasm::disasm_iter;
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, RandomForest};
use phishinghook_models::{Detector, DetectorRegistry, Scanner};
use std::time::Instant;

struct Args {
    quick: bool,
    contracts: usize,
    out: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let mut args = Args {
        quick,
        contracts: if quick { 96 } else { 512 },
        out: "BENCH_pipeline.json".to_owned(),
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--contracts" => {
                if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                    args.contracts = v;
                }
            }
            "--out" => {
                if let Some(v) = iter.next() {
                    args.out = v.clone();
                }
            }
            _ => {}
        }
    }
    args
}

/// Best-of-`reps` wall-clock seconds for one call of `f`.
fn measure<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let args = parse_args();
    let reps = if args.quick { 2 } else { 5 };

    println!("PhishingHook pipeline benchmark");
    println!(
        "corpus: {} contracts, {} rep(s) per measurement{}",
        args.contracts,
        reps,
        if args.quick { " (--quick)" } else { "" }
    );

    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: args.contracts,
        seed: 0xBE9C,
        ..Default::default()
    });
    let codes: Vec<Vec<u8>> = corpus.records.into_iter().map(|r| r.bytecode).collect();
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let total_bytes: usize = codes.iter().map(Vec::len).sum();
    let mb = total_bytes as f64 / (1024.0 * 1024.0);

    // --- Disassembly: seed collecting path vs. zero-allocation stream. ---
    let collect_secs = measure(reps, || {
        let mut n = 0usize;
        for code in &refs {
            n += seed_paths::disassemble(code).len();
        }
        n
    });
    let stream_secs = measure(reps, || {
        let mut n = 0usize;
        for code in &refs {
            n += disasm_iter(code).count();
        }
        n
    });
    println!(
        "disasm     collect {:>10.3} ms   stream {:>10.3} ms   speedup {:>6.2}x   {:.1} MB/s streamed",
        collect_secs * 1e3,
        stream_secs * 1e3,
        collect_secs / stream_secs,
        mb / stream_secs
    );

    // --- Feature extraction: seed two-phase path vs. fused stream. ---
    let extractor = HistogramExtractor::fit(&refs);
    let seed_extract_secs = measure(reps, || seed_paths::histogram_transform(&extractor, &refs));
    let fused_extract_secs = measure(reps, || extractor.transform(&refs));
    println!(
        "extract    seed    {:>10.3} ms   fused  {:>10.3} ms   speedup {:>6.2}x   {:.0} contracts/s fused",
        seed_extract_secs * 1e3,
        fused_extract_secs * 1e3,
        seed_extract_secs / fused_extract_secs,
        refs.len() as f64 / fused_extract_secs
    );

    // --- Forest inference: seed per-row walk vs. batch blocks. ---
    let x = extractor.transform(&refs);
    let y: Vec<usize> = (0..refs.len()).map(|i| i % 2).collect();
    let mut forest = RandomForest::new(ForestConfig {
        n_trees: 100,
        max_depth: 20,
        seed: 7,
        ..ForestConfig::default()
    });
    forest.fit(&x, &y);
    let seed_infer_secs = measure(reps, || seed_paths::forest_predict_proba(&forest, &x));
    let batch_infer_secs = measure(reps, || forest.predict_proba_batch(&x));
    println!(
        "inference  per-row {:>10.3} ms   batch  {:>10.3} ms   speedup {:>6.2}x   {:.0} rows/s batch",
        seed_infer_secs * 1e3,
        batch_infer_secs * 1e3,
        seed_infer_secs / batch_infer_secs,
        x.rows() as f64 / batch_infer_secs
    );

    // --- End-to-end serving path: raw bytecode -> probabilities. ---
    let pipeline_secs = measure(reps, || {
        let features = extractor.transform(&refs);
        forest.predict_proba_batch(&features)
    });
    let contracts_per_sec = refs.len() as f64 / pipeline_secs;
    let mb_per_sec = mb / pipeline_secs;
    println!(
        "pipeline   extract+infer {:>10.3} ms        {:>10.0} contracts/s   {:.1} MB/s",
        pipeline_secs * 1e3,
        contracts_per_sec,
        mb_per_sec
    );

    // --- Serve path: snapshot restore + the batched Scanner facade. ---
    // The same hot path `phishinghook serve` drives per request batch:
    // snapshot-restored detector, reusable scratch matrix, fused
    // transform_into + predict_proba_batch.
    const SERVE_BATCH: usize = 64;
    let registry = DetectorRegistry::global();
    let mut detector = registry.build_str("rf:seed=7", 7).expect("built-in spec");
    detector.fit(&refs, &y);
    let snapshot = detector.to_snapshot_bytes();
    let restore_secs = measure(reps, || {
        Scanner::from_snapshot_bytes(&snapshot).expect("snapshot restores")
    });
    let mut engine = Scanner::from_snapshot_bytes(&snapshot).expect("snapshot restores");
    let serve_secs = measure(reps, || {
        let mut scored = 0usize;
        for chunk in refs.chunks(SERVE_BATCH) {
            scored += engine.score_batch(chunk).len();
        }
        scored
    });
    let serve_batches = refs.len().div_ceil(SERVE_BATCH);
    let serve_cps = refs.len() as f64 / serve_secs;
    // Restore amortization: how many served batches cost as much as one
    // snapshot restore. serve --tcp restores once per *process* and shares
    // the model across connections via Scanner::worker, so this is the
    // break-even a per-connection restore would have paid on every accept.
    let mean_batch_secs = serve_secs / serve_batches as f64;
    let restore_amortization_batches = restore_secs / mean_batch_secs;
    println!(
        "serve      restore {:>10.3} ms   score  {:>10.3} ms   {:>10.0} contracts/s   {} batch(es) of {SERVE_BATCH}, snapshot {} KiB, restore ≈ {:.1} batches",
        restore_secs * 1e3,
        serve_secs * 1e3,
        serve_cps,
        serve_batches,
        snapshot.len() / 1024,
        restore_amortization_batches,
    );

    // --- Scanner: single HSC vs. 3-member ensemble over the same facade. ---
    // Measures what composing the paper's ensemble scenario costs on the
    // serving path: one shared extraction per batch, N inference passes.
    const ENSEMBLE_SPEC: &str = "ensemble:rf+lgbm+catboost:vote=soft";
    let mut ensemble = registry.build_str(ENSEMBLE_SPEC, 7).expect("built-in spec");
    ensemble.fit(&refs, &y);
    let ensemble_snapshot = ensemble.to_snapshot_bytes();
    let ensemble_restore_secs = measure(reps, || {
        Scanner::from_snapshot_bytes(&ensemble_snapshot).expect("snapshot restores")
    });
    let mut ensemble_scanner =
        Scanner::from_snapshot_bytes(&ensemble_snapshot).expect("snapshot restores");
    let ensemble_scan_secs = measure(reps, || {
        let mut scored = 0usize;
        for chunk in refs.chunks(SERVE_BATCH) {
            scored += ensemble_scanner.score_batch(chunk).len();
        }
        scored
    });
    // The single-model row is the serve section's measurement (same engine,
    // same refs, same batch size) — re-measuring it would only add noise.
    let single_cps = serve_cps;
    let ensemble_cps = refs.len() as f64 / ensemble_scan_secs;
    println!(
        "scanner    single  {:>10.0} c/s   ensemble {:>8.0} c/s   ({:.2}x cost for {} members, snapshot {} KiB)",
        single_cps,
        ensemble_cps,
        single_cps / ensemble_cps,
        3,
        ensemble_snapshot.len() / 1024,
    );

    let json = format!(
        r#"{{
  "schema": "phishinghook-bench-pipeline/v1",
  "quick": {quick},
  "reps": {reps},
  "corpus": {{ "contracts": {contracts}, "bytes": {bytes} }},
  "disasm": {{
    "collect_secs": {collect},
    "stream_secs": {stream},
    "speedup": {disasm_speedup},
    "stream_mb_per_sec": {stream_mbps},
    "stream_contracts_per_sec": {stream_cps}
  }},
  "features": {{
    "seed_secs": {seed_extract},
    "fused_secs": {fused_extract},
    "speedup": {extract_speedup},
    "fused_contracts_per_sec": {fused_cps}
  }},
  "inference": {{
    "per_row_secs": {seed_infer},
    "batch_secs": {batch_infer},
    "speedup": {infer_speedup},
    "batch_rows_per_sec": {batch_rps},
    "n_trees": 100
  }},
  "pipeline": {{
    "secs": {pipeline},
    "contracts_per_sec": {cps},
    "mb_per_sec": {mbps}
  }},
  "serve": {{
    "snapshot_bytes": {snapshot_bytes},
    "restore_secs": {restore},
    "batch_size": {serve_batch},
    "batches": {serve_batches},
    "score_secs": {serve_secs},
    "contracts_per_sec": {serve_cps},
    "mean_batch_ms": {serve_mean_batch_ms},
    "restore_amortization_batches": {restore_amort}
  }},
  "scanner": {{
    "batch_size": {serve_batch},
    "single_model": "rf:seed=7",
    "single_contracts_per_sec": {single_cps},
    "ensemble_model": "{ensemble_spec}",
    "ensemble_members": 3,
    "ensemble_snapshot_bytes": {ensemble_snapshot_bytes},
    "ensemble_restore_secs": {ensemble_restore},
    "ensemble_contracts_per_sec": {ensemble_cps},
    "ensemble_cost_x": {ensemble_cost_x}
  }}
}}
"#,
        quick = args.quick,
        reps = reps,
        contracts = args.contracts,
        bytes = total_bytes,
        collect = json_f(collect_secs),
        stream = json_f(stream_secs),
        disasm_speedup = json_f(collect_secs / stream_secs),
        stream_mbps = json_f(mb / stream_secs),
        stream_cps = json_f(refs.len() as f64 / stream_secs),
        seed_extract = json_f(seed_extract_secs),
        fused_extract = json_f(fused_extract_secs),
        extract_speedup = json_f(seed_extract_secs / fused_extract_secs),
        fused_cps = json_f(refs.len() as f64 / fused_extract_secs),
        seed_infer = json_f(seed_infer_secs),
        batch_infer = json_f(batch_infer_secs),
        infer_speedup = json_f(seed_infer_secs / batch_infer_secs),
        batch_rps = json_f(x.rows() as f64 / batch_infer_secs),
        pipeline = json_f(pipeline_secs),
        cps = json_f(contracts_per_sec),
        mbps = json_f(mb_per_sec),
        snapshot_bytes = snapshot.len(),
        restore = json_f(restore_secs),
        serve_batch = SERVE_BATCH,
        serve_batches = serve_batches,
        serve_secs = json_f(serve_secs),
        serve_cps = json_f(serve_cps),
        serve_mean_batch_ms = json_f(serve_secs / serve_batches as f64 * 1e3),
        restore_amort = json_f(restore_amortization_batches),
        ensemble_spec = ENSEMBLE_SPEC,
        single_cps = json_f(single_cps),
        ensemble_snapshot_bytes = ensemble_snapshot.len(),
        ensemble_restore = json_f(ensemble_restore_secs),
        ensemble_cps = json_f(ensemble_cps),
        ensemble_cost_x = json_f(single_cps / ensemble_cps),
    );
    std::fs::write(&args.out, &json).expect("write benchmark JSON");
    println!("\nwrote {}", args.out);
}
