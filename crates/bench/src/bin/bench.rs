//! The perf-trajectory benchmark: measures the disasm→features→inference
//! spine against the seed reference paths and emits `BENCH_pipeline.json`,
//! the repository's first committed performance datapoint.
//!
//! ```text
//! cargo run --release -p phishinghook-bench --bin bench             # full
//! cargo run --release -p phishinghook-bench --bin bench -- --quick  # CI smoke
//! cargo run --release -p phishinghook-bench --bin bench -- --contracts 512 --out results/BENCH_pipeline.json
//! ```
//!
//! JSON schema (`phishinghook-bench-pipeline/v1`): see the README's
//! "Performance" section. All times are best-of-`reps` wall-clock seconds
//! for one full pass over the corpus; throughputs derive from the same
//! pass.

use phishinghook_bench::load::{self, run_load, LoadConfig};
use phishinghook_bench::seed_paths;
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_evm::disasm::disasm_iter;
use phishinghook_evm::keccak::{from_hex, to_hex, Digest};
use phishinghook_features::{HistogramExtractor, TraceExtractor};
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, RandomForest};
use phishinghook_models::{Detector, DetectorRegistry, Scanner};
use phishinghook_serve::{
    serve_http, Admission, CachedVerdict, Protocol, Scheduler, SchedulerOptions, TcpLimits,
    VerdictCache,
};
use std::time::Instant;

struct Args {
    quick: bool,
    check_readme: bool,
    contracts: usize,
    out: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let check_readme = argv.iter().any(|a| a == "--check-readme");
    let mut args = Args {
        quick,
        check_readme,
        contracts: if quick { 96 } else { 512 },
        out: "BENCH_pipeline.json".to_owned(),
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--contracts" => {
                if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                    args.contracts = v;
                }
            }
            "--out" => {
                if let Some(v) = iter.next() {
                    args.out = v.clone();
                }
            }
            _ => {}
        }
    }
    args
}

/// One closed-loop HTTP client: sends each pre-rendered request on a
/// single keep-alive connection and fully reads each response before
/// sending the next. Returns how many answered `200`.
fn http_round(addr: std::net::SocketAddr, requests: &[String]) -> usize {
    use std::io::{BufRead, BufReader, Read, Write};
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut ok = 0usize;
    for raw in requests {
        writer.write_all(raw.as_bytes()).expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("status line");
        if line.starts_with("HTTP/1.1 200") {
            ok += 1;
        }
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            if header.trim_end().is_empty() {
                break;
            }
            if let Some(v) = header.trim_end().strip_prefix("Content-Length: ") {
                content_length = v.parse().expect("content length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
    }
    ok
}

/// Best-of-`reps` wall-clock seconds for one call of `f`.
fn measure<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

/// Extracts the numeric value of `"key": <number>` inside the first
/// occurrence of `"section"` in the bench JSON (which this binary itself
/// wrote, so the layout is fixed: sections are top-level objects and keys
/// are unique within one).
fn json_number(doc: &str, section: &str, key: &str) -> f64 {
    let start = doc
        .find(&format!("\"{section}\""))
        .unwrap_or_else(|| panic!("section `{section}` missing from bench JSON"));
    let tail = &doc[start..];
    let k = tail
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("key `{key}` missing from section `{section}`"));
    let tail = &tail[k..];
    let colon = tail.find(':').expect("key is followed by a colon");
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("`{section}.{key}` is not a number"))
}

/// README spelling of a throughput: `"205k"` for 205,254/s — the same
/// rounding the Performance tables use, so the check below can demand an
/// exact substring.
fn readme_k(v: f64) -> String {
    format!("{:.0}k", v / 1000.0)
}

/// `--check-readme`: asserts the README's Performance tables quote the
/// committed `BENCH_pipeline.json`. CI runs this after the perf-smoke
/// floors so a regenerated benchmark cannot land without the README rows
/// being resynced. Exits non-zero listing every stale anchor.
fn check_readme(bench_path: &str) {
    let doc = std::fs::read_to_string(bench_path)
        .unwrap_or_else(|e| panic!("cannot read {bench_path}: {e}"));
    let readme = std::fs::read_to_string("README.md")
        .unwrap_or_else(|e| panic!("cannot read README.md: {e}"));

    let anchors = [
        (
            "inference.batch_rows_per_sec",
            format!(
                "{} rows/s",
                readme_k(json_number(&doc, "inference", "batch_rows_per_sec"))
            ),
        ),
        (
            "inference_quant.batch_rows_per_sec",
            format!(
                "{} rows/s",
                readme_k(json_number(&doc, "inference_quant", "batch_rows_per_sec"))
            ),
        ),
        (
            "inference_quant.speedup_vs_f64",
            format!(
                "{:.1}×",
                json_number(&doc, "inference_quant", "speedup_vs_f64")
            ),
        ),
        (
            "pipeline.contracts_per_sec",
            format!(
                "{} contracts/s",
                readme_k(json_number(&doc, "pipeline", "contracts_per_sec"))
            ),
        ),
        (
            "serve.contracts_per_sec",
            format!(
                "{} contracts/s",
                readme_k(json_number(&doc, "serve", "contracts_per_sec"))
            ),
        ),
    ];
    let stale: Vec<String> = anchors
        .iter()
        .filter(|(_, needle)| !readme.contains(needle.as_str()))
        .map(|(what, needle)| format!("  {what}: README.md does not contain `{needle}`"))
        .collect();
    if stale.is_empty() {
        println!(
            "README.md quotes {bench_path} ({} anchors verified)",
            anchors.len()
        );
    } else {
        eprintln!("README.md is out of sync with {bench_path}:");
        for line in &stale {
            eprintln!("{line}");
        }
        eprintln!("regenerate with: cargo run --release -p phishinghook-bench --bin bench, then update the README tables");
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if args.check_readme {
        check_readme(&args.out);
        return;
    }
    let reps = if args.quick { 2 } else { 5 };

    println!("PhishingHook pipeline benchmark");
    println!(
        "corpus: {} contracts, {} rep(s) per measurement{}",
        args.contracts,
        reps,
        if args.quick { " (--quick)" } else { "" }
    );

    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: args.contracts,
        seed: 0xBE9C,
        ..Default::default()
    });
    let codes: Vec<Vec<u8>> = corpus.records.into_iter().map(|r| r.bytecode).collect();
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let total_bytes: usize = codes.iter().map(Vec::len).sum();
    let mb = total_bytes as f64 / (1024.0 * 1024.0);

    // --- Disassembly: seed collecting path vs. zero-allocation stream. ---
    let collect_secs = measure(reps, || {
        let mut n = 0usize;
        for code in &refs {
            n += seed_paths::disassemble(code).len();
        }
        n
    });
    let stream_secs = measure(reps, || {
        let mut n = 0usize;
        for code in &refs {
            n += disasm_iter(code).count();
        }
        n
    });
    println!(
        "disasm     collect {:>10.3} ms   stream {:>10.3} ms   speedup {:>6.2}x   {:.1} MB/s streamed",
        collect_secs * 1e3,
        stream_secs * 1e3,
        collect_secs / stream_secs,
        mb / stream_secs
    );

    // --- Feature extraction: seed two-phase path vs. fused stream. ---
    let extractor = HistogramExtractor::fit(&refs);
    let seed_extract_secs = measure(reps, || seed_paths::histogram_transform(&extractor, &refs));
    let fused_extract_secs = measure(reps, || extractor.transform(&refs));
    println!(
        "extract    seed    {:>10.3} ms   fused  {:>10.3} ms   speedup {:>6.2}x   {:.0} contracts/s fused",
        seed_extract_secs * 1e3,
        fused_extract_secs * 1e3,
        seed_extract_secs / fused_extract_secs,
        refs.len() as f64 / fused_extract_secs
    );

    // --- Dynamic channel: selector-driven trace extraction. ---
    // One "trace" is one contract fully explored: scan the dispatcher for
    // selectors, execute each under the explorer's gas/step budget on the
    // simulated chain, reduce to the 20 trace columns. The cost is EVM
    // execution, not byte scanning, so it is reported next to the static
    // fused path it rides alongside in `features=hist+trace` specs.
    let tracer = TraceExtractor::new();
    let trace_secs = measure(reps, || tracer.transform(&refs));
    let traces_per_sec = refs.len() as f64 / trace_secs;
    let trace_cost_x = trace_secs / fused_extract_secs;
    println!(
        "dynamic    trace   {:>10.3} ms   {:>10.0} traces/s   ({:.1}x the fused static path, {} cols, {} gas/run)",
        trace_secs * 1e3,
        traces_per_sec,
        trace_cost_x,
        tracer.n_features(),
        tracer.gas_per_run,
    );

    // --- Forest inference: seed per-row walk vs. batch blocks. ---
    let x = extractor.transform(&refs);
    let y: Vec<usize> = (0..refs.len()).map(|i| i % 2).collect();
    let mut forest = RandomForest::new(ForestConfig {
        n_trees: 100,
        max_depth: 20,
        seed: 7,
        ..ForestConfig::default()
    });
    forest.fit(&x, &y);
    let seed_infer_secs = measure(reps, || seed_paths::forest_predict_proba(&forest, &x));
    let batch_infer_secs = measure(reps, || forest.predict_proba_batch(&x));
    println!(
        "inference  per-row {:>10.3} ms   batch  {:>10.3} ms   speedup {:>6.2}x   {:.0} rows/s batch",
        seed_infer_secs * 1e3,
        batch_infer_secs * 1e3,
        seed_infer_secs / batch_infer_secs,
        x.rows() as f64 / batch_infer_secs
    );

    // --- Quantized inference: the same forest through the u16 engine. ---
    // Thresholds are binned per feature at fit time, nodes repacked into
    // 8-byte cache-line-dense records, and the lockstep walk compares u16s;
    // bins come from the model's own split thresholds, so the output is
    // bit-identical to the f64 arena (asserted here on every row).
    let quant_probs = forest
        .predict_proba_batch_quantized(&x)
        .expect("a fitted forest carries its quantized mirror");
    let f64_probs = forest.predict_proba_batch(&x);
    assert!(
        quant_probs
            .iter()
            .zip(&f64_probs)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "quantized walk must reproduce the f64 reference bit-for-bit"
    );
    let quant_infer_secs = measure(reps, || {
        forest
            .predict_proba_batch_quantized(&x)
            .expect("quantized mirror present")
    });
    let quant_bins = forest.quant_bins().unwrap_or(0);
    let quant_speedup = batch_infer_secs / quant_infer_secs;
    println!(
        "inference  quant   {:>10.3} ms   ({:>6.2}x the f64 batch)   {:.0} rows/s   {} bins/feature, bit-identical",
        quant_infer_secs * 1e3,
        quant_speedup,
        x.rows() as f64 / quant_infer_secs,
        quant_bins,
    );

    // --- End-to-end serving path: raw bytecode -> probabilities. ---
    let pipeline_secs = measure(reps, || {
        let features = extractor.transform(&refs);
        forest.predict_proba_batch(&features)
    });
    let contracts_per_sec = refs.len() as f64 / pipeline_secs;
    let mb_per_sec = mb / pipeline_secs;
    println!(
        "pipeline   extract+infer {:>10.3} ms        {:>10.0} contracts/s   {:.1} MB/s",
        pipeline_secs * 1e3,
        contracts_per_sec,
        mb_per_sec
    );

    // --- Serve path: snapshot restore + the batched Scanner facade. ---
    // The same hot path `phishinghook serve` drives per request batch:
    // snapshot-restored detector, reusable scratch matrix, fused
    // transform_into + predict_proba_batch.
    const SERVE_BATCH: usize = 64;
    let registry = DetectorRegistry::global();
    let mut detector = registry.build_str("rf:seed=7", 7).expect("built-in spec");
    detector.fit(&refs, &y);
    let snapshot = detector.to_snapshot_bytes();
    let restore_secs = measure(reps, || {
        Scanner::from_snapshot_bytes(&snapshot).expect("snapshot restores")
    });
    let mut engine = Scanner::from_snapshot_bytes(&snapshot).expect("snapshot restores");
    let serve_secs = measure(reps, || {
        let mut scored = 0usize;
        for chunk in refs.chunks(SERVE_BATCH) {
            scored += engine.score_batch(chunk).len();
        }
        scored
    });
    let serve_batches = refs.len().div_ceil(SERVE_BATCH);
    let serve_cps = refs.len() as f64 / serve_secs;
    // Restore amortization: how many served batches cost as much as one
    // snapshot restore. serve --tcp restores once per *process* and shares
    // the model across connections via Scanner::worker, so this is the
    // break-even a per-connection restore would have paid on every accept.
    let mean_batch_secs = serve_secs / serve_batches as f64;
    let restore_amortization_batches = restore_secs / mean_batch_secs;
    println!(
        "serve      restore {:>10.3} ms   score  {:>10.3} ms   {:>10.0} contracts/s   {} batch(es) of {SERVE_BATCH}, snapshot {} KiB, restore ≈ {:.1} batches",
        restore_secs * 1e3,
        serve_secs * 1e3,
        serve_cps,
        serve_batches,
        snapshot.len() / 1024,
        restore_amortization_batches,
    );

    // --- Scanner: single HSC vs. 3-member ensemble over the same facade. ---
    // Measures what composing the paper's ensemble scenario costs on the
    // serving path: one shared extraction per batch, N inference passes.
    const ENSEMBLE_SPEC: &str = "ensemble:rf+lgbm+catboost:vote=soft";
    let mut ensemble = registry.build_str(ENSEMBLE_SPEC, 7).expect("built-in spec");
    ensemble.fit(&refs, &y);
    let ensemble_snapshot = ensemble.to_snapshot_bytes();
    let ensemble_restore_secs = measure(reps, || {
        Scanner::from_snapshot_bytes(&ensemble_snapshot).expect("snapshot restores")
    });
    let mut ensemble_scanner =
        Scanner::from_snapshot_bytes(&ensemble_snapshot).expect("snapshot restores");
    let ensemble_scan_secs = measure(reps, || {
        let mut scored = 0usize;
        for chunk in refs.chunks(SERVE_BATCH) {
            scored += ensemble_scanner.score_batch(chunk).len();
        }
        scored
    });
    // The single-model row is the serve section's measurement (same engine,
    // same refs, same batch size) — re-measuring it would only add noise.
    let single_cps = serve_cps;
    let ensemble_cps = refs.len() as f64 / ensemble_scan_secs;
    println!(
        "scanner    single  {:>10.0} c/s   ensemble {:>8.0} c/s   ({:.2}x cost for {} members, snapshot {} KiB)",
        single_cps,
        ensemble_cps,
        single_cps / ensemble_cps,
        3,
        ensemble_snapshot.len() / 1024,
    );

    // --- Serving core: cross-connection micro-batching vs per-connection. ---
    // The chain-watch workload: many concurrent clients, one request per
    // line. The old daemon gave each connection a private loop, so a
    // single-line client scored 1-row batches; the scheduler merges rows
    // *across* connections into SERVE_BATCH-row batches. Both sides decode
    // hex and score, so the comparison is end to end per request.
    const CLIENTS: usize = 4;
    let per_client = refs.len() / CLIENTS;
    let total_requests = per_client * CLIENTS;
    let client_lines: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| {
            refs[c * per_client..(c + 1) * per_client]
                .iter()
                .map(|code| format!("0x{}", to_hex(code)))
                .collect()
        })
        .collect();
    let per_conn_secs = measure(reps, || {
        let mut scored = 0usize;
        for lines in &client_lines {
            let mut worker = engine.worker(); // one private engine per connection
            for line in lines {
                let code = from_hex(line).expect("bench hex");
                scored += worker.score_batch(&[code.as_slice()]).len();
            }
        }
        scored
    });
    let scheduler_opts = SchedulerOptions {
        batch: SERVE_BATCH,
        workers: 1,
        queue_depth: 1024,
        linger_micros: 200,
        cache_bytes: 0, // isolate batching from caching
        ..SchedulerOptions::default()
    };
    let cross_conn_secs = measure(reps, || {
        let scheduler = Scheduler::new(&engine, &scheduler_opts);
        let scored = std::thread::scope(|scope| {
            let handles: Vec<_> = client_lines
                .iter()
                .map(|lines| {
                    let scheduler = &scheduler;
                    scope.spawn(move || {
                        let (mut conn, rx) = scheduler.connect(Protocol::V1);
                        for line in lines {
                            conn.submit(line, Admission::Block);
                        }
                        conn.finish();
                        rx.iter().count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .sum::<usize>()
        });
        assert_eq!(scored, total_requests, "every request answered");
        scheduler.shutdown();
        scored
    });
    let per_conn_cps = total_requests as f64 / per_conn_secs;
    let cross_conn_cps = total_requests as f64 / cross_conn_secs;
    println!(
        "scheduler  per-conn {:>9.0} c/s   cross-conn {:>7.0} c/s   speedup {:>5.2}x   ({CLIENTS} single-line clients)",
        per_conn_cps,
        cross_conn_cps,
        cross_conn_cps / per_conn_cps,
    );

    // --- HTTP gateway: closed-loop POST /predict over keep-alive. ---
    // The same clients and bytecodes as the scheduler section, but each
    // request pays the full edge path: HTTP/1.1 parsing, v2 JSON framing,
    // the scheduler (same tuning, cache off), response heads and latency
    // metrics. Closed loop: a client reads each response before sending
    // the next, so this is per-request round-trip throughput, not
    // pipelined drain rate.
    let http_requests_raw: Vec<Vec<String>> = client_lines
        .iter()
        .map(|lines| {
            lines
                .iter()
                .enumerate()
                .map(|(i, hex)| {
                    let body = format!("{{\"id\":\"{i}\",\"bytecode\":\"{hex}\"}}");
                    format!(
                        "POST /predict HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                })
                .collect()
        })
        .collect();
    let http_secs = measure(reps, || {
        let scheduler = Scheduler::new(&engine, &scheduler_opts);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let ok = std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let listener = &listener;
            let server = scope.spawn(move || {
                serve_http(
                    listener,
                    scheduler,
                    TcpLimits {
                        max_conns: None,
                        accept_total: Some(CLIENTS),
                    },
                )
                .expect("gateway serves")
            });
            let handles: Vec<_> = http_requests_raw
                .iter()
                .map(|requests| scope.spawn(move || http_round(addr, requests)))
                .collect();
            let ok: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
            server.join().expect("gateway thread");
            ok
        });
        assert_eq!(ok, total_requests, "every HTTP request answers 200");
        scheduler.shutdown();
        ok
    });
    let http_rps = total_requests as f64 / http_secs;
    println!(
        "http       closed-loop {:>6.0} req/s over {CLIENTS} keep-alive conn(s)   ({:.2}x of JSONL cross-conn)",
        http_rps,
        http_rps / cross_conn_cps,
    );

    // --- Verdict cache: hit path vs cold-score path. ---
    // Both paths are measured end to end on a cache-enabled daemon: every
    // request pays keccak-256 + LRU lookup; a miss (cold) then scores one
    // row, a hit replays the stored f64s. Bit-identity between the two
    // paths is asserted, not assumed.
    let cache_budget: usize = 8 << 20;
    let mut cold_worker = engine.worker();
    let empty_cache = VerdictCache::new(cache_budget);
    let cold_secs = measure(reps, || {
        let mut acc = 0u64;
        for code in &refs {
            let digest = Digest::of(code);
            match empty_cache.lookup(&digest) {
                Some(hit) => acc ^= hit.proba.to_bits(),
                None => acc ^= cold_worker.score_batch(&[*code])[0].to_bits(),
            }
        }
        acc
    });
    // Populate the cache from the batched path, then verify every cold
    // (per-row) score is bit-identical to what the cache replays.
    let cache = VerdictCache::new(cache_budget);
    let mut filler = engine.worker();
    for chunk in refs.chunks(SERVE_BATCH) {
        let (combined, per_model) = filler.score_with_members(chunk);
        for (row, code) in chunk.iter().enumerate() {
            cache.insert(
                Digest::of(code),
                CachedVerdict {
                    proba: combined[row],
                    per_model: per_model.iter().map(|(_, p)| p[row]).collect(),
                },
            );
        }
    }
    for code in &refs {
        let cold = cold_worker.score_batch(&[*code])[0];
        let hit = cache.lookup(&Digest::of(code)).expect("prefilled");
        assert_eq!(
            cold.to_bits(),
            hit.proba.to_bits(),
            "cache must replay the cold path's exact bits"
        );
    }
    let hit_secs = measure(reps, || {
        let mut acc = 0u64;
        for code in &refs {
            let digest = Digest::of(code);
            acc ^= cache.lookup(&digest).expect("prefilled").proba.to_bits();
        }
        acc
    });
    let cold_rps = refs.len() as f64 / cold_secs;
    let hit_rps = refs.len() as f64 / hit_secs;
    println!(
        "cache      cold    {:>10.0} r/s   hit    {:>10.0} r/s   speedup {:>5.1}x   (keccak+LRU vs extract+infer, bit-identical)",
        cold_rps,
        hit_rps,
        hit_rps / cold_rps.max(1e-12),
    );

    // --- Brownout ladder: closed-loop tail latency per degradation tier. ---
    // Each tier is pinned through its queue-fill thresholds (0% forces
    // the tier on, >100% disables it). Clients submit with shedding
    // admission and read each response before the next request, so the
    // distribution is per-request round-trip latency as a degraded
    // client would see it: full 3-member ensemble, cheapest-member-only
    // (cache-first), and cache-hit replay (cache-only, pre-warmed).
    let brownout_n = per_client.min(64);
    let brownout_lines: Vec<Vec<String>> = client_lines
        .iter()
        .map(|lines| lines[..brownout_n].to_vec())
        .collect();
    let brownout_total = brownout_n * CLIENTS;
    let mut brownout_rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    for (tier, cache_first_pct, cache_only_pct, tier_cache_bytes) in [
        ("full", 101u32, 101u32, 0usize),
        ("cache_first", 0, 101, 0),
        ("cache_only", 0, 0, cache_budget),
    ] {
        let opts = SchedulerOptions {
            cache_first_pct,
            cache_only_pct,
            cache_bytes: tier_cache_bytes,
            ..scheduler_opts.clone()
        };
        let scheduler = Scheduler::new(&ensemble_scanner, &opts);
        if tier_cache_bytes > 0 {
            // Pre-warm losslessly so the cache-only tier answers hits,
            // not typed refusals.
            let (mut conn, rx) = scheduler.connect(Protocol::V1);
            let mut warmed = 0usize;
            for lines in &brownout_lines {
                for line in lines {
                    conn.submit(line, Admission::Block);
                    warmed += 1;
                }
            }
            conn.finish();
            assert_eq!(rx.iter().count(), warmed, "warm-up answered");
        }
        let t0 = Instant::now();
        let mut latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = brownout_lines
                .iter()
                .map(|lines| {
                    let scheduler = &scheduler;
                    scope.spawn(move || {
                        let (mut conn, rx) = scheduler.connect(Protocol::V1);
                        let mut lat = Vec::with_capacity(lines.len());
                        for line in lines {
                            let t = Instant::now();
                            conn.submit(line, Admission::Shed);
                            let reply = rx.recv().expect("one response per request");
                            lat.push(t.elapsed().as_secs_f64());
                            assert!(
                                !reply.starts_with("ERR"),
                                "unexpected refusal in {tier}: {reply}"
                            );
                        }
                        conn.finish();
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("brownout client"))
                .collect()
        });
        let secs = t0.elapsed().as_secs_f64();
        scheduler.shutdown();
        latencies.sort_by(f64::total_cmp);
        let q = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] * 1e3;
        println!(
            "brownout   {tier:<12} {:>8.0} req/s   p50 {:>8.3} ms   p99 {:>8.3} ms",
            brownout_total as f64 / secs,
            q(0.5),
            q(0.99),
        );
        brownout_rows.push((tier, brownout_total as f64 / secs, q(0.5), q(0.99)));
    }

    // --- sharded serving: open-loop overload across 1/2/4 lanes ---------
    // The open-loop generators never wait for responses, so offered load
    // stays saturating no matter how the lanes fare — the overload regime
    // a chain watcher lives in during a redeploy storm. Measured with the
    // cache off so every admitted request is scored: the throughput curve
    // is scoring *goodput* under a producer flood, which is what extra
    // lanes buy (each lane brings its own worker and its own queue, so
    // workers neither starve on a single hammered queue lock nor split
    // one thread's CPU share N ways). Every refusal must be typed.
    // Enough request volume that the producer-pressure phase dwarfs the
    // final queue-drain tail (where no contention exists to measure).
    let load_cfg = LoadConfig {
        clients: if args.quick { 128 } else { 256 },
        generators: 8,
        requests_per_client: 64,
        rate: f64::INFINITY,
        open_loop: true,
        templates: 16,
        skew: 1.1,
        seed: 0x5EED,
    };
    // The exact working set `run_load` will draw (the streams are
    // deterministic), and the ground truth for the in-binary
    // bit-equality check: every unique code scored directly, no serving
    // layer.
    let load_codes = load::unique_codes(&load_cfg);
    let load_digests: Vec<Digest> = load_codes.iter().map(|c| Digest::of(c)).collect();
    let load_refs: Vec<&[u8]> = load_codes.iter().map(Vec::as_slice).collect();
    let direct_probas = engine.worker().score_batch(&load_refs);

    let mut shard_rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for shards in [1usize, 2, 4] {
        // The measured scheduler: cache off, one worker per lane.
        let opts = SchedulerOptions {
            shards,
            ..scheduler_opts.clone()
        };
        let scheduler = Scheduler::new(&engine, &opts);
        // Best-of-`reps` open-loop passes; the quantiles come from the
        // same pass as the headline throughput.
        let mut best = run_load(&scheduler, &load_cfg);
        for _ in 1..reps {
            let report = run_load(&scheduler, &load_cfg);
            if report.throughput > best.throughput {
                best = report;
            }
        }
        scheduler.shutdown();
        assert_eq!(
            best.sent,
            best.verdicts + best.overloads,
            "{shards}-shard: a request was neither answered nor typed-refused"
        );
        assert_eq!(
            best.errors + best.timeouts + best.internals,
            0,
            "{shards}-shard: untyped failures under overload"
        );

        // The bit-equality contract, asserted in the bench binary itself:
        // a cache-on sibling of the same layout is warmed over the same
        // working set, and every cached verdict must carry exactly the
        // bits the direct scorer produced — whatever the lane count.
        let checker = Scheduler::new(
            &engine,
            &SchedulerOptions {
                cache_bytes: cache_budget,
                ..opts.clone()
            },
        );
        let warmed = load::warm_caches(&checker, &load_cfg);
        assert_eq!(warmed, load_codes.len());
        for (digest, expected) in load_digests.iter().zip(&direct_probas) {
            let cached = checker
                .cached_verdict(digest)
                .expect("warmed digest resident");
            assert_eq!(
                cached.proba.to_bits(),
                expected.to_bits(),
                "{shards}-shard verdict diverged from direct scoring"
            );
        }
        checker.shutdown();

        println!(
            "shards     {shards} lane(s)    {:>8.0} verdicts/s   p50 {:>8.3} ms   p99 {:>8.3} ms",
            best.throughput, best.p50_ms, best.p99_ms,
        );
        shard_rows.push((
            shards,
            best.throughput,
            best.p50_ms,
            best.p90_ms,
            best.p99_ms,
        ));
    }
    let shard_scaling = shard_rows[2].1 / shard_rows[0].1.max(1e-12);

    let shards_json: String = shard_rows
        .iter()
        .map(|(n, rps, p50, p90, p99)| {
            format!(
                "    \"lanes_{n}\": {{ \"throughput_rps\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {} }}",
                json_f(*rps),
                json_f(*p50),
                json_f(*p90),
                json_f(*p99)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let brownout_json: String = brownout_rows
        .iter()
        .map(|(tier, rps, p50, p99)| {
            format!(
                "    \"{tier}\": {{ \"requests_per_sec\": {}, \"p50_ms\": {}, \"p99_ms\": {} }}",
                json_f(*rps),
                json_f(*p50),
                json_f(*p99)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        r#"{{
  "schema": "phishinghook-bench-pipeline/v1",
  "quick": {quick},
  "reps": {reps},
  "corpus": {{ "contracts": {contracts}, "bytes": {bytes} }},
  "disasm": {{
    "collect_secs": {collect},
    "stream_secs": {stream},
    "speedup": {disasm_speedup},
    "stream_mb_per_sec": {stream_mbps},
    "stream_contracts_per_sec": {stream_cps}
  }},
  "features": {{
    "seed_secs": {seed_extract},
    "fused_secs": {fused_extract},
    "speedup": {extract_speedup},
    "fused_contracts_per_sec": {fused_cps}
  }},
  "dynamic": {{
    "columns": {trace_columns},
    "gas_per_run": {trace_gas},
    "steps_per_run": {trace_steps},
    "max_selectors": {trace_max_selectors},
    "extract_secs": {trace_secs},
    "traces_per_sec": {traces_per_sec},
    "cost_vs_static_x": {trace_cost_x}
  }},
  "inference": {{
    "per_row_secs": {seed_infer},
    "batch_secs": {batch_infer},
    "speedup": {infer_speedup},
    "batch_rows_per_sec": {batch_rps},
    "n_trees": 100
  }},
  "inference_quant": {{
    "batch_secs": {quant_infer},
    "batch_rows_per_sec": {quant_rps},
    "speedup_vs_f64": {quant_speedup},
    "bins_per_feature": {quant_bins},
    "bit_identical": true,
    "n_trees": 100
  }},
  "pipeline": {{
    "secs": {pipeline},
    "contracts_per_sec": {cps},
    "mb_per_sec": {mbps}
  }},
  "serve": {{
    "snapshot_bytes": {snapshot_bytes},
    "restore_secs": {restore},
    "batch_size": {serve_batch},
    "batches": {serve_batches},
    "score_secs": {serve_secs},
    "contracts_per_sec": {serve_cps},
    "mean_batch_ms": {serve_mean_batch_ms},
    "restore_amortization_batches": {restore_amort}
  }},
  "scanner": {{
    "batch_size": {serve_batch},
    "single_model": "rf:seed=7",
    "single_contracts_per_sec": {single_cps},
    "ensemble_model": "{ensemble_spec}",
    "ensemble_members": 3,
    "ensemble_snapshot_bytes": {ensemble_snapshot_bytes},
    "ensemble_restore_secs": {ensemble_restore},
    "ensemble_contracts_per_sec": {ensemble_cps},
    "ensemble_cost_x": {ensemble_cost_x}
  }},
  "scheduler": {{
    "clients": {clients},
    "requests": {total_requests},
    "batch_size": {serve_batch},
    "workers": 1,
    "linger_micros": {linger_micros},
    "per_connection_secs": {per_conn_secs},
    "per_connection_contracts_per_sec": {per_conn_cps},
    "cross_connection_secs": {cross_conn_secs},
    "cross_connection_contracts_per_sec": {cross_conn_cps},
    "speedup": {scheduler_speedup}
  }},
  "http": {{
    "clients": {clients},
    "requests": {total_requests},
    "closed_loop": true,
    "secs": {http_secs},
    "requests_per_sec": {http_rps},
    "vs_jsonl_cross_connection_x": {http_vs_jsonl}
  }},
  "cache": {{
    "budget_bytes": {cache_budget},
    "entries": {cache_entries},
    "cold_secs": {cold_secs},
    "cold_rows_per_sec": {cold_rps},
    "hit_secs": {hit_secs},
    "hit_rows_per_sec": {hit_rps},
    "hit_speedup": {hit_speedup},
    "bit_identical": true
  }},
  "brownout": {{
    "clients": {clients},
    "requests_per_tier": {brownout_total},
    "model": "{ensemble_spec}",
    "closed_loop": true,
{brownout_json}
  }},
  "shards": {{
    "clients": {load_clients},
    "generators": {load_generators},
    "requests_per_client": {load_requests},
    "open_loop": true,
    "rate": "max",
    "templates_per_generator": {load_templates},
    "skew": {load_skew},
    "unique_codes": {load_unique},
    "cache_bytes": 0,
    "workers_per_lane": 1,
    "bit_identical_across_layouts": true,
{shards_json},
    "scaling_4_vs_1_x": {shard_scaling}
  }}
}}
"#,
        quick = args.quick,
        reps = reps,
        contracts = args.contracts,
        bytes = total_bytes,
        collect = json_f(collect_secs),
        stream = json_f(stream_secs),
        disasm_speedup = json_f(collect_secs / stream_secs),
        stream_mbps = json_f(mb / stream_secs),
        stream_cps = json_f(refs.len() as f64 / stream_secs),
        seed_extract = json_f(seed_extract_secs),
        fused_extract = json_f(fused_extract_secs),
        extract_speedup = json_f(seed_extract_secs / fused_extract_secs),
        fused_cps = json_f(refs.len() as f64 / fused_extract_secs),
        trace_columns = tracer.n_features(),
        trace_gas = tracer.gas_per_run,
        trace_steps = tracer.steps_per_run,
        trace_max_selectors = tracer.max_selectors,
        trace_secs = json_f(trace_secs),
        traces_per_sec = json_f(traces_per_sec),
        trace_cost_x = json_f(trace_cost_x),
        seed_infer = json_f(seed_infer_secs),
        batch_infer = json_f(batch_infer_secs),
        infer_speedup = json_f(seed_infer_secs / batch_infer_secs),
        batch_rps = json_f(x.rows() as f64 / batch_infer_secs),
        quant_infer = json_f(quant_infer_secs),
        quant_rps = json_f(x.rows() as f64 / quant_infer_secs),
        quant_speedup = json_f(quant_speedup),
        quant_bins = quant_bins,
        pipeline = json_f(pipeline_secs),
        cps = json_f(contracts_per_sec),
        mbps = json_f(mb_per_sec),
        snapshot_bytes = snapshot.len(),
        restore = json_f(restore_secs),
        serve_batch = SERVE_BATCH,
        serve_batches = serve_batches,
        serve_secs = json_f(serve_secs),
        serve_cps = json_f(serve_cps),
        serve_mean_batch_ms = json_f(serve_secs / serve_batches as f64 * 1e3),
        restore_amort = json_f(restore_amortization_batches),
        ensemble_spec = ENSEMBLE_SPEC,
        single_cps = json_f(single_cps),
        ensemble_snapshot_bytes = ensemble_snapshot.len(),
        ensemble_restore = json_f(ensemble_restore_secs),
        ensemble_cps = json_f(ensemble_cps),
        ensemble_cost_x = json_f(single_cps / ensemble_cps),
        clients = CLIENTS,
        total_requests = total_requests,
        linger_micros = scheduler_opts.linger_micros,
        per_conn_secs = json_f(per_conn_secs),
        per_conn_cps = json_f(per_conn_cps),
        cross_conn_secs = json_f(cross_conn_secs),
        cross_conn_cps = json_f(cross_conn_cps),
        scheduler_speedup = json_f(cross_conn_cps / per_conn_cps),
        http_secs = json_f(http_secs),
        http_rps = json_f(http_rps),
        http_vs_jsonl = json_f(http_rps / cross_conn_cps),
        cache_budget = cache_budget,
        cache_entries = cache.stats().entries,
        cold_secs = json_f(cold_secs),
        cold_rps = json_f(cold_rps),
        hit_secs = json_f(hit_secs),
        hit_rps = json_f(hit_rps),
        hit_speedup = json_f(hit_rps / cold_rps.max(1e-12)),
        load_clients = load_cfg.clients,
        load_generators = load_cfg.generators,
        load_requests = load_cfg.requests_per_client,
        load_templates = load_cfg.templates,
        load_skew = json_f(load_cfg.skew),
        load_unique = load_codes.len(),
        shards_json = shards_json,
        shard_scaling = json_f(shard_scaling),
    );
    std::fs::write(&args.out, &json).expect("write benchmark JSON");
    println!("\nwrote {}", args.out);
}
