//! Fig. 2: number of phishing contracts per month (Oct 2023 – Oct 2024),
//! obtained (duplicate-inclusive) vs unique bytecodes.

use phishinghook_bench::banner;
use phishinghook_core::experiments::{dataset_stats, ExperimentScale};
use phishinghook_core::report::{render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 2 (phishing contracts per month)", &scale);

    let stats = dataset_stats::run(&scale);
    let rows: Vec<Vec<String>> = stats
        .monthly
        .iter()
        .map(|r| {
            vec![
                r.month.to_string(),
                r.obtained.to_string(),
                r.unique.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["Month", "Obtained", "Unique"], &rows));
    println!(
        "totals: {} obtained / {} unique (paper: 17,455 / 3,458; ratio ≈ {:.1}× vs paper ≈ 5.0×)",
        stats.obtained_phishing,
        stats.unique_phishing,
        stats.obtained_phishing as f64 / stats.unique_phishing.max(1) as f64
    );
    println!("expected shape: slow start in late 2023, spring-2024 surge, taper by Oct 2024");

    if let Ok(path) = save_csv("fig2", &["month", "obtained", "unique"], &rows) {
        println!("series written to {path}");
    }
}
