//! Fig. 4: Dunn's pairwise comparisons (Holm-adjusted) between the 13
//! models, per metric, with the within/cross-category significance
//! breakdown the paper quotes.
//!
//! Reuses `results/table2_trials.csv` when present.

use phishinghook_bench::{banner, load_cached_trials};
use phishinghook_core::experiments::{main_eval, posthoc, ExperimentScale};
use phishinghook_core::report::{render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 4 (Dunn's pairwise tests)", &scale);

    let trials = match load_cached_trials() {
        Some(t) => {
            println!(
                "using cached trials from results/table2_trials.csv ({} rows)\n",
                t.len()
            );
            t
        }
        None => {
            println!("no cached trials; running the main evaluation first\n");
            main_eval::run(&scale).trials
        }
    };
    let analysis = posthoc::run(&trials);

    println!("significance rates (adjusted p < 0.05):");
    let rows: Vec<Vec<String>> = analysis
        .rates
        .iter()
        .map(|(metric, r)| {
            vec![
                (*metric).to_owned(),
                format!("{:.2}%", r.overall * 100.0),
                format!("{:.2}%", r.within_category * 100.0),
                format!("{:.2}%", r.cross_category * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Metric", "Overall", "Within-category", "Cross-category"],
            &rows
        )
    );
    println!("paper: overall 65.4% (Acc/F1/Prec) and 61.5% (Rec);");
    println!("       within-category ≈ 33–41%, cross-category ≈ 76–80%");
    println!("expected shape: cross-category ≫ within-category\n");

    // Per-pair matrix cells → CSV.
    let csv_rows: Vec<Vec<String>> = analysis
        .pairwise
        .iter()
        .map(|p| {
            vec![
                p.metric.to_owned(),
                p.model_a.clone(),
                p.model_b.clone(),
                p.same_category.to_string(),
                p.p_adjusted.to_string(),
            ]
        })
        .collect();
    if let Ok(path) = save_csv(
        "fig4",
        &["metric", "model_a", "model_b", "same_category", "p_adj"],
        &csv_rows,
    ) {
        println!("all pairwise cells written to {path}");
    }
}
