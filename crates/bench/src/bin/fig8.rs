//! Fig. 8: time-resistance analysis — train on Oct 2023 – Jan 2024, test on
//! nine monthly windows (Feb – Oct 2024), with the AUT stability metric.

use phishinghook_bench::banner;
use phishinghook_core::experiments::{time_resistance, ExperimentScale};
use phishinghook_core::report::{pct, render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 8 (time-resistance / temporal decay)", &scale);

    let result = time_resistance::run(&scale);
    let mut csv_rows = Vec::new();
    for curve in &result.curves {
        println!("{} — AUT(F1, phishing) = {:.2}", curve.model, curve.aut_f1);
        let rows: Vec<Vec<String>> = curve
            .months
            .iter()
            .enumerate()
            .map(|(i, m)| {
                csv_rows.push(vec![
                    curve.model.to_owned(),
                    m.month.to_string(),
                    m.phishing.precision.to_string(),
                    m.phishing.recall.to_string(),
                    m.phishing.f1.to_string(),
                    m.benign.f1.to_string(),
                ]);
                vec![
                    format!("{} ({})", i + 1, m.month),
                    pct(m.phishing.precision),
                    pct(m.phishing.recall),
                    pct(m.phishing.f1),
                    pct(m.benign.f1),
                    m.n_samples.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Period",
                    "Phish P%",
                    "Phish R%",
                    "Phish F1%",
                    "Benign F1%",
                    "n"
                ],
                &rows
            )
        );
    }
    println!("paper AUTs: Random Forest 0.89, SCSGuard 0.84, ECA+EfficientNet 0.79");
    println!("expected shape: stable detection with a slight decay from evolving patterns;");
    println!("Random Forest most stable, ECA+EfficientNet most fluctuating.");

    if let Ok(path) = save_csv(
        "fig8",
        &[
            "model",
            "month",
            "phish_precision",
            "phish_recall",
            "phish_f1",
            "benign_f1",
        ],
        &csv_rows,
    ) {
        println!("curves written to {path}");
    }
}
