//! Dataset-difficulty calibration tool (not a paper figure).
//!
//! Trains the seven HSC models on one fold of a corpus at the requested
//! scale and prints held-out accuracy, so the corpus generator's difficulty
//! knobs can be tuned to land in the paper's band (RF ≈ 93-94%,
//! LogReg ≈ 84%).

use phishinghook_core::cv::stratified_kfold;
use phishinghook_core::experiments::ExperimentScale;
use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_models::{Detector, DetectorRegistry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    let hard_rate = args
        .iter()
        .position(|a| a == "--hard")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);

    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed,
        hard_example_rate: hard_rate,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();
    let folds = stratified_kfold(&labels, scale.folds, scale.seed);
    let fold = &folds[0];
    println!(
        "calibration: {} contracts, hard_rate {hard_rate}, fold 1/{}",
        scale.n_contracts, scale.folds
    );

    let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
    let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
    let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
    let test_y: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();

    if args.iter().any(|a| a == "--sweep") {
        sweep(&train_x, &train_y, &test_x, &test_y, scale.seed);
        return;
    }

    let registry = DetectorRegistry::global();
    for spec in registry.hsc_specs() {
        let mut det = registry.build(&spec, scale.seed);
        let name = det.name().to_owned();
        det.fit(&train_x, &train_y);
        let m = BinaryMetrics::from_predictions(&det.predict(&test_x), &test_y);
        println!(
            "  {name:<20} acc {:.2}%  f1 {:.2}%",
            m.accuracy * 100.0,
            m.f1 * 100.0
        );
    }
}

/// Hyperparameter sweep for the weaker HSCs (SVM's kernel width / budget,
/// kNN's k).
fn sweep(train_x: &[&[u8]], train_y: &[usize], test_x: &[&[u8]], test_y: &[usize], seed: u64) {
    use phishinghook_features::HistogramExtractor;
    use phishinghook_ml::classical::svm::RbfSvmConfig;
    use phishinghook_ml::{Classifier, KNearestNeighbors, RbfSvm};

    let extractor = HistogramExtractor::fit(train_x);
    let xtr = extractor.transform(train_x);
    let xte = extractor.transform(test_x);
    let d = extractor.n_features() as f64;
    println!("d = {d}");

    for gamma_scale in [0.1, 0.3, 1.0, 3.0] {
        for (nc, epochs, lambda) in [
            (512usize, 60usize, 1e-5f64),
            (768, 120, 1e-4),
            (768, 120, 1e-6),
        ] {
            let mut svm = RbfSvm::new(RbfSvmConfig {
                gamma: Some(gamma_scale / d),
                n_components: nc,
                epochs,
                lambda,
                seed,
            });
            svm.fit(&xtr, train_y);
            let m = BinaryMetrics::from_predictions(&svm.predict(&xte), test_y);
            println!(
                "  SVM γ={gamma_scale}/d nc={nc} ep={epochs} λ={lambda:.0e}: acc {:.2}%",
                m.accuracy * 100.0
            );
        }
    }
    for k in [3usize, 5, 7, 9, 15] {
        let mut knn = KNearestNeighbors::new(k);
        knn.fit(&xtr, train_y);
        let m = BinaryMetrics::from_predictions(&knn.predict(&xte), test_y);
        println!("  kNN k={k}: acc {:.2}%", m.accuracy * 100.0);
    }
}

// Appended: SVM/kNN sweep entry point (invoked with `--sweep`). Kept in the
// calibration tool so dataset-difficulty and model-hyperparameter tuning
// live in one place.
