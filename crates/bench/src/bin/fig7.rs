//! Fig. 7: training and inference time of the best models per data split.

use phishinghook_bench::banner;
use phishinghook_core::experiments::{scalability, ExperimentScale};
use phishinghook_core::report::{render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 7 (training/inference time per data split)", &scale);

    let result = scalability::run(&scale);
    let rows: Vec<Vec<String>> = result
        .measurements
        .iter()
        .map(|m| {
            vec![
                m.model.to_owned(),
                format!("{:.2}", m.split),
                format!("{:.3}", m.train_secs),
                format!("{:.4}", m.infer_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Model", "Split", "Train (s)", "Infer (s)"], &rows)
    );

    // The paper's cost narrative: SCSGuard's costs dominate and grow with
    // the data; Random Forest stays flat and cheap.
    let avg = |model: &str, f: fn(&scalability::SplitMeasurement) -> f64| -> f64 {
        let xs: Vec<f64> = result
            .measurements
            .iter()
            .filter(|m| m.model == model)
            .map(f)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let rf_train = avg("Random Forest", |m| m.train_secs);
    let scs_train = avg("SCSGuard", |m| m.train_secs);
    let eca_train = avg("ECA+EfficientNet", |m| m.train_secs);
    println!(
        "mean training time — SCSGuard {:.2}s vs Random Forest {:.3}s ({:+.1}%) and ECA+EfficientNet {:.2}s ({:+.1}%)",
        scs_train,
        rf_train,
        (scs_train / rf_train - 1.0) * 100.0,
        eca_train,
        (scs_train / eca_train - 1.0) * 100.0,
    );
    println!("paper: SCSGuard +64733% vs RF and +1031% vs ECA+EfficientNet on training time");
    println!("expected shape: SCSGuard ≫ ECA+EfficientNet ≫ Random Forest, growing with split");

    let _ = save_csv(
        "fig7",
        &["model", "split", "train_secs", "infer_secs"],
        &result
            .measurements
            .iter()
            .map(|m| {
                vec![
                    m.model.to_owned(),
                    m.split.to_string(),
                    m.train_secs.to_string(),
                    m.infer_secs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
