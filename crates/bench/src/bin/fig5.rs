//! Fig. 5: performance metrics of the best model per category across data
//! splits (1/3, 2/3, 3/3).

use phishinghook_bench::banner;
use phishinghook_core::experiments::{scalability, ExperimentScale};
use phishinghook_core::report::{pct, render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 5 (scalability: metrics per data split)", &scale);

    let result = scalability::run(&scale);
    let rows: Vec<Vec<String>> = result
        .measurements
        .iter()
        .map(|m| {
            vec![
                m.model.to_owned(),
                format!("{:.2}", m.split),
                pct(m.metrics.accuracy),
                pct(m.metrics.precision),
                pct(m.metrics.recall),
                pct(m.metrics.f1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Model", "Split", "Acc%", "Prec%", "Rec%", "F1%"], &rows)
    );
    println!("expected shape: Random Forest best and stable across splits;");
    println!("SCSGuard and ECA+EfficientNet improve as the split grows.");

    let _ = save_csv(
        "fig5",
        &["model", "split", "accuracy", "precision", "recall", "f1"],
        &result
            .measurements
            .iter()
            .map(|m| {
                vec![
                    m.model.to_owned(),
                    m.split.to_string(),
                    m.metrics.accuracy.to_string(),
                    m.metrics.precision.to_string(),
                    m.metrics.recall.to_string(),
                    m.metrics.f1.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
