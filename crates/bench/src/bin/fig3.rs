//! Fig. 3: distribution of contracts by per-opcode usage, for the 20 most
//! influential opcodes — the paper's point being that benign and phishing
//! contracts use opcodes at similar rates.

use phishinghook_bench::banner;
use phishinghook_core::experiments::{dataset_stats, ExperimentScale};
use phishinghook_core::report::{render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 3 (opcode usage by class)", &scale);

    let stats = dataset_stats::run(&scale);
    let rows: Vec<Vec<String>> = stats
        .usage
        .iter()
        .map(|r| {
            let fmt = |(q1, q2, q3): (f64, f64, f64)| format!("{q1:.0}/{q2:.0}/{q3:.0}");
            vec![
                r.opcode.to_owned(),
                fmt(r.benign_quartiles),
                fmt(r.phishing_quartiles),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Opcode", "Benign q1/med/q3", "Phishing q1/med/q3"], &rows)
    );
    println!("expected shape: heavily overlapping distributions — no single opcode's");
    println!("frequency separates the classes (the paper's motivation for ML models).");

    let csv_rows: Vec<Vec<String>> = stats
        .usage
        .iter()
        .map(|r| {
            vec![
                r.opcode.to_owned(),
                r.benign_quartiles.0.to_string(),
                r.benign_quartiles.1.to_string(),
                r.benign_quartiles.2.to_string(),
                r.phishing_quartiles.0.to_string(),
                r.phishing_quartiles.1.to_string(),
                r.phishing_quartiles.2.to_string(),
            ]
        })
        .collect();
    if let Ok(path) = save_csv(
        "fig3",
        &[
            "opcode",
            "benign_q1",
            "benign_med",
            "benign_q3",
            "phish_q1",
            "phish_med",
            "phish_q3",
        ],
        &csv_rows,
    ) {
        println!("distributions written to {path}");
    }
}
