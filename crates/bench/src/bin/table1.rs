//! Table I: EVM opcodes for the Shanghai fork.
//!
//! Prints the registry rows the paper excerpts (STOP, ADD, MUL, …, REVERT,
//! INVALID, SELFDESTRUCT) plus the full 144-opcode count, and writes the
//! complete registry to `results/table1.csv`.

use phishinghook_core::report::{render_table, save_csv};
use phishinghook_evm::opcode::SHANGHAI_OPCODES;

fn main() {
    println!("PhishingHook reproduction — Table I (Shanghai opcode registry)\n");

    let rows: Vec<Vec<String>> = SHANGHAI_OPCODES
        .iter()
        .map(|o| {
            vec![
                format!("0x{:02X}", o.byte),
                o.mnemonic.to_owned(),
                o.gas.to_string(),
                o.description.to_owned(),
            ]
        })
        .collect();

    // The paper's excerpt rows.
    let excerpt: Vec<Vec<String>> = rows
        .iter()
        .filter(|r| ["0x00", "0x01", "0x02", "0xFD", "0xFE", "0xFF"].contains(&r[0].as_str()))
        .cloned()
        .collect();
    println!(
        "{}",
        render_table(&["Opcode", "Name", "Gas", "Description"], &excerpt)
    );
    println!(
        "Defined opcodes at Shanghai: {} (paper: 144)",
        SHANGHAI_OPCODES.len()
    );

    match save_csv("table1", &["opcode", "name", "gas", "description"], &rows) {
        Ok(path) => println!("full registry written to {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
