//! Fig. 9: SHAP values of the best classifier (Random Forest HSC) — the 20
//! most influential opcodes and the usage-direction reading (e.g., low GAS
//! usage pushes toward phishing).

use phishinghook_bench::banner;
use phishinghook_core::experiments::{shap_analysis, ExperimentScale};
use phishinghook_core::report::{render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Fig. 9 (TreeSHAP of the Random Forest HSC)", &scale);

    let analysis = shap_analysis::run(&scale);
    println!(
        "base value (mean phishing probability): {:.4}; {} samples explained; max additivity residual {:.1e}\n",
        analysis.base_value, analysis.n_explained, analysis.max_additivity_error
    );

    let rows: Vec<Vec<String>> = analysis
        .top
        .iter()
        .map(|o| {
            let direction = if o.low_usage_mean_shap > o.high_usage_mean_shap {
                "low usage → phishing"
            } else {
                "high usage → phishing"
            };
            vec![
                o.opcode.to_owned(),
                format!("{:.4}", o.mean_abs_shap),
                format!("{:+.4}", o.low_usage_mean_shap),
                format!("{:+.4}", o.high_usage_mean_shap),
                direction.to_owned(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Opcode",
                "mean |SHAP|",
                "SHAP @low use",
                "SHAP @high use",
                "Reading"
            ],
            &rows
        )
    );
    println!("paper's headline reading: contracts that rarely use GAS look suspicious —");
    println!("benign code checks available gas before external calls; drainers don't.");

    let _ = save_csv(
        "fig9",
        &[
            "opcode",
            "mean_abs_shap",
            "low_usage_mean_shap",
            "high_usage_mean_shap",
        ],
        &analysis
            .top
            .iter()
            .map(|o| {
                vec![
                    o.opcode.to_owned(),
                    o.mean_abs_shap.to_string(),
                    o.low_usage_mean_shap.to_string(),
                    o.high_usage_mean_shap.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
