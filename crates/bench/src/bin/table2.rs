//! Table II: averaged performance metrics for all 16 models, paper vs
//! measured, with category means. Writes per-trial results to
//! `results/table2_trials.csv` (reused by the `table3` and `fig4` binaries).

use phishinghook_bench::{banner, trials_to_csv};
use phishinghook_core::experiments::main_eval::{self, PAPER_TABLE2};
use phishinghook_core::experiments::ExperimentScale;
use phishinghook_core::report::{pct, render_table, save_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("Table II (16 models × 4 metrics)", &scale);
    println!(
        "(deep models train from scratch on CPU; use `--scale paper` for the full protocol)\n"
    );

    let evaluation = main_eval::run(&scale);

    let mut rows = Vec::new();
    for summary in &evaluation.summaries {
        let paper = PAPER_TABLE2
            .iter()
            .find(|(name, ..)| *name == summary.model);
        let m = &summary.metrics;
        rows.push(vec![
            summary.model.clone(),
            format!("{}", summary.category),
            pct(m.accuracy),
            pct(m.f1),
            pct(m.precision),
            pct(m.recall),
            paper.map_or("-".into(), |(_, acc, ..)| format!("{acc:.2}")),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Category",
                "Acc%",
                "F1%",
                "Prec%",
                "Rec%",
                "Paper Acc%"
            ],
            &rows
        )
    );

    println!("category mean accuracy (expected ordering: HSC > LM > VM >> ESCORT):");
    for (cat, mean) in main_eval::category_means(&evaluation.summaries) {
        println!("  {cat}: {}", pct(mean));
    }
    let best = evaluation
        .summaries
        .iter()
        .max_by(|a, b| {
            a.metrics
                .accuracy
                .partial_cmp(&b.metrics.accuracy)
                .expect("finite")
        })
        .expect("non-empty");
    println!(
        "\nbest model: {} at {}% (paper: Random Forest at 93.63%)",
        best.model,
        pct(best.metrics.accuracy)
    );

    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write(
            "results/table2_trials.csv",
            trials_to_csv(&evaluation.trials),
        ) {
            Ok(()) => println!("per-trial results written to results/table2_trials.csv"),
            Err(e) => eprintln!("could not write trials: {e}"),
        }
    }
    let _ = save_csv(
        "table2",
        &["model", "category", "accuracy", "f1", "precision", "recall"],
        &evaluation
            .summaries
            .iter()
            .map(|s| {
                vec![
                    s.model.clone(),
                    s.category.to_string(),
                    s.metrics.accuracy.to_string(),
                    s.metrics.f1.to_string(),
                    s.metrics.precision.to_string(),
                    s.metrics.recall.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
