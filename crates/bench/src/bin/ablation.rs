//! Ablation studies for the design choices DESIGN.md calls out (not a paper
//! figure):
//!
//! 1. **Deduplication** — the paper trains on deduplicated bytecodes. What
//!    happens if the raw (clone-inclusive) phishing stream is used instead?
//!    (Expected: inflated accuracy through near-duplicate leakage.)
//! 2. **Dataset difficulty** — Random Forest accuracy across
//!    `hard_example_rate`, the corpus' irreducible-error knob.
//! 3. **Histogram normalization** — the paper feeds *raw* counts; compare
//!    against L1-normalized histograms.
//! 4. **Label noise** — the paper treats Etherscan's "Phish/Hack" flag as
//!    ground truth; how much accuracy is lost if the oracle misses part of
//!    the phishing population (community labeling lag)?

use phishinghook_bench::banner;
use phishinghook_core::cv::stratified_kfold;
use phishinghook_core::experiments::ExperimentScale;
use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_data::{
    extract_labeled_bytecodes, Corpus, CorpusConfig, Label, LabelOracle, SimulatedChain,
};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, Matrix, RandomForest};

fn rf_accuracy(
    x_train: &Matrix,
    y_train: &[usize],
    x_test: &Matrix,
    y_test: &[usize],
    seed: u64,
) -> f64 {
    let mut forest = RandomForest::new(ForestConfig {
        n_trees: 60,
        seed,
        ..Default::default()
    });
    forest.fit(x_train, y_train);
    BinaryMetrics::from_predictions(&forest.predict(x_test), y_test).accuracy
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(&args);
    banner("ablations (dedup / difficulty / normalization)", &scale);

    // --- 1. Deduplication ---------------------------------------------
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed,
        ..Default::default()
    });
    // Deduplicated baseline.
    let (codes, labels) = corpus.as_dataset();
    let folds = stratified_kfold(&labels, 5, scale.seed);
    let fold = &folds[0];
    let fit_eval = |codes: &[&[u8]], labels: &[usize], train: &[usize], test: &[usize]| -> f64 {
        let train_x: Vec<&[u8]> = train.iter().map(|&i| codes[i]).collect();
        let train_y: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let test_x: Vec<&[u8]> = test.iter().map(|&i| codes[i]).collect();
        let test_y: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        let ex = HistogramExtractor::fit(&train_x);
        rf_accuracy(
            &ex.transform(&train_x),
            &train_y,
            &ex.transform(&test_x),
            &test_y,
            scale.seed,
        )
    };
    let dedup_acc = fit_eval(&codes, &labels, &fold.train, &fold.test);

    // Clone-inclusive variant: phishing side drawn from raw deployments.
    let mut raw_codes: Vec<&[u8]> = Vec::new();
    let mut raw_labels: Vec<usize> = Vec::new();
    for r in corpus.raw_phishing.iter().take(corpus.benign().count()) {
        raw_codes.push(&r.bytecode);
        raw_labels.push(1);
    }
    for r in corpus.benign() {
        raw_codes.push(&r.bytecode);
        raw_labels.push(Label::Benign.as_index());
    }
    let raw_folds = stratified_kfold(&raw_labels, 5, scale.seed);
    let raw_acc = fit_eval(
        &raw_codes,
        &raw_labels,
        &raw_folds[0].train,
        &raw_folds[0].test,
    );
    println!("1. deduplication ablation (Random Forest, one fold):");
    println!("   deduplicated corpus:     {:.2}%", dedup_acc * 100.0);
    println!(
        "   clone-inclusive corpus:  {:.2}%  ← inflated by duplicate leakage",
        raw_acc * 100.0
    );
    println!("   (the paper dedups 17,455 → 3,458 precisely to avoid this)\n");

    // --- 2. Dataset difficulty knob ------------------------------------
    println!("2. difficulty knob (hard_example_rate → RF accuracy):");
    for hard in [0.0, 0.15, 0.30, 0.45, 0.60] {
        let c = Corpus::generate(&CorpusConfig {
            n_contracts: scale.n_contracts,
            seed: scale.seed ^ 0xAB1,
            hard_example_rate: hard,
            ..Default::default()
        });
        let (codes, labels) = c.as_dataset();
        let folds = stratified_kfold(&labels, 5, scale.seed);
        let acc = fit_eval(&codes, &labels, &folds[0].train, &folds[0].test);
        println!("   hard_rate {hard:.2} → {:.2}%", acc * 100.0);
    }
    println!("   (0.30 is the calibrated default landing in the paper's ≈90-94% band)\n");

    // --- 3. Histogram normalization -------------------------------------
    let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
    let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
    let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
    let test_y: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
    let ex = HistogramExtractor::fit(&train_x);
    let normalize = |m: &Matrix| -> Matrix {
        let rows: Vec<Vec<f64>> = m
            .iter_rows()
            .map(|r| {
                let total: f64 = r.iter().sum::<f64>().max(1.0);
                r.iter().map(|v| v / total).collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    };
    let raw_feats = rf_accuracy(
        &ex.transform(&train_x),
        &train_y,
        &ex.transform(&test_x),
        &test_y,
        scale.seed,
    );
    let norm_feats = rf_accuracy(
        &normalize(&ex.transform(&train_x)),
        &train_y,
        &normalize(&ex.transform(&test_x)),
        &test_y,
        scale.seed,
    );
    println!("3. histogram normalization (Random Forest, one fold):");
    println!("   raw counts (paper's choice): {:.2}%", raw_feats * 100.0);
    println!("   L1-normalized:               {:.2}%", norm_feats * 100.0);
    println!("   (trees are scale-invariant per split, but raw counts retain");
    println!("    contract-length information that normalization discards)\n");

    // --- 4. Label noise --------------------------------------------------
    println!("4. oracle label noise (phishing miss rate → RF held-out accuracy");
    println!("   against *true* labels; training labels come from the noisy oracle):");
    let chain = SimulatedChain::from_records(&corpus.records);
    let addresses: Vec<[u8; 20]> = corpus.records.iter().map(|r| r.address).collect();
    for miss in [0.0, 0.1, 0.2, 0.35] {
        let oracle = LabelOracle::from_records(&corpus.records).with_noise(miss, 0.0, 0xBAD);
        let labeled = extract_labeled_bytecodes(&chain, &oracle, &addresses);
        let noisy_labels: Vec<usize> = labeled.iter().map(|(_, l)| l.as_index()).collect();
        let noisy_codes: Vec<&[u8]> = labeled.iter().map(|(c, _)| c.as_slice()).collect();
        let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| noisy_codes[i]).collect();
        let train_y: Vec<usize> = fold.train.iter().map(|&i| noisy_labels[i]).collect();
        let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
        let test_y: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
        let ex = HistogramExtractor::fit(&train_x);
        let acc = rf_accuracy(
            &ex.transform(&train_x),
            &train_y,
            &ex.transform(&test_x),
            &test_y,
            scale.seed,
        );
        println!("   miss rate {miss:.2} → {:.2}%", acc * 100.0);
    }
    println!("   (forest voting absorbs moderate label noise — relevant because");
    println!("    ChainAbuse-style sources are 'currently proven to be biased')");
}
