//! Closed- and open-loop load generators over the chain firehose.
//!
//! Both loops drive a [`Scheduler`] in process through the same JSONL
//! `Connection`/`Responses` seam the TCP transport uses, with traffic
//! drawn from [`ChainFirehose`] — Zipf-skewed template redeploys, the
//! workload the verdict cache and the shard router were built for.
//!
//! * **Closed loop** — each logical client keeps exactly one request in
//!   flight and submits with [`Admission::Block`]. Offered load tracks
//!   capacity, so the numbers answer "how fast can N clients go?".
//! * **Open loop** — requests are released on a fixed wall-clock
//!   schedule (`t_i = t0 + i/rate`) with [`Admission::Shed`], whether or
//!   not earlier responses came back. Offered load does *not* slow down
//!   when the server does, so the tail quantiles answer the paper's
//!   deployment question: what does a chain watcher see under overload?
//!   `rate = f64::INFINITY` removes the pacing entirely — maximum
//!   pressure, every refusal typed.
//!
//! A few thousand logical clients multiplex onto a handful of generator
//! OS threads; per-connection response ordering pairs each response with
//! the submit timestamp at the front of that client's deque, so latency
//! needs no request IDs.

use phishinghook_data::firehose::{ChainFirehose, FirehoseConfig};
use phishinghook_evm::keccak::to_hex;
use phishinghook_serve::{
    Admission, Connection, PolledResponse, Protocol, ResponseKind, Responses, Scheduler,
    SubmitOutcome,
};
use std::collections::VecDeque;
use std::time::Instant;

/// Shape of one load-generation run (see [`run_load`]).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Logical clients (each its own scheduler connection).
    pub clients: usize,
    /// Generator OS threads the clients multiplex onto.
    pub generators: usize,
    /// Requests each logical client submits.
    pub requests_per_client: usize,
    /// Open loop: total offered rate in requests/second across all
    /// generators; `f64::INFINITY` disables pacing (maximum pressure).
    /// Ignored by the closed loop.
    pub rate: f64,
    /// `true` for the open loop (Shed + schedule), `false` for the
    /// closed loop (Block + one in flight per client).
    pub open_loop: bool,
    /// Distinct bytecode templates in the firehose pool.
    pub templates: usize,
    /// Zipf skew exponent over template ranks (`0.0` = uniform).
    pub skew: f64,
    /// Seed for the (deterministic) traffic streams.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 64,
            generators: 4,
            requests_per_client: 32,
            rate: f64::INFINITY,
            open_loop: true,
            templates: 16,
            skew: 1.1,
            seed: 0x10AD,
        }
    }
}

/// What one [`run_load`] call measured.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadReport {
    /// Submit calls that expect a response (everything but blank lines).
    pub sent: u64,
    /// Responses typed [`ResponseKind::Verdict`].
    pub verdicts: u64,
    /// Typed overload refusals (open loop under pressure).
    pub overloads: u64,
    /// Malformed/unresolvable-request errors. The generators only send
    /// well-formed hex, so anything nonzero here is a serving bug.
    pub errors: u64,
    /// Deadline expiries ([`ResponseKind::Timeout`]).
    pub timeouts: u64,
    /// Worker-panic responses ([`ResponseKind::Internal`]).
    pub internals: u64,
    /// Wall-clock duration of the run.
    pub secs: f64,
    /// Verdicts per second of wall clock.
    pub throughput: f64,
    /// Median verdict latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile verdict latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile verdict latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile verdict latency, milliseconds.
    pub p999_ms: f64,
}

/// One logical client: a connection, its pending submit timestamps
/// (front pairs with the next response — per-connection ordering), and a
/// cursor into its pre-generated request list.
struct Client {
    conn: Connection,
    responses: Responses,
    pending: VecDeque<Instant>,
    requests: Vec<String>,
    next: usize,
}

impl Client {
    fn done_sending(&self) -> bool {
        self.next >= self.requests.len()
    }

    /// Submits the client's next request; returns `false` once the
    /// scheduler has disconnected (shutdown mid-run).
    fn submit_next(&mut self, admission: Admission, tally: &mut Tally) -> bool {
        let line = &self.requests[self.next];
        self.next += 1;
        let now = Instant::now();
        match self.conn.submit(line, admission) {
            SubmitOutcome::Ignored => {}
            SubmitOutcome::Disconnected => return false,
            // Every other outcome produces exactly one response line.
            _ => {
                tally.sent += 1;
                self.pending.push_back(now);
            }
        }
        true
    }

    /// Drains every response routed so far, classifying and timing each.
    fn drain(&mut self, latencies: &mut Vec<f64>, tally: &mut Tally) {
        while let PolledResponse::Ready(_, kind) = self.responses.poll() {
            let submitted = self
                .pending
                .pop_front()
                .expect("response without a pending submit");
            match kind {
                ResponseKind::Verdict => {
                    tally.verdicts += 1;
                    latencies.push(submitted.elapsed().as_secs_f64() * 1e3);
                }
                ResponseKind::Overload => tally.overloads += 1,
                ResponseKind::Timeout => tally.timeouts += 1,
                ResponseKind::Internal => tally.internals += 1,
                ResponseKind::Error | ResponseKind::Inline => tally.errors += 1,
            }
        }
    }
}

#[derive(Default)]
struct Tally {
    sent: u64,
    verdicts: u64,
    overloads: u64,
    errors: u64,
    timeouts: u64,
    internals: u64,
}

/// Builds one generator's client set: each client gets its own
/// connection and a pre-rendered request list drawn from a firehose
/// seeded per generator (streams are disjoint and deterministic).
fn build_clients(scheduler: &Scheduler, cfg: &LoadConfig, generator: usize) -> Vec<Client> {
    let mine = (0..cfg.clients)
        .filter(|c| c % cfg.generators.max(1) == generator)
        .count();
    let firehose = ChainFirehose::generate(&FirehoseConfig {
        templates: cfg.templates.max(1),
        seed: cfg.seed.wrapping_add(generator as u64),
        skew: cfg.skew,
        ..FirehoseConfig::default()
    });
    let mut events = firehose.take(mine * cfg.requests_per_client);
    (0..mine)
        .map(|_| {
            let (conn, responses) = scheduler.connect(Protocol::V1);
            let requests = (0..cfg.requests_per_client)
                .map(|_| {
                    let event = events.next().expect("firehose is infinite");
                    format!("0x{}", to_hex(&event.bytecode))
                })
                .collect();
            Client {
                conn,
                responses,
                pending: VecDeque::new(),
                requests,
                next: 0,
            }
        })
        .collect()
}

/// Runs one generator thread's loop and returns its tally + latencies.
fn generate(scheduler: &Scheduler, cfg: &LoadConfig, generator: usize) -> (Tally, Vec<f64>) {
    let mut clients = build_clients(scheduler, cfg, generator);
    let mut tally = Tally::default();
    let mut latencies = Vec::new();
    let admission = if cfg.open_loop {
        Admission::Shed
    } else {
        Admission::Block
    };
    // The open-loop schedule: this generator owns a 1/generators slice of
    // the total offered rate; request i is due at t0 + i/slice.
    let per_gen_rate = cfg.rate / cfg.generators.max(1) as f64;
    let start = Instant::now();
    let mut released = 0usize;
    let mut cursor = 0usize;
    loop {
        let mut live = false;
        let mut progressed = false;
        if cfg.open_loop {
            // Release every request whose scheduled time has passed,
            // round-robin across clients — offered load never waits for
            // responses.
            let due = if per_gen_rate.is_finite() {
                ((start.elapsed().as_secs_f64() * per_gen_rate) as usize).saturating_add(1)
            } else {
                usize::MAX
            };
            let mut scanned = 0;
            while released < due && scanned < clients.len() {
                let index = cursor % clients.len();
                let client = &mut clients[index];
                cursor += 1;
                if client.done_sending() {
                    scanned += 1;
                    continue;
                }
                scanned = 0;
                if client.submit_next(admission, &mut tally) {
                    released += 1;
                    progressed = true;
                }
            }
        }
        for client in &mut clients {
            if !cfg.open_loop && client.pending.is_empty() && !client.done_sending() {
                // Closed loop: exactly one in flight per client.
                client.submit_next(admission, &mut tally);
                progressed = true;
            }
            let before = client.pending.len();
            client.drain(&mut latencies, &mut tally);
            progressed |= client.pending.len() != before;
            live |= !client.done_sending() || !client.pending.is_empty();
        }
        if !live {
            break;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    (tally, latencies)
}

/// The unique bytecodes a [`run_load`] call with `cfg` can ever serve:
/// the per-generator firehose streams are deterministic, so replaying
/// them (dedup'd by code hash) yields exactly the run's working set —
/// the set to pre-warm when a measurement wants pure cache-hit traffic,
/// and the set to bit-check verdicts against afterwards.
pub fn unique_codes(cfg: &LoadConfig) -> Vec<Vec<u8>> {
    let mut digests: Vec<[u8; 32]> = Vec::new();
    let mut codes: Vec<Vec<u8>> = Vec::new();
    for generator in 0..cfg.generators.max(1) {
        let mine = (0..cfg.clients)
            .filter(|c| c % cfg.generators.max(1) == generator)
            .count();
        let firehose = ChainFirehose::generate(&FirehoseConfig {
            templates: cfg.templates.max(1),
            seed: cfg.seed.wrapping_add(generator as u64),
            skew: cfg.skew,
            ..FirehoseConfig::default()
        });
        for event in firehose.take(mine * cfg.requests_per_client) {
            let digest = event.code_hash().0;
            if !digests.contains(&digest) {
                digests.push(digest);
                codes.push(event.bytecode);
            }
        }
    }
    codes
}

/// Pre-warms every unique code the run will draw through one lossless
/// connection, so a following [`run_load`] pass is cache-hit dominated.
pub fn warm_caches(scheduler: &Scheduler, cfg: &LoadConfig) -> usize {
    let codes = unique_codes(cfg);
    let (mut conn, responses) = scheduler.connect(Protocol::V1);
    for code in &codes {
        conn.submit(&format!("0x{}", to_hex(code)), Admission::Block);
    }
    conn.finish();
    assert_eq!(
        responses.iter().count(),
        codes.len(),
        "warm-up must answer every unique code"
    );
    codes.len()
}

/// Linear-interpolated percentile over an already-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    let frac = rank - low as f64;
    sorted[low] + (sorted[high] - sorted[low]) * frac
}

/// Drives `scheduler` with `cfg.generators` concurrent load-generator
/// threads and aggregates their tallies into one [`LoadReport`].
pub fn run_load(scheduler: &Scheduler, cfg: &LoadConfig) -> LoadReport {
    let start = Instant::now();
    let per_generator: Vec<(Tally, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.generators.max(1))
            .map(|g| scope.spawn(move || generate(scheduler, cfg, g)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("generator thread"))
            .collect()
    });
    let secs = start.elapsed().as_secs_f64();

    let mut tally = Tally::default();
    let mut latencies = Vec::new();
    for (t, mut l) in per_generator {
        tally.sent += t.sent;
        tally.verdicts += t.verdicts;
        tally.overloads += t.overloads;
        tally.errors += t.errors;
        tally.timeouts += t.timeouts;
        tally.internals += t.internals;
        latencies.append(&mut l);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LoadReport {
        sent: tally.sent,
        verdicts: tally.verdicts,
        overloads: tally.overloads,
        errors: tally.errors,
        timeouts: tally.timeouts,
        internals: tally.internals,
        secs,
        throughput: if secs > 0.0 {
            tally.verdicts as f64 / secs
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 50.0),
        p90_ms: percentile(&latencies, 90.0),
        p99_ms: percentile(&latencies, 99.0),
        p999_ms: percentile(&latencies, 99.9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_serve::{fixture, SchedulerOptions};

    fn scheduler(shards: usize) -> Scheduler {
        Scheduler::new(
            fixture::rf_scanner(),
            &SchedulerOptions {
                shards,
                workers: 1,
                batch: 8,
                ..SchedulerOptions::default()
            },
        )
    }

    #[test]
    fn closed_loop_accounts_for_every_request() {
        let scheduler = scheduler(2);
        let cfg = LoadConfig {
            clients: 8,
            generators: 2,
            requests_per_client: 16,
            open_loop: false,
            ..LoadConfig::default()
        };
        let report = run_load(&scheduler, &cfg);
        assert_eq!(report.sent, 8 * 16);
        // Closed loop + Block: nothing is shed, nothing errors.
        assert_eq!(report.verdicts, 8 * 16);
        assert_eq!(
            report.overloads + report.errors + report.timeouts + report.internals,
            0
        );
        assert!(report.throughput > 0.0);
        assert!(report.p50_ms <= report.p99_ms && report.p99_ms <= report.p999_ms);
        scheduler.shutdown();
    }

    #[test]
    fn open_loop_overload_is_typed_never_lost() {
        let scheduler = scheduler(1);
        let cfg = LoadConfig {
            clients: 16,
            generators: 2,
            requests_per_client: 32,
            rate: f64::INFINITY,
            open_loop: true,
            ..LoadConfig::default()
        };
        let report = run_load(&scheduler, &cfg);
        // Every submit got exactly one response: a verdict or a typed
        // overload — never a silent drop, never an untyped error.
        assert_eq!(report.sent, 16 * 32);
        assert_eq!(report.verdicts + report.overloads, report.sent);
        assert_eq!(report.errors + report.timeouts + report.internals, 0);
        assert!(report.verdicts > 0, "overload shed everything");
        scheduler.shutdown();
    }

    #[test]
    fn traffic_is_deterministic_per_seed() {
        let cfg = LoadConfig::default();
        let scheduler = scheduler(2);
        let a: Vec<String> = build_clients(&scheduler, &cfg, 0)
            .into_iter()
            .flat_map(|c| c.requests)
            .collect();
        let b: Vec<String> = build_clients(&scheduler, &cfg, 0)
            .into_iter()
            .flat_map(|c| c.requests)
            .collect();
        assert_eq!(a, b);
        // Distinct generators draw disjoint streams (different seeds).
        let other: Vec<String> = build_clients(&scheduler, &cfg, 1)
            .into_iter()
            .flat_map(|c| c.requests)
            .collect();
        assert_ne!(a, other);
        scheduler.shutdown();
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 4.0);
        assert_eq!(percentile(&sorted, 50.0), 2.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
