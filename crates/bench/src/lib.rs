//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! The interesting entry points are the binaries in `src/bin/` — one per
//! paper table/figure (`table1`, `fig2`, `fig3`, `table2`, `table3`,
//! `fig4`–`fig9`) — and the benches in `benches/`.
//!
//! Heavy experiments share work through `results/table2_trials.csv`: the
//! `table2` binary writes the per-trial results, and `table3`/`fig4` reuse
//! them when present instead of retraining all 16 models.

use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_core::pipeline::TrialResult;
use phishinghook_models::Category;

/// Prints the standard experiment banner.
pub fn banner(what: &str, scale: &phishinghook_core::experiments::ExperimentScale) {
    println!("PhishingHook reproduction — {what}");
    println!(
        "scale: {} contracts, {}-fold CV × {} run(s), seed {}",
        scale.n_contracts, scale.folds, scale.runs, scale.seed
    );
    println!();
}

/// Serializes trials into the interchange CSV used by `table3`/`fig4`.
pub fn trials_to_csv(trials: &[TrialResult]) -> String {
    let mut out = String::from(
        "model,category,run,fold,accuracy,precision,recall,f1,train_secs,infer_secs\n",
    );
    for t in trials {
        use std::fmt::Write;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            t.model,
            t.category,
            t.run,
            t.fold,
            t.metrics.accuracy,
            t.metrics.precision,
            t.metrics.recall,
            t.metrics.f1,
            t.train_secs,
            t.infer_secs
        )
        .expect("write to String");
    }
    out
}

/// Parses the interchange CSV produced by [`trials_to_csv`]; returns `None`
/// on any malformed row.
pub fn trials_from_csv(text: &str) -> Option<Vec<TrialResult>> {
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 10 {
            return None;
        }
        let category = match cols[1] {
            "Histogram" => Category::Histogram,
            "Vision" => Category::Vision,
            "Language" => Category::Language,
            "Vulnerability" => Category::VulnerabilityDetection,
            _ => return None,
        };
        out.push(TrialResult {
            model: cols[0].to_owned(),
            category,
            run: cols[2].parse().ok()?,
            fold: cols[3].parse().ok()?,
            metrics: BinaryMetrics {
                accuracy: cols[4].parse().ok()?,
                precision: cols[5].parse().ok()?,
                recall: cols[6].parse().ok()?,
                f1: cols[7].parse().ok()?,
            },
            train_secs: cols[8].parse().ok()?,
            infer_secs: cols[9].parse().ok()?,
        });
    }
    Some(out)
}

/// Loads cached table2 trials from `results/table2_trials.csv`, if present.
pub fn load_cached_trials() -> Option<Vec<TrialResult>> {
    let text = std::fs::read_to_string("results/table2_trials.csv").ok()?;
    let trials = trials_from_csv(&text)?;
    if trials.is_empty() {
        None
    } else {
        Some(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_roundtrip() {
        let trials = vec![TrialResult {
            model: "Random Forest".into(),
            category: Category::Histogram,
            run: 1,
            fold: 2,
            metrics: BinaryMetrics {
                accuracy: 0.9,
                precision: 0.91,
                recall: 0.89,
                f1: 0.9,
            },
            train_secs: 0.5,
            infer_secs: 0.01,
        }];
        let csv = trials_to_csv(&trials);
        let parsed = trials_from_csv(&csv).expect("parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].model, "Random Forest");
        assert_eq!(parsed[0].metrics, trials[0].metrics);
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(trials_from_csv("header\nbad,row\n").is_none());
    }
}
