//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! The interesting entry points are the binaries in `src/bin/` — one per
//! paper table/figure (`table1`, `fig2`, `fig3`, `table2`, `table3`,
//! `fig4`–`fig9`) — and the benches in `benches/`.
//!
//! Heavy experiments share work through `results/table2_trials.csv`: the
//! `table2` binary writes the per-trial results, and `table3`/`fig4` reuse
//! them when present instead of retraining all 16 models.

use phishinghook_core::metrics::BinaryMetrics;
use phishinghook_core::pipeline::TrialResult;
use phishinghook_models::Category;

pub mod load;

pub mod seed_paths {
    //! Reference implementations of the seed repository's hot paths,
    //! preserved so the perf benches and the `bench` binary always compare
    //! the optimized pipeline against the original algorithms (eagerly
    //! collected disassembly with owned operands, two-phase HashMap
    //! histogram extraction, per-row enum-node forest inference) rather
    //! than against themselves.

    use phishinghook_evm::disasm::Instruction;
    use phishinghook_evm::opcode::ShanghaiRegistry;
    use phishinghook_features::HistogramExtractor;
    use phishinghook_ml::{Matrix, RandomForest};
    use std::collections::HashMap;

    /// The seed's `disassemble`, decode loop and allocation pattern intact
    /// (registry lookup per byte, `Vec::with_capacity(code.len())`, one
    /// owned operand `Vec` per instruction). The current
    /// `disasm::disassemble` is a collecting wrapper over the streaming
    /// iterator, so the seed loop is kept here for honest baselines.
    pub fn disassemble(code: &[u8]) -> Vec<Instruction> {
        let reg = ShanghaiRegistry::shared();
        let mut out = Vec::with_capacity(code.len());
        let mut pc = 0usize;
        while pc < code.len() {
            let byte = code[pc];
            let info = reg.get(byte);
            let imm = info.map_or(0, |i| usize::from(i.immediate_bytes));
            let avail = code.len() - pc - 1;
            let take = imm.min(avail);
            out.push(Instruction {
                offset: pc,
                byte,
                info,
                operand: code[pc + 1..pc + 1 + take].to_vec(),
                truncated: take < imm,
            });
            pc += 1 + take;
        }
        out
    }

    /// The seed's histogram transform: collect a `Vec<Instruction>` per
    /// bytecode, count via a per-mnemonic `HashMap`, gather rows into a
    /// `Vec<Vec<f64>>`, then copy into a `Matrix`.
    pub fn histogram_transform(extractor: &HistogramExtractor, codes: &[&[u8]]) -> Matrix {
        let index: HashMap<&str, usize> = extractor
            .columns()
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i))
            .collect();
        let rows: Vec<Vec<f64>> = codes
            .iter()
            .map(|code| {
                let mut row = vec![0.0; extractor.n_features()];
                for ins in disassemble(code) {
                    if let Some(&j) = index.get(ins.mnemonic()) {
                        row[j] += 1.0;
                    }
                }
                row
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    /// The seed's forest inference: trees outer, rows inner, walking the
    /// enum node arena one row at a time.
    pub fn forest_predict_proba(forest: &RandomForest, x: &Matrix) -> Vec<f64> {
        let mut probs = vec![0.0; x.rows()];
        for tree in forest.trees() {
            for (p, row) in probs.iter_mut().zip(x.iter_rows()) {
                *p += tree.predict_row_arena(row);
            }
        }
        let k = forest.trees().len() as f64;
        for p in &mut probs {
            *p /= k;
        }
        probs
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, scale: &phishinghook_core::experiments::ExperimentScale) {
    println!("PhishingHook reproduction — {what}");
    println!(
        "scale: {} contracts, {}-fold CV × {} run(s), seed {}",
        scale.n_contracts, scale.folds, scale.runs, scale.seed
    );
    println!();
}

/// Serializes trials into the interchange CSV used by `table3`/`fig4`.
pub fn trials_to_csv(trials: &[TrialResult]) -> String {
    let mut out = String::from(
        "model,category,run,fold,accuracy,precision,recall,f1,train_secs,infer_secs\n",
    );
    for t in trials {
        use std::fmt::Write;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            t.model,
            t.category,
            t.run,
            t.fold,
            t.metrics.accuracy,
            t.metrics.precision,
            t.metrics.recall,
            t.metrics.f1,
            t.train_secs,
            t.infer_secs
        )
        .expect("write to String");
    }
    out
}

/// Parses the interchange CSV produced by [`trials_to_csv`]; returns `None`
/// on any malformed row.
pub fn trials_from_csv(text: &str) -> Option<Vec<TrialResult>> {
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 10 {
            return None;
        }
        let category = match cols[1] {
            "Histogram" => Category::Histogram,
            "Vision" => Category::Vision,
            "Language" => Category::Language,
            "Vulnerability" => Category::VulnerabilityDetection,
            _ => return None,
        };
        out.push(TrialResult {
            model: cols[0].to_owned(),
            category,
            run: cols[2].parse().ok()?,
            fold: cols[3].parse().ok()?,
            metrics: BinaryMetrics {
                accuracy: cols[4].parse().ok()?,
                precision: cols[5].parse().ok()?,
                recall: cols[6].parse().ok()?,
                f1: cols[7].parse().ok()?,
            },
            train_secs: cols[8].parse().ok()?,
            infer_secs: cols[9].parse().ok()?,
        });
    }
    Some(out)
}

/// Loads cached table2 trials from `results/table2_trials.csv`, if present.
pub fn load_cached_trials() -> Option<Vec<TrialResult>> {
    let text = std::fs::read_to_string("results/table2_trials.csv").ok()?;
    let trials = trials_from_csv(&text)?;
    if trials.is_empty() {
        None
    } else {
        Some(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_roundtrip() {
        let trials = vec![TrialResult {
            model: "Random Forest".into(),
            category: Category::Histogram,
            run: 1,
            fold: 2,
            metrics: BinaryMetrics {
                accuracy: 0.9,
                precision: 0.91,
                recall: 0.89,
                f1: 0.9,
            },
            train_secs: 0.5,
            infer_secs: 0.01,
        }];
        let csv = trials_to_csv(&trials);
        let parsed = trials_from_csv(&csv).expect("parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].model, "Random Forest");
        assert_eq!(parsed[0].metrics, trials[0].metrics);
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(trials_from_csv("header\nbad,row\n").is_none());
    }

    #[test]
    fn seed_disassemble_matches_current_disassemble() {
        // The preserved seed decode loop must keep producing the same
        // instructions as the live disassembler, or the benchmark baseline
        // stops being a fair comparison.
        let corpus = phishinghook_data::Corpus::generate(&phishinghook_data::CorpusConfig {
            n_contracts: 16,
            seed: 0xD15A,
            ..Default::default()
        });
        for record in &corpus.records {
            assert_eq!(
                seed_paths::disassemble(&record.bytecode),
                phishinghook_evm::disasm::disassemble(&record.bytecode)
            );
        }
    }

    #[test]
    fn seed_histogram_matches_fused_transform() {
        let codes: Vec<Vec<u8>> = vec![vec![0x60, 0x80, 0x60, 0x40, 0x52], vec![0x00, 0xFE]];
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let extractor = phishinghook_features::HistogramExtractor::fit(&refs);
        assert_eq!(
            seed_paths::histogram_transform(&extractor, &refs),
            extractor.transform(&refs)
        );
    }
}
