//! The HTTP gateway: `/predict`, `/healthz` and `/metrics` over the same
//! scheduler, cache and admission control as the JSONL front-ends.
//!
//! One HTTP connection is one scheduler connection. Every HTTP request
//! routes **exactly one** response body through the scheduler's ordered
//! per-connection router — a `/predict` body is submitted verbatim as a
//! v2 JSONL line (so HTTP verdicts are bit-identical to JSONL verdicts,
//! cache and all), while `/healthz`, `/metrics` and immediate rejections
//! route an already-rendered body. The session's writer thread pairs each
//! routed body with a response head (status / content type / keep-alive)
//! carried on a same-order side channel, so pipelined requests answer in
//! request order even while their verdicts are scored out of order across
//! micro-batches.
//!
//! Endpoints:
//!
//! * `POST /predict` — body is one v2 request: `{"bytecode":"0x…"}`,
//!   `{"address":"0x…"}` (resolved through the scheduler's chain handle),
//!   or bare hex. `200` with the v2 verdict object; `400` malformed;
//!   `404` unresolvable address; `503` + `Retry-After` when shed by
//!   admission control; `413` when the body exceeds the 1 MiB cap.
//! * `GET /healthz` — lifecycle-aware liveness: `200` with
//!   `{"status":"ok"|"degraded",…}` while serving (degraded = the brownout
//!   ladder left the Full tier), `503` with `{"status":"draining",…}` once
//!   [`Scheduler::begin_drain`] ran — load balancers stop routing here
//!   *before* the listener dies.
//! * `GET /readyz` — readiness: `200` only when running **and** shallower
//!   than the cache-only brownout tier; `503` otherwise.
//! * `GET /metrics` — `200` with the Prometheus text exposition from
//!   [`metrics::render_prometheus`].
//!
//! A `/predict` admitted to the queue answers its status when the verdict
//! *routes*, not when it was admitted: the response head is marked deferred and
//! the writer maps the routed [`ResponseKind`] to `200` (verdict), `500`
//! (the scoring worker panicked on that batch) or `504` (the request
//! out-waited its deadline).
//!
//! Overloaded *connections* (`max_conns`) answer `503` + `Retry-After`
//! at accept, mirroring the JSONL listener's typed overload line.

use crate::http::{self, HttpRequest, RequestOutcome, ResponseHead};
use crate::metrics;
use crate::proto::{self, Protocol};
use crate::scheduler::{
    Admission, Connection, DegradationTier, Lifecycle, ResponseKind, Scheduler, SubmitOutcome,
};
use crate::serve::{ServeReport, TcpLimits};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

const JSON: &str = "application/json";
const PROMETHEUS: &str = "text/plain; version=0.0.4";

/// The response head for one routed body, sent to the session's writer in
/// submit order (1:1 with routed bodies).
struct Head {
    status: u16,
    content_type: &'static str,
    retry_after: Option<u32>,
    keep_alive: bool,
    /// The status is provisional: the body is a queued verdict slot whose
    /// real outcome (scored / worker panic / deadline timeout) is only
    /// known when it routes — the writer overrides the status from the
    /// routed [`ResponseKind`].
    deferred: bool,
}

fn error_body(detail: &str) -> String {
    let mut out = String::with_capacity(detail.len() + 12);
    out.push_str("{\"error\":");
    proto::push_json_string(&mut out, detail);
    out.push('}');
    out
}

/// Serves the HTTP gateway on `listener` against the shared scheduler.
/// Admission mirrors [`serve_tcp`](crate::serve::serve_tcp): shed-mode
/// per request (`503` + `Retry-After`), `limits.max_conns` concurrent
/// connections (surplus accepts answer `503` and close), and
/// `limits.accept_total` bounds the accepted connections before the
/// aggregate report is returned (`None` = serve forever).
///
/// # Errors
/// Propagates accept errors; per-connection I/O errors are reported to
/// stderr and do not stop the gateway.
pub fn serve_http(
    listener: &TcpListener,
    scheduler: &Scheduler,
    limits: TcpLimits,
) -> io::Result<ServeReport> {
    let model = scheduler.model_name();
    let mut total = ServeReport::default();
    let live = AtomicUsize::new(0);
    let mut accepted = 0usize;
    std::thread::scope(|scope| -> io::Result<()> {
        let channel = limits.accept_total.map(|_| mpsc::channel::<ServeReport>());
        let report_tx = channel.as_ref().map(|(tx, _)| tx);
        while limits.accept_total.is_none_or(|m| accepted < m) {
            let (mut stream, peer) = listener.accept()?;
            accepted += 1;
            if limits
                .max_conns
                .is_some_and(|m| live.load(Ordering::SeqCst) >= m)
            {
                let _ = http::write_response(
                    &mut stream,
                    ResponseHead {
                        status: 503,
                        content_type: JSON,
                        retry_after: Some(1),
                        keep_alive: false,
                    },
                    error_body("overloaded: connection limit reached").as_bytes(),
                );
                // Drain whatever request bytes the client already sent
                // before dropping the socket: closing with unread input
                // RSTs the connection and can destroy the 503 in flight.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
                let mut sink = [0u8; 1024];
                while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
                scheduler.metrics().http_response(503);
                // The refusal never reaches a scheduler connection, so the
                // shared overload counter is incremented here — exactly
                // once per refused request, like the queue-shed path.
                scheduler.metrics().inc_overloads();
                eprintln!(
                    "[http {peer}] refused: {} concurrent connection(s) reached",
                    live.load(Ordering::SeqCst)
                );
                total.overloads += 1;
                continue;
            }
            live.fetch_add(1, Ordering::SeqCst);
            let live = &live;
            let report_tx = report_tx.cloned();
            scope.spawn(move || {
                let outcome = http_session(scheduler, &stream);
                live.fetch_sub(1, Ordering::SeqCst);
                match outcome {
                    Ok(report) => {
                        eprint!("[http {peer}] {}", report.render(model));
                        if let Some(tx) = report_tx {
                            let _ = tx.send(report);
                        }
                    }
                    Err(e) => eprintln!("[http {peer}] connection error: {e}"),
                }
            });
        }
        if let Some((tx, rx)) = channel {
            drop(tx);
            for report in rx {
                total.absorb(&report);
            }
        }
        Ok(())
    })?;
    Ok(total)
}

/// Serves one accepted HTTP connection to close/EOF: a reader loop that
/// parses requests and submits them (each producing one routed body plus
/// one [`Head`]), and a writer thread pairing the two streams in order.
fn http_session(scheduler: &Scheduler, stream: &TcpStream) -> io::Result<ServeReport> {
    let t0 = Instant::now();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    let (mut conn, responses) = scheduler.connect(Protocol::V2);
    let conn_id = conn.id();
    let (head_tx, head_rx) = mpsc::channel::<Head>();

    let (writer_result, read_error) = std::thread::scope(|scope| {
        let metrics = scheduler.metrics();
        let writer_thread = scope.spawn(move || -> io::Result<()> {
            // Heads arrive in submit order; routed bodies arrive in the
            // same order — pair them 1:1. Dropping `responses` on an
            // error disconnects (unblocks) the submit side.
            while let Ok(head) = head_rx.recv() {
                let Some((body, kind)) = responses.recv_with_kind() else {
                    break; // submit side gone without routing the body
                };
                // Deferred heads (queued verdict slots) learn their real
                // status from the routed response kind: the batch may have
                // panicked (500) or the deadline lapsed (504) after the
                // request was admitted with a provisional 200.
                let status = match (head.deferred, kind) {
                    (true, ResponseKind::Internal) => 500,
                    (true, ResponseKind::Timeout) => 504,
                    _ => head.status,
                };
                http::write_response(
                    &mut writer,
                    ResponseHead {
                        status,
                        content_type: head.content_type,
                        retry_after: head.retry_after,
                        keep_alive: head.keep_alive,
                    },
                    body.as_bytes(),
                )?;
                writer.flush()?;
                metrics.http_response(status);
                if !head.keep_alive {
                    break;
                }
            }
            Ok(())
        });

        let mut read_error: Option<io::Error> = None;
        loop {
            let outcome = match http::read_request(&mut reader) {
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
                Ok(outcome) => outcome,
            };
            match outcome {
                RequestOutcome::Eof | RequestOutcome::Disconnected => break,
                RequestOutcome::Reject { status, detail } => {
                    scheduler.metrics().http_request();
                    if conn.submit_rendered(error_body(&detail), true)
                        == SubmitOutcome::Disconnected
                    {
                        break;
                    }
                    // Framing after a parse error is unknowable: close.
                    let _ = head_tx.send(Head {
                        status,
                        content_type: JSON,
                        retry_after: None,
                        keep_alive: false,
                        deferred: false,
                    });
                    break;
                }
                RequestOutcome::Request(req) => {
                    scheduler.metrics().http_request();
                    let Some(head) = answer(scheduler, &mut conn, req) else {
                        break; // submit side disconnected
                    };
                    let closing = !head.keep_alive;
                    if head_tx.send(head).is_err() || closing {
                        break;
                    }
                }
            }
        }
        drop(head_tx); // ends the writer's pairing loop
        conn.finish();
        (
            writer_thread.join().expect("http writer thread"),
            read_error,
        )
    });

    let report = scheduler.take_report(conn_id);
    writer_result?;
    if let Some(e) = read_error {
        return Err(e);
    }
    Ok(ServeReport::from_conn(report, t0.elapsed().as_secs_f64()))
}

/// Routes one parsed request: exactly one body is routed through the
/// scheduler and the matching [`Head`] is returned. `None` when the
/// connection's response stream is gone (stop reading).
fn answer(scheduler: &Scheduler, conn: &mut Connection, req: HttpRequest) -> Option<Head> {
    let path = req.target.split('?').next().unwrap_or("");
    let head = |status: u16, content_type: &'static str, retry_after: Option<u32>| Head {
        status,
        content_type,
        retry_after,
        keep_alive: req.keep_alive,
        deferred: false,
    };
    let outcome = match (req.method.as_str(), path) {
        ("POST", "/predict") => {
            let body = String::from_utf8_lossy(&req.body);
            let line = body.trim();
            if line.is_empty() {
                conn.submit_rendered(error_body("empty request body"), true)
            } else {
                // The body IS one v2 JSONL request — same decode path,
                // same cache, bit-identical verdict rendering.
                conn.submit(line, Admission::Shed)
            }
        }
        ("GET", "/healthz") => {
            let draining = scheduler.lifecycle() == Lifecycle::Draining;
            let tier = scheduler.degradation_tier();
            let status_name = if draining {
                "draining"
            } else if tier > DegradationTier::Full {
                "degraded"
            } else {
                "ok"
            };
            let mut body = String::from("{\"status\":");
            proto::push_json_string(&mut body, status_name);
            body.push_str(",\"model\":");
            proto::push_json_string(&mut body, scheduler.model_name());
            body.push_str(",\"model_version\":");
            proto::push_json_string(&mut body, scheduler.model_version());
            body.push_str(",\"tier\":");
            proto::push_json_string(&mut body, tier.as_str());
            body.push('}');
            if conn.submit_rendered(body, false) == SubmitOutcome::Disconnected {
                return None;
            }
            // Draining answers 503 so load balancers pull the instance
            // while the drain finishes; degraded stays 200 (alive, just
            // trading quality for headroom — /readyz is the gate).
            return Some(head(if draining { 503 } else { 200 }, JSON, None));
        }
        ("GET", "/readyz") => {
            let draining = scheduler.lifecycle() == Lifecycle::Draining;
            let tier = scheduler.degradation_tier();
            let ready = !draining && tier < DegradationTier::CacheOnly;
            let mut body = String::from(if ready {
                "{\"ready\":true,\"tier\":"
            } else {
                "{\"ready\":false,\"tier\":"
            });
            proto::push_json_string(&mut body, tier.as_str());
            body.push('}');
            if conn.submit_rendered(body, false) == SubmitOutcome::Disconnected {
                return None;
            }
            return Some(head(if ready { 200 } else { 503 }, JSON, None));
        }
        ("GET", "/metrics") => {
            let snap = scheduler.metrics_snapshot();
            let mut text = metrics::render_prometheus(
                &snap,
                scheduler.model_name(),
                scheduler.model_version(),
                proto::EngineInfo {
                    quantize: scheduler.quantize(),
                    quant_bins: scheduler.quant_bins(),
                },
            );
            text.push_str(&metrics::render_prometheus_shards(&scheduler.shard_stats()));
            let outcome = conn.submit_rendered(text, false);
            if outcome == SubmitOutcome::Disconnected {
                return None;
            }
            return Some(head(200, PROMETHEUS, None));
        }
        (_, "/predict" | "/healthz" | "/readyz" | "/metrics") => {
            let outcome = conn.submit_rendered(
                error_body(&format!("method {} not allowed on {path}", req.method)),
                true,
            );
            if outcome == SubmitOutcome::Disconnected {
                return None;
            }
            return Some(head(405, JSON, None));
        }
        _ => {
            let outcome =
                conn.submit_rendered(error_body(&format!("no such endpoint: {path}")), true);
            if outcome == SubmitOutcome::Disconnected {
                return None;
            }
            return Some(head(404, JSON, None));
        }
    };
    match outcome {
        // Queued slots defer their status to route time (200/500/504).
        SubmitOutcome::Queued => Some(Head {
            deferred: true,
            ..head(200, JSON, None)
        }),
        SubmitOutcome::CacheHit | SubmitOutcome::Stats => Some(head(200, JSON, None)),
        SubmitOutcome::Error => Some(head(400, JSON, None)),
        SubmitOutcome::Unresolved => Some(head(404, JSON, None)),
        SubmitOutcome::Overloaded => Some(head(503, JSON, Some(1))),
        SubmitOutcome::Disconnected => None,
        // A blank /predict body was answered inline above; a blank JSONL
        // line cannot reach here.
        SubmitOutcome::Ignored => Some(head(400, JSON, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerOptions;
    use crate::serve::serve_lines;
    use crate::testutil::{probe_lines, scanner};
    use phishinghook_data::{Address, SharedChain};
    use phishinghook_evm::keccak::to_hex;
    use std::io::Read;

    fn no_cache() -> SchedulerOptions {
        SchedulerOptions {
            cache_bytes: 0,
            ..SchedulerOptions::default()
        }
    }

    /// Sends raw bytes, half-closes, and returns everything the server
    /// wrote back.
    fn raw_exchange(addr: std::net::SocketAddr, raw: String) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn post_predict(body: &str) -> String {
        format!(
            "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn predict_is_bit_identical_to_jsonl_and_probes_interleave() {
        let (_, codes) = probe_lines(2);
        let chain = SharedChain::new();
        let address: Address = [0x42; 20];
        chain.deploy(address, codes[0].clone());
        let scheduler = Scheduler::with_chain(scanner(), &no_cache(), Some(chain));

        // The JSONL reference verdict for the same bytecode.
        let request = format!(
            "{{\"id\":\"probe\",\"bytecode\":\"0x{}\"}}",
            to_hex(&codes[0])
        );
        let mut jsonl_out = Vec::new();
        serve_lines(
            &scheduler,
            Protocol::V2,
            format!("{request}\n").as_bytes(),
            &mut jsonl_out,
        )
        .expect("jsonl serves");
        let jsonl_line = String::from_utf8(jsonl_out).expect("utf8");
        let jsonl_line = jsonl_line.trim_end();

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr_sock = listener.local_addr().expect("addr");
        let addr_hex = format!("0x{}", to_hex(&address));
        let response = std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let server = scope.spawn(move || {
                serve_http(
                    &listener,
                    scheduler,
                    TcpLimits {
                        max_conns: Some(4),
                        accept_total: Some(1),
                    },
                )
                .expect("serves")
            });
            // One keep-alive connection, four pipelined requests.
            let raw = format!(
                "{}{}{}{}",
                post_predict(&request),
                post_predict(&format!(
                    "{{\"id\":\"by-addr\",\"address\":\"{addr_hex}\"}}"
                )),
                "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
                "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            );
            let response = raw_exchange(addr_sock, raw);
            let report = server.join().expect("server thread");
            assert_eq!(report.contracts, 2);
            response
        });

        assert_eq!(response.matches("HTTP/1.1 200 OK").count(), 4, "{response}");
        // The /predict body is byte-for-byte the JSONL v2 verdict line —
        // same f64 bits, same rendering.
        assert!(response.contains(jsonl_line), "{response}");
        // The address form echoes the resolved address.
        assert!(
            response.contains(&format!("\"id\":\"by-addr\",\"address\":\"{addr_hex}\"")),
            "{response}"
        );
        assert!(
            response.contains("{\"status\":\"ok\",\"model\":"),
            "{response}"
        );
        // Prometheus text carries the scheduler counters. (The body is
        // rendered when the pipelined GET is *read*, which races the
        // workers scoring the two predicts — assert presence, and check
        // exact values on the post-join snapshot below.)
        assert!(
            response.contains("phishinghook_requests_scored_total "),
            "{response}"
        );
        assert!(
            response.contains("# TYPE phishinghook_request_latency_seconds histogram"),
            "{response}"
        );
        assert!(
            response.contains("phishinghook_request_latency_p50_seconds"),
            "{response}"
        );
        assert!(
            response.contains("phishinghook_http_requests_total"),
            "{response}"
        );
        // Per-shard families ride along (one lane by default).
        assert!(
            response.contains("phishinghook_shard_queue_depth{shard=\"0\"}"),
            "{response}"
        );

        // Three scored in total: the JSONL reference probe plus the two
        // HTTP predicts (no cache, so the repeat bytecode scores again).
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.http.requests, 4);
        assert!(snap.http.responses_2xx >= 3, "{:?}", snap.http);
        assert_eq!(snap.scheduler.scored, 3);
        assert_eq!(snap.latency.count(), 3);
    }

    #[test]
    fn connection_limit_answers_503_with_retry_after() {
        let scheduler = Scheduler::new(scanner(), &SchedulerOptions::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let report = std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let server = scope.spawn(move || {
                serve_http(
                    &listener,
                    scheduler,
                    TcpLimits {
                        max_conns: Some(0), // deterministic: refuse all
                        accept_total: Some(1),
                    },
                )
                .expect("serves")
            });
            let response = raw_exchange(addr, "GET /healthz HTTP/1.1\r\n\r\n".to_owned());
            assert!(
                response.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
                "{response}"
            );
            assert!(response.contains("Retry-After: 1\r\n"), "{response}");
            assert!(response.contains("\"error\":\"overloaded"), "{response}");
            server.join().expect("server thread")
        });
        assert_eq!(report.overloads, 1);
        assert_eq!(scheduler.metrics_snapshot().http.responses_5xx, 1);
    }

    #[test]
    fn malformed_and_unroutable_requests_answer_typed_and_never_wedge() {
        let scheduler = Scheduler::new(scanner(), &SchedulerOptions::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let server = scope.spawn(move || {
                serve_http(
                    &listener,
                    scheduler,
                    TcpLimits {
                        max_conns: None,
                        accept_total: Some(6),
                    },
                )
                .expect("serves")
            });
            // 1: garbage request line → 400, connection closed.
            let r = raw_exchange(addr, "NOT EVEN HTTP\r\n\r\n".to_owned());
            assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
            assert!(r.contains("Connection: close"), "{r}");
            // 2: POST without Content-Length → 411.
            let r = raw_exchange(addr, "POST /predict HTTP/1.1\r\n\r\n".to_owned());
            assert!(r.starts_with("HTTP/1.1 411 "), "{r}");
            // 3: declared body over the 1 MiB cap → 413 (body never sent).
            let r = raw_exchange(
                addr,
                format!(
                    "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    http::MAX_BODY_BYTES + 1
                ),
            );
            assert!(r.starts_with("HTTP/1.1 413 "), "{r}");
            // 4: abrupt disconnect mid-body → no response, no wedged worker.
            let r = raw_exchange(
                addr,
                "POST /predict HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort".to_owned(),
            );
            assert_eq!(r, "", "mid-body disconnect gets no response");
            // 5: malformed JSON body → 400 with the v2 error object.
            let r = raw_exchange(addr, post_predict("{\"bytecode\":42}"));
            assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
            assert!(r.contains("\"error\":"), "{r}");
            // 6: the gateway still serves fine after all of the above.
            let r = raw_exchange(addr, "GET /healthz HTTP/1.1\r\n\r\n".to_owned());
            assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
            server.join().expect("server thread");
        });
        let snap = scheduler.metrics_snapshot();
        assert!(snap.http.responses_4xx >= 4, "{:?}", snap.http);
    }

    #[test]
    fn unknown_paths_and_methods_answer_404_and_405() {
        let scheduler = Scheduler::new(scanner(), &SchedulerOptions::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let server = scope.spawn(move || {
                serve_http(
                    &listener,
                    scheduler,
                    TcpLimits {
                        max_conns: None,
                        accept_total: Some(1),
                    },
                )
                .expect("serves")
            });
            let raw = "GET /nope HTTP/1.1\r\n\r\n\
                       GET /predict HTTP/1.1\r\n\r\n\
                       DELETE /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
                .to_owned();
            let r = raw_exchange(addr, raw);
            assert!(r.contains("HTTP/1.1 404 "), "{r}");
            assert!(r.contains("no such endpoint: /nope"), "{r}");
            assert_eq!(r.matches("HTTP/1.1 405 ").count(), 2, "{r}");
            server.join().expect("server thread");
        });
    }

    #[test]
    fn unresolvable_addresses_answer_404() {
        // A chain with nothing deployed: address predictions are typed
        // 404s carrying the v2 error body.
        let scheduler = Scheduler::with_chain(
            scanner(),
            &SchedulerOptions::default(),
            Some(SharedChain::new()),
        );
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let server = scope.spawn(move || {
                serve_http(
                    &listener,
                    scheduler,
                    TcpLimits {
                        max_conns: None,
                        accept_total: Some(1),
                    },
                )
                .expect("serves")
            });
            let body = format!("{{\"address\":\"0x{}\"}}", to_hex(&[9u8; 20]));
            let r = raw_exchange(addr, post_predict(&body));
            assert!(r.starts_with("HTTP/1.1 404 "), "{r}");
            assert!(r.contains("no contract code at address"), "{r}");
            server.join().expect("server thread");
        });
    }

    /// Serves `conns` sequential connections against `scheduler`, handing
    /// the bound address to `client` while the listener runs.
    fn with_gateway(
        scheduler: &Scheduler,
        conns: usize,
        client: impl FnOnce(std::net::SocketAddr, &Scheduler),
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                serve_http(
                    &listener,
                    scheduler,
                    TcpLimits {
                        max_conns: None,
                        accept_total: Some(conns),
                    },
                )
                .expect("serves")
            });
            client(addr, scheduler);
            server.join().expect("server thread");
        });
    }

    const PROBES: &str = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                          GET /readyz HTTP/1.1\r\nConnection: close\r\n\r\n";

    #[test]
    fn healthz_and_readyz_track_lifecycle() {
        // Running and at full service: both probes answer 200.
        let scheduler = Scheduler::new(scanner(), &no_cache());
        with_gateway(&scheduler, 2, |addr, scheduler| {
            let r = raw_exchange(addr, PROBES.to_owned());
            assert!(r.starts_with("HTTP/1.1 200 "), "{r}");
            assert!(r.contains("\"status\":\"ok\""), "{r}");
            assert!(r.contains("\"tier\":\"full\""), "{r}");
            assert!(r.contains("\"ready\":true"), "{r}");

            // Draining: liveness answers 503 and readiness flips false.
            scheduler.begin_drain();
            let r = raw_exchange(addr, PROBES.to_owned());
            assert!(r.starts_with("HTTP/1.1 503 "), "{r}");
            assert!(r.contains("\"status\":\"draining\""), "{r}");
            assert!(r.contains("\"ready\":false"), "{r}");
            assert_eq!(r.matches("HTTP/1.1 503 ").count(), 2, "{r}");
        });
        scheduler.shutdown();
    }

    #[test]
    fn healthz_and_readyz_track_brownout_tiers() {
        // Cache-first brownout: alive (200, "degraded") and still ready —
        // degraded answers are answers.
        let cache_first = SchedulerOptions {
            cache_first_pct: 0,
            cache_only_pct: 101,
            ..SchedulerOptions::default()
        };
        let scheduler = Scheduler::new(scanner(), &cache_first);
        with_gateway(&scheduler, 1, |addr, _| {
            let r = raw_exchange(addr, PROBES.to_owned());
            assert!(r.contains("\"status\":\"degraded\""), "{r}");
            assert!(r.contains("\"tier\":\"cache-first\""), "{r}");
            assert!(r.contains("\"ready\":true"), "{r}");
        });
        scheduler.shutdown();

        // Cache-only brownout: alive, but not ready for new traffic.
        let cache_only = SchedulerOptions {
            cache_first_pct: 0,
            cache_only_pct: 0,
            ..SchedulerOptions::default()
        };
        let scheduler = Scheduler::new(scanner(), &cache_only);
        with_gateway(&scheduler, 1, |addr, _| {
            let r = raw_exchange(addr, PROBES.to_owned());
            assert!(r.contains("\"status\":\"degraded\""), "{r}");
            assert!(r.contains("\"tier\":\"cache-only\""), "{r}");
            assert!(r.contains("\"ready\":false"), "{r}");
            assert!(r.contains("HTTP/1.1 503 "), "{r}");
        });
        scheduler.shutdown();
    }

    #[test]
    fn worker_panics_surface_as_500_and_the_gateway_recovers() {
        use crate::fault::FaultConfig;
        let opts = SchedulerOptions {
            batch: 1,
            workers: 1,
            cache_bytes: 0,
            fault: Some(FaultConfig {
                worker_panic_every: 2,
                ..FaultConfig::default()
            }),
            ..SchedulerOptions::default()
        };
        let (_, codes) = probe_lines(1);
        let body = format!("{{\"bytecode\":\"0x{}\"}}", to_hex(&codes[0]));
        let scheduler = Scheduler::new(scanner(), &opts);
        with_gateway(&scheduler, 3, |addr, _| {
            // Sequential exchanges are one single-row batch each: the
            // fault plan panics on batch 2 only.
            let ok = raw_exchange(addr, post_predict(&body));
            assert!(ok.starts_with("HTTP/1.1 200 "), "{ok}");
            let crashed = raw_exchange(addr, post_predict(&body));
            assert!(crashed.starts_with("HTTP/1.1 500 "), "{crashed}");
            assert!(crashed.contains("\"code\":\"internal\""), "{crashed}");
            // The supervisor respawned the worker: service continues.
            let recovered = raw_exchange(addr, post_predict(&body));
            assert!(recovered.starts_with("HTTP/1.1 200 "), "{recovered}");
            assert!(recovered.contains("\"verdict\""), "{recovered}");
        });
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.robustness.worker_panics, 1);
        assert_eq!(snap.http.responses_5xx, 1);
        scheduler.shutdown();
    }

    #[test]
    fn deadline_timeouts_surface_as_504() {
        // The lone request lingers in a half-full batch far past its
        // 10ms deadline; the deferred slot resolves to 504, not 200.
        let opts = SchedulerOptions {
            batch: 2,
            workers: 1,
            linger_micros: 300_000,
            deadline_ms: 10,
            cache_bytes: 0,
            ..SchedulerOptions::default()
        };
        let (_, codes) = probe_lines(1);
        let body = format!("{{\"bytecode\":\"0x{}\"}}", to_hex(&codes[0]));
        let scheduler = Scheduler::new(scanner(), &opts);
        with_gateway(&scheduler, 1, |addr, _| {
            let r = raw_exchange(addr, post_predict(&body));
            assert!(r.starts_with("HTTP/1.1 504 "), "{r}");
            assert!(r.contains("\"code\":\"timeout\""), "{r}");
        });
        assert_eq!(scheduler.metrics_snapshot().robustness.timeouts, 1);
        scheduler.shutdown();
    }
}
