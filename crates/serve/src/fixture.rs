//! Shared serving-test fixtures: train once, serve everywhere.
//!
//! Training even a tiny detector dominates serving-test wall clock, so —
//! as PR 2 did for experiment runs — every suite that needs a fitted
//! [`Scanner`] shares one `OnceLock` snapshot per model shape instead of
//! re-training per test. This module is the one seam for that setup: the
//! crate's unit tests, the integration suites (`chaos.rs`,
//! `shard_determinism.rs`, `stress.rs`, …), the umbrella `serve_core.rs`
//! suite and the CI smoke jobs all build their schedulers from these
//! fixtures.
//!
//! The corpora are deterministic ([`Corpus::generate`] is seeded), so
//! fixtures are stable across runs and processes — which is what lets the
//! determinism harness compare verdict bits across separately-constructed
//! schedulers.

use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_evm::keccak::to_hex;
use phishinghook_models::{Detector, DetectorRegistry, Scanner};
use std::sync::OnceLock;

/// Training-corpus seed shared by both fixture scanners.
const TRAIN_SEED: u64 = 5;

/// Training-corpus size: large enough for a non-degenerate detector,
/// small enough to fit in a test's time budget.
const TRAIN_CONTRACTS: usize = 80;

fn train(spec: &str) -> Scanner {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: TRAIN_CONTRACTS,
        seed: TRAIN_SEED,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();
    let mut det = DetectorRegistry::global()
        .build_str(spec, 7)
        .expect("valid spec");
    det.fit(&codes, &labels);
    Scanner::new(det).expect("fitted")
}

/// One fitted single-model (Random Forest) scanner, trained on first use
/// and shared by every test in the process.
pub fn rf_scanner() -> &'static Scanner {
    static SCANNER: OnceLock<Scanner> = OnceLock::new();
    SCANNER.get_or_init(|| train("rf:seed=7"))
}

/// A fitted 2-member soft-vote ensemble scanner, for per-model wire and
/// brownout (cheapest-member) assertions.
pub fn ensemble_scanner() -> &'static Scanner {
    static SCANNER: OnceLock<Scanner> = OnceLock::new();
    SCANNER.get_or_init(|| train("ensemble:rf+lgbm:vote=soft"))
}

/// `n` held-out probe bytecodes from corpus `seed`, plus the hex request
/// lines that submit them (one `0x…\n` line per bytecode). Seeds differ
/// per suite so cross-suite cache state can never alias.
pub fn probe_lines(n: usize, seed: u64) -> (String, Vec<Vec<u8>>) {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: n,
        seed,
        ..Default::default()
    });
    let codes: Vec<Vec<u8>> = corpus.records.into_iter().map(|r| r.bytecode).collect();
    let text: String = codes.iter().map(|c| format!("0x{}\n", to_hex(c))).collect();
    (text, codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_shared_and_deterministic() {
        // Same 'static on every call — the OnceLock actually shares.
        assert!(std::ptr::eq(rf_scanner(), rf_scanner()));
        assert!(std::ptr::eq(ensemble_scanner(), ensemble_scanner()));
        let (text_a, codes_a) = probe_lines(3, 42);
        let (text_b, codes_b) = probe_lines(3, 42);
        assert_eq!(text_a, text_b);
        assert_eq!(codes_a, codes_b);
        let (_, other_seed) = probe_lines(3, 43);
        assert_ne!(codes_a, other_seed);
    }
}
