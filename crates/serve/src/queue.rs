//! A bounded multi-producer/multi-consumer queue — the admission-controlled
//! heart of the scheduler.
//!
//! `std::sync::mpsc` channels are single-consumer, but the scheduler needs
//! *many* connection readers feeding *many* batch-forming workers, so this
//! module hand-rolls the one primitive the workspace's no-dependency policy
//! does not get for free: a `Mutex` + two-`Condvar` ring with
//!
//! * **bounded capacity** — [`BoundedQueue::try_push`] refuses instead of
//!   growing, which is what turns overload into a typed wire response
//!   rather than unbounded memory;
//! * **blocking producers** — [`BoundedQueue::push`] waits for space (the
//!   lossless stdin bulk-scoring path);
//! * **deadline pops** — [`BoundedQueue::pop_until`] lets a worker top up a
//!   partial batch only until its flush deadline;
//! * **a graceful-shutdown sentinel** — [`BoundedQueue::close`] wakes
//!   everyone; consumers drain whatever is still queued and only then see
//!   the end of the stream, so in-flight requests are never dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should shed load (typed
    /// overload response). The item is handed back.
    Full(T),
    /// The queue was closed for shutdown; no new work is admitted.
    Closed(T),
}

/// Outcome of a deadline-bounded pop.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item arrived before the deadline.
    Item(T),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is closed *and* fully drained — the shutdown sentinel.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking MPMC queue (see the module docs).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` queued items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues, or refuses with
    /// [`PushError::Full`] / [`PushError::Closed`].
    ///
    /// # Errors
    /// [`PushError`] handing the item back when the queue is at capacity or
    /// closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking admission: waits for space (backpressure), enqueues.
    ///
    /// # Errors
    /// Hands the item back when the queue is closed before space appears.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        while !inner.closed && inner.items.len() >= self.capacity {
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits for an item; `None` only once the queue is
    /// closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Pop with a deadline: waits for an item only until `deadline` — the
    /// batch-forming flush timer.
    pub fn pop_until(&self, deadline: Instant) -> Popped<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            let Some(wait) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Popped::TimedOut;
            };
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(inner, wait)
                .expect("queue lock");
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                return if inner.closed {
                    Popped::Closed
                } else {
                    Popped::TimedOut
                };
            }
        }
    }

    /// The graceful-shutdown sentinel: no new items are admitted, every
    /// blocked producer fails, and consumers drain the remainder before
    /// seeing `None` / [`Popped::Closed`].
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            q.try_push(i).expect("space");
        }
        assert_eq!(q.try_push(9), Err(PushError::Full(9)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
        q.try_push(3).expect("space after pop");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        // New work refused in both admission modes…
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.push(4), Err(4));
        // …but queued work drains before the sentinel.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        let deadline = Instant::now() + Duration::from_millis(50);
        assert_eq!(q.pop_until(deadline), Popped::Closed);
    }

    #[test]
    fn pop_until_times_out_when_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_millis(20);
        assert_eq!(q.pop_until(deadline), Popped::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(15));
        // A deadline already in the past returns immediately.
        assert_eq!(q.pop_until(Instant::now()), Popped::TimedOut);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0)); // frees the producer
        assert!(producer.join().expect("producer"));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().expect("consumer"), None);
    }

    #[test]
    fn close_wakes_a_blocked_producer_and_preserves_queued_work() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.try_push(7).unwrap(); // full: the producer below must block
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(8))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        // The blocked producer is refused; the admitted item still drains.
        assert_eq!(producer.join().expect("producer"), Err(8));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn mpmc_across_threads_loses_nothing() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(8));
        const PER_PRODUCER: u64 = 500;
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i).expect("open");
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..3 * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }
}
