//! The chain-watch scenario: drive a deployment firehose through the
//! serving core end to end.
//!
//! This is the deployment story the paper implies — a daemon watching
//! every contract deployment and scoring it as it lands — exercised
//! against the simulated chain: a [`ChainFirehose`] emits
//! template-skewed deploy events, each event is deployed onto a
//! [`SharedChain`], then submitted to the [`Scheduler`] over the real v2
//! line protocol **by address**: the scheduler resolves the code through
//! the chain's `eth_getCode` (the paper's Fig. 1 extraction path), so
//! the watch run exercises the exact resolution hop the HTTP gateway and
//! TCP daemon use for address-form requests. Redeployed templates hit
//! the verdict cache; fresh templates take the batched cold path.
//!
//! The whole run is in-process but uses exactly the serving surfaces a
//! TCP session uses (connection, protocol rendering, ordered responses),
//! so `phishinghook watch` doubles as an end-to-end smoke of the daemon.

use crate::config::ServeConfig;
use crate::proto::Protocol;
use crate::scheduler::{Admission, Scheduler};
use phishinghook_data::firehose::{ChainFirehose, FirehoseConfig};
use phishinghook_data::{Label, SharedChain};
use phishinghook_evm::keccak::{to_hex, Digest};
use phishinghook_models::Scanner;
use std::collections::HashSet;
use std::time::Instant;

/// Options for one [`run_watch`] session.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Deploy events to stream.
    pub events: usize,
    /// Firehose shape (template pool, skew, block grouping, seed).
    pub firehose: FirehoseConfig,
    /// Serving configuration for the run (the scheduler tuning is what
    /// matters here; listener addresses are ignored — the watch drives
    /// the scheduler in-process).
    pub serve: ServeConfig,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            events: 2000,
            firehose: FirehoseConfig::default(),
            serve: ServeConfig::default(),
        }
    }
}

impl WatchOptions {
    /// The CI smoke shape: a small stream that still produces cache hits.
    pub fn quick() -> Self {
        WatchOptions {
            events: 200,
            firehose: FirehoseConfig {
                templates: 16,
                ..FirehoseConfig::default()
            },
            ..WatchOptions::default()
        }
    }
}

/// What one watch run observed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WatchReport {
    /// Deploy events streamed and scored.
    pub events: u64,
    /// Blocks the events spanned.
    pub blocks: u64,
    /// Distinct bytecodes observed (the stream's dedup count).
    pub unique_bytecodes: u64,
    /// Deployments flagged phishing.
    pub alerts: u64,
    /// Responses agreeing with the stream's ground-truth labels.
    pub agree_with_labels: u64,
    /// Error responses (should be zero — the firehose emits valid code).
    pub errors: u64,
    /// Requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Requests scored cold.
    pub cache_misses: u64,
    /// Total bytecode bytes submitted.
    pub bytes: u64,
    /// Wall-clock seconds for the whole stream.
    pub secs: f64,
}

impl WatchReport {
    /// Human-readable multi-line summary (the `phishinghook watch` output).
    pub fn render(&self, model: &str) -> String {
        let looked_up = self.cache_hits + self.cache_misses;
        let hit_rate = if looked_up > 0 {
            self.cache_hits as f64 / looked_up as f64 * 100.0
        } else {
            0.0
        };
        let agree = if self.events > 0 {
            self.agree_with_labels as f64 / self.events as f64 * 100.0
        } else {
            0.0
        };
        format!(
            "watch report ({model}): {} deploy event(s) in {} block(s), {} unique bytecode(s)\n\
             alerts: {} phishing deployment(s) flagged ({:.1}% agreement with ground truth), {} error(s)\n\
             cache: {} hit(s) / {} miss(es) ({:.1}% hit rate)\n\
             throughput {:.0} events/s ({:.2} MB/s)\n",
            self.events,
            self.blocks,
            self.unique_bytecodes,
            self.alerts,
            agree,
            self.errors,
            self.cache_hits,
            self.cache_misses,
            hit_rate,
            self.events as f64 / self.secs.max(1e-12),
            self.bytes as f64 / (1024.0 * 1024.0) / self.secs.max(1e-12),
        )
    }
}

/// Streams `opts.events` deploy events through the serving core and
/// returns what happened. See the module docs for the path exercised.
///
/// Events are processed **block by block**, like a real chain watcher: a
/// block's deployments are submitted together (so they micro-batch), and
/// its verdicts are consumed before the next block is read. Responses
/// arrive in request order (the scheduler's ordering invariant), so they
/// zip directly against the stream's ground-truth labels — and a template
/// first seen in an earlier block is guaranteed to hit the verdict cache.
pub fn run_watch(scanner: &Scanner, opts: &WatchOptions) -> WatchReport {
    let t0 = Instant::now();
    let chain = SharedChain::new();
    let scheduler = Scheduler::with_chain(scanner, opts.serve.scheduler(), Some(chain.clone()));
    let (mut conn, rx) = scheduler.connect(Protocol::V2);
    let conn_id = conn.id();

    let mut unique: HashSet<Digest> = HashSet::new();
    let mut report = WatchReport::default();
    let mut last_block = 0u64;
    let mut block_labels: Vec<Label> = Vec::new();
    let mut firehose = ChainFirehose::generate(&opts.firehose)
        .take(opts.events)
        .peekable();
    while let Some(event) = firehose.next() {
        chain.deploy(event.address, event.bytecode.clone());
        unique.insert(event.code_hash());
        last_block = event.block;
        block_labels.push(event.label);
        // Submit by address alone: the scheduler resolves the code back
        // through the chain's `eth_getCode` — the same extraction hop a
        // real watcher (and the HTTP gateway's address form) makes.
        let addr_hex = format!("0x{}", to_hex(&event.address));
        let line = format!("{{\"id\":\"{addr_hex}\",\"address\":\"{addr_hex}\"}}");
        conn.submit(&line, Admission::Block);
        let block_done = firehose.peek().is_none_or(|next| next.block != event.block);
        if block_done {
            for label in block_labels.drain(..) {
                let line = rx.recv().expect("one response per deploy event");
                if line.contains("\"error\"") {
                    report.errors += 1;
                    continue;
                }
                let flagged = line.contains("\"verdict\":\"phishing\"");
                if flagged {
                    report.alerts += 1;
                }
                if flagged == (label == Label::Phishing) {
                    report.agree_with_labels += 1;
                }
            }
        }
    }
    conn.finish();

    report.events = opts.events as u64;
    report.blocks = if opts.events == 0 { 0 } else { last_block + 1 };
    report.unique_bytecodes = unique.len() as u64;
    let conn_report = scheduler.take_report(conn_id);
    report.cache_hits = conn_report.cache_hits;
    report.cache_misses = conn_report.cache_misses;
    report.bytes = conn_report.bytes;
    report.errors += conn_report.errors;
    scheduler.shutdown();
    report.secs = t0.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scanner;

    #[test]
    fn quick_watch_exercises_cache_and_answers_everything() {
        let opts = WatchOptions::quick();
        let report = run_watch(scanner(), &opts);
        assert_eq!(report.events, opts.events as u64);
        assert_eq!(report.errors, 0, "every address must resolve cleanly");
        assert_eq!(
            report.cache_hits + report.cache_misses,
            report.events,
            "every event is a lookup"
        );
        // The template pool bounds the distinct bytecodes, so a 200-event
        // stream over ≤16 templates must mostly hit. Only a template's
        // occurrences inside its own first block can miss (the block's
        // responses are drained before the next block is submitted), so
        // misses are bounded by pool × block size.
        assert!(report.unique_bytecodes <= 16);
        let worst_case_misses = report.unique_bytecodes * opts.firehose.deploys_per_block as u64;
        assert!(
            report.cache_hits >= report.events - worst_case_misses,
            "hits {} of {}",
            report.cache_hits,
            report.events
        );
        assert!(report.blocks >= report.events / 6);
        let rendered = report.render("Random Forest");
        assert!(rendered.contains("watch report"), "{rendered}");
        assert!(rendered.contains("hit rate"), "{rendered}");
    }

    #[test]
    fn watch_is_deterministic_for_a_seed_apart_from_timing() {
        let opts = WatchOptions {
            events: 60,
            ..WatchOptions::quick()
        };
        let mut a = run_watch(scanner(), &opts);
        let mut b = run_watch(scanner(), &opts);
        // Timing-coupled fields aside (wall clock, and the hit/miss split,
        // which races worker inserts *within* one block), runs agree.
        for r in [&mut a, &mut b] {
            r.secs = 0.0;
            r.cache_hits = 0;
            r.cache_misses = 0;
        }
        assert_eq!(a, b);
    }
}
