//! Serving loops: one request stream (stdin or TCP socket) against the
//! shared [`Scheduler`].
//!
//! The old per-connection design (one unbounded thread + private engine
//! per socket) is gone: every session registers with one process-wide
//! scheduler, so batches form *across* connections and the keccak-keyed
//! verdict cache is shared by all of them. A session is two thin threads —
//! a reader that decodes/submits lines and a writer that drains the
//! connection's in-order response channel — plus the scheduler doing the
//! actual work.
//!
//! Admission differs by transport, deliberately:
//!
//! * **stdin** ([`serve_lines`]) submits with [`Admission::Block`]: a bulk
//!   scoring run (`serve < corpus.hex`) wants lossless backpressure, not
//!   shed requests.
//! * **TCP** ([`serve_tcp`]) submits with [`Admission::Shed`]: a saturated
//!   daemon answers queue-full with a typed overload response
//!   (`"code":"overloaded"` / `ERR` line) instead of buffering without
//!   bound, and `max_conns` refuses surplus *connections* the same way.
//!
//! Oversized request lines are handled below the protocol layer: the
//! reader never buffers more than [`MAX_LINE_BYTES`](crate::proto::MAX_LINE_BYTES)
//! per line — the long tail is discarded to the next newline and the
//! request answered with a typed error, keeping framing intact.

use crate::config::ServeConfig;
use crate::proto::{self, Protocol};
use crate::scheduler::{Admission, ConnReport, Scheduler, SchedulerOptions};
use phishinghook_data::SharedChain;
use phishinghook_models::Scanner;
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::time::Instant;

/// Options of one serving process: scheduler tuning plus wire framing.
#[deprecated(
    since = "0.6.0",
    note = "build a validated ServeConfig via ServeConfig::builder() and pass it to serve::run"
)]
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Shared scheduler tuning (batching, workers, queue, cache).
    pub scheduler: SchedulerOptions,
    /// Wire framing (v2 JSONL by default; v1 for legacy clients).
    pub proto: Protocol,
}

/// Connection-acceptance limits for [`serve_tcp`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpLimits {
    /// Maximum *concurrent* connections; surplus accepts are answered with
    /// one typed overload line and closed. `None` = unlimited.
    pub max_conns: Option<usize>,
    /// Total connections to accept before draining and returning (test/CI
    /// runs). `None` = serve forever (the daemon case).
    pub accept_total: Option<usize>,
}

/// Aggregate statistics of one serving session (one stdin run or one TCP
/// connection), or of a whole bounded TCP run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeReport {
    /// Scored requests (cold and cached).
    pub contracts: u64,
    /// Malformed request lines answered with an error response.
    pub errors: u64,
    /// Requests or connections shed with a typed overload response.
    pub overloads: u64,
    /// Requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Requests scored cold (cache miss or cache disabled).
    pub cache_misses: u64,
    /// Total bytecode bytes scored.
    pub bytes: u64,
    /// Wall-clock seconds from first read to last write.
    pub secs: f64,
}

impl ServeReport {
    pub(crate) fn from_conn(report: ConnReport, secs: f64) -> Self {
        ServeReport {
            contracts: report.contracts,
            errors: report.errors,
            overloads: report.overloads,
            cache_hits: report.cache_hits,
            cache_misses: report.cache_misses,
            bytes: report.bytes,
            secs,
        }
    }

    /// Human-readable multi-line summary.
    pub fn render(&self, model: &str) -> String {
        let per_sec = if self.secs > 0.0 {
            self.contracts as f64 / self.secs
        } else {
            0.0
        };
        let looked_up = self.cache_hits + self.cache_misses;
        let hit_rate = if looked_up > 0 {
            self.cache_hits as f64 / looked_up as f64 * 100.0
        } else {
            0.0
        };
        format!(
            "serve report ({model}): {} contract(s), {} error line(s), {} overload(s)\n\
             throughput {:.0} contracts/s ({:.2} MB/s), cache {} hit(s) / {} miss(es) ({:.1}% hit rate)\n",
            self.contracts,
            self.errors,
            self.overloads,
            per_sec,
            self.bytes as f64 / (1024.0 * 1024.0) / self.secs.max(1e-12),
            self.cache_hits,
            self.cache_misses,
            hit_rate,
        )
    }

    pub(crate) fn absorb(&mut self, other: &ServeReport) {
        self.contracts += other.contracts;
        self.errors += other.errors;
        self.overloads += other.overloads;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bytes += other.bytes;
        self.secs = self.secs.max(other.secs);
    }
}

/// Outcome of one capped line read.
enum LineRead {
    Eof,
    Line,
    /// The line exceeded the cap; `usize` is its true byte length (tail
    /// discarded up to the next newline, framing preserved).
    Oversized(usize),
}

/// Reads one `\n`-terminated line into `buf` without ever buffering more
/// than the protocol cap; invalid UTF-8 is replaced, never fatal.
fn read_line_capped(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<LineRead> {
    buf.clear();
    let mut total = 0usize;
    let mut saw_any = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(if saw_any {
                if total > proto::MAX_LINE_BYTES {
                    LineRead::Oversized(total)
                } else {
                    LineRead::Line
                }
            } else {
                LineRead::Eof
            });
        }
        saw_any = true;
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (&available[..pos], true),
            None => (available, false),
        };
        total += chunk.len();
        // Buffer only up to the cap (+1 so the check can prove overflow);
        // the rest of an oversized line is consumed and discarded.
        let room = (proto::MAX_LINE_BYTES + 1).saturating_sub(buf.len());
        buf.extend_from_slice(&chunk[..chunk.len().min(room)]);
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            return Ok(if total > proto::MAX_LINE_BYTES {
                LineRead::Oversized(total)
            } else {
                LineRead::Line
            });
        }
    }
}

/// Serves one request stream to completion against the shared scheduler:
/// reads lines from `input`, writes one response line per request to
/// `output` (in request order), and returns the session's report.
///
/// Used directly for the stdin transport (lossless, blocking admission);
/// TCP sessions go through [`serve_tcp`], which sheds on overload instead.
///
/// # Errors
/// Propagates I/O errors from either side of the stream.
pub fn serve_lines(
    scheduler: &Scheduler,
    proto: Protocol,
    input: impl BufRead,
    output: impl Write + Send,
) -> io::Result<ServeReport> {
    serve_session(scheduler, proto, Admission::Block, input, output)
}

fn serve_session(
    scheduler: &Scheduler,
    proto: Protocol,
    admission: Admission,
    mut input: impl BufRead,
    mut output: impl Write + Send,
) -> io::Result<ServeReport> {
    let t0 = Instant::now();
    let (mut conn, rx) = scheduler.connect(proto);
    let conn_id = conn.id();

    let (writer_result, read_error) = std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> io::Result<()> {
            // Batch flushing: drain everything that is already in order
            // before paying one flush, so a full scored batch costs one
            // syscall, while an interactive session still flushes per line.
            // Every recv credits the connection's flow-control window; on
            // an output error this returns early, dropping the stream,
            // which disconnects (unblocks) the submit side.
            while let Some(line) = rx.recv() {
                output.write_all(line.as_bytes())?;
                output.write_all(b"\n")?;
                while let Some(more) = rx.try_recv() {
                    output.write_all(more.as_bytes())?;
                    output.write_all(b"\n")?;
                }
                output.flush()?;
            }
            Ok(())
        });

        let mut read_error: Option<io::Error> = None;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let outcome = match read_line_capped(&mut input, &mut buf) {
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
                Ok(LineRead::Eof) => break,
                Ok(LineRead::Oversized(len)) => conn.reject_oversized(len),
                Ok(LineRead::Line) => {
                    let line = String::from_utf8_lossy(&buf);
                    conn.submit(&line, admission)
                }
            };
            if outcome == crate::scheduler::SubmitOutcome::Disconnected {
                break; // writer died: stop consuming the input stream
            }
        }
        conn.finish();
        (writer.join().expect("writer thread"), read_error)
    });

    let report = scheduler.take_report(conn_id);
    writer_result?;
    if let Some(e) = read_error {
        return Err(e);
    }
    Ok(ServeReport::from_conn(report, t0.elapsed().as_secs_f64()))
}

/// Accepts TCP connections and serves the line protocol on each over the
/// one shared scheduler — connections contribute rows to the same batches
/// and share the same verdict cache. Admission control:
///
/// * per request: shed-mode submission (typed overload response when the
///   scheduler queue is full);
/// * per connection: `limits.max_conns` concurrent sessions; surplus
///   accepts receive one overload line and are closed.
///
/// `limits.accept_total` bounds how many connections are accepted before
/// returning the aggregate report — `None` serves forever (the daemon
/// case). Each connection's report is written to stderr as it closes.
///
/// # Errors
/// Propagates accept errors; per-connection I/O errors are reported to
/// stderr and do not stop the daemon.
#[deprecated(
    since = "0.6.0",
    note = "configure a tcp listener on ServeConfig and call serve::run instead"
)]
pub fn serve_tcp(
    listener: &TcpListener,
    scheduler: &Scheduler,
    proto: Protocol,
    limits: TcpLimits,
) -> io::Result<ServeReport> {
    tcp_listener_loop(listener, scheduler, proto, limits)
}

/// The JSONL TCP accept loop behind [`serve_tcp`] and [`run`]. Since PR 8
/// this is the nonblocking event loop in [`crate::nbio`]: every
/// connection is multiplexed onto this one thread, so serving threads are
/// O(shards + listeners) rather than O(connections).
pub(crate) fn tcp_listener_loop(
    listener: &TcpListener,
    scheduler: &Scheduler,
    proto: Protocol,
    limits: TcpLimits,
) -> io::Result<ServeReport> {
    crate::nbio::serve_nonblocking(listener, scheduler, proto, limits)
}

/// Runs a whole serving process from one validated [`ServeConfig`]: spawn
/// the scheduler (with the optional chain handle for address-form
/// requests), bind whichever listeners the config names, and serve.
///
/// * **No listeners** — serve stdin to EOF with lossless (blocking)
///   admission and write responses to stdout; the report goes to stderr
///   so `serve … > verdicts.jsonl` stays clean.
/// * **`tcp` and/or `http`** — bind each, print one
///   `serving <model> on tcp://<addr>` / `http://<addr>` banner per
///   listener to stderr (scripts scrape these for the ephemeral port),
///   and run both accept loops concurrently against the one scheduler —
///   JSONL and HTTP requests share batches, cache, admission control and
///   metrics. With `accept` set, returns the aggregate report once every
///   listener has accepted its quota and drained; otherwise serves
///   forever.
///
/// # Errors
/// Propagates bind/accept errors and stdin-mode I/O errors.
pub fn run(
    scanner: &Scanner,
    config: &ServeConfig,
    chain: Option<SharedChain>,
) -> io::Result<ServeReport> {
    let scheduler = Scheduler::with_chain(scanner, config.scheduler(), chain);
    let model = scheduler.model_name().to_owned();
    let proto = config.proto();
    let limits = config.limits();

    if config.tcp().is_none() && config.http().is_none() {
        let stdin = io::stdin();
        // Unlocked stdout handle: the writer thread is the only writer,
        // and `Stdout` is `Send` where `StdoutLock` is not.
        let report = serve_lines(&scheduler, proto, stdin.lock(), io::stdout())?;
        eprint!("{}", report.render(&model));
        scheduler.begin_drain();
        scheduler.shutdown();
        return Ok(report);
    }

    let tcp_listener = config.tcp().map(TcpListener::bind).transpose()?;
    let http_listener = config.http().map(TcpListener::bind).transpose()?;
    if let Some(listener) = &tcp_listener {
        eprintln!(
            "serving {model} on tcp://{} ({proto:?}, {} shard(s), batch {}, {} worker(s)/shard, queue {}, cache {} bytes{})",
            listener.local_addr()?,
            config.scheduler().shards,
            config.scheduler().batch,
            config.scheduler().workers,
            config.scheduler().queue_depth,
            config.scheduler().cache_bytes,
            match limits.max_conns {
                Some(m) => format!(", max {m} conns"),
                None => String::new(),
            },
        );
    }
    if let Some(listener) = &http_listener {
        eprintln!(
            "serving {model} on http://{} (POST /predict, GET /healthz, GET /readyz, GET /metrics)",
            listener.local_addr()?
        );
    }

    let mut total = ServeReport::default();
    std::thread::scope(|scope| -> io::Result<()> {
        let scheduler = &scheduler;
        let tcp_handle = tcp_listener.as_ref().map(|listener| {
            scope.spawn(move || tcp_listener_loop(listener, scheduler, proto, limits))
        });
        if let Some(listener) = &http_listener {
            total.absorb(&crate::router::serve_http(listener, scheduler, limits)?);
        }
        if let Some(handle) = tcp_handle {
            total.absorb(&handle.join().expect("tcp listener thread")?);
        }
        Ok(())
    })?;
    if limits.accept_total.is_some() {
        eprint!("{}", total.render(&model));
    }
    // Flip the lifecycle to draining before the queue closes: any jobs
    // still queued past the drain budget are answered as typed timeouts
    // instead of holding shutdown hostage, and `/healthz` (were a probe
    // still connected) reports `draining`.
    scheduler.begin_drain();
    scheduler.shutdown();
    Ok(total)
}

#[cfg(test)]
#[allow(deprecated)] // the ServeOptions/serve_tcp shims keep their coverage
mod tests {
    use super::*;
    use crate::testutil::{ensemble_scanner, probe_lines, scanner};
    use phishinghook_evm::keccak::to_hex;
    use std::net::TcpStream;

    fn serve_with(scanner: &Scanner, input: &str, opts: &ServeOptions) -> (String, ServeReport) {
        let scheduler = Scheduler::new(scanner, &opts.scheduler);
        let mut out = Vec::new();
        let report =
            serve_lines(&scheduler, opts.proto, input.as_bytes(), &mut out).expect("serves");
        (String::from_utf8(out).expect("utf8 output"), report)
    }

    fn serve_to_string(input: &str, opts: &ServeOptions) -> (String, ServeReport) {
        serve_with(scanner(), input, opts)
    }

    fn v1() -> ServeOptions {
        ServeOptions {
            proto: Protocol::V1,
            ..ServeOptions::default()
        }
    }

    /// Cache off so repeated runs measure the cold path deterministically.
    fn no_cache(proto: Protocol) -> ServeOptions {
        ServeOptions {
            proto,
            scheduler: SchedulerOptions {
                cache_bytes: 0,
                ..SchedulerOptions::default()
            },
        }
    }

    #[test]
    fn v1_one_response_line_per_request_in_order() {
        let (input, codes) = probe_lines(10);
        let (out, report) = serve_to_string(&input, &v1());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), codes.len());
        assert_eq!(report.contracts, codes.len() as u64);
        assert_eq!(report.errors, 0);
        assert_eq!(
            report.bytes,
            codes.iter().map(|c| c.len() as u64).sum::<u64>()
        );

        // Responses match direct scanner scoring, in request order.
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let probs = scanner().worker().score_batch(&refs);
        for (line, p) in lines.iter().zip(&probs) {
            let verdict = if *p >= 0.5 { "phishing" } else { "benign" };
            assert_eq!(*line, format!("{verdict}\t{p:.6}"));
        }
    }

    #[test]
    fn v2_responses_carry_ids_and_parse_as_jsonl() {
        let (input, codes) = probe_lines(6);
        let (out, report) = serve_to_string(&input, &ServeOptions::default());
        assert_eq!(report.contracts, codes.len() as u64);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let probs = scanner().worker().score_batch(&refs);
        for (i, (line, p)) in out.lines().zip(&probs).enumerate() {
            // Bare-hex requests get sequence-number ids.
            assert!(
                line.starts_with(&format!("{{\"proto\":2,\"id\":\"{i}\",")),
                "{line}"
            );
            let verdict = if *p >= 0.5 { "phishing" } else { "benign" };
            assert!(
                line.contains(&format!("\"verdict\":\"{verdict}\"")),
                "{line}"
            );
            assert!(line.contains(&format!("\"proba\":{p:.6}")), "{line}");
            assert!(
                line.contains("\"model_version\":\"hsc-detector/v1\""),
                "{line}"
            );
            assert!(
                line.contains("\"per_model\":[{\"name\":\"Random Forest\""),
                "{line}"
            );
            assert!(line.ends_with("]}"), "{line}");
        }
    }

    #[test]
    fn v2_json_requests_echo_their_ids() {
        let (_, codes) = probe_lines(2);
        let input = format!(
            "{{\"id\":\"tx-a\",\"bytecode\":\"0x{}\"}}\n{{\"bytecode\":\"0x{}\"}}\nnot json or hex!!\n",
            to_hex(&codes[0]),
            to_hex(&codes[1]),
        );
        let (out, report) = serve_to_string(&input, &ServeOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].starts_with("{\"proto\":2,\"id\":\"tx-a\","),
            "{}",
            lines[0]
        );
        // Missing id falls back to the request's per-connection sequence.
        assert!(
            lines[1].starts_with("{\"proto\":2,\"id\":\"1\","),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"error\":"), "{}", lines[2]);
        assert_eq!(report.contracts, 2);
        assert_eq!(report.errors, 1);
    }

    #[test]
    fn v2_ensembles_expose_per_member_probabilities() {
        let (input, codes) = probe_lines(4);
        let (out, _) = serve_with(ensemble_scanner(), &input, &ServeOptions::default());
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let combined = ensemble_scanner().worker().score_batch(&refs);
        for (line, p) in out.lines().zip(&combined) {
            assert!(
                line.contains("\"model_version\":\"hsc-ensemble/v1\""),
                "{line}"
            );
            assert!(
                line.contains("{\"name\":\"Random Forest\",\"proba\":"),
                "{line}"
            );
            assert!(line.contains("{\"name\":\"LightGBM\",\"proba\":"), "{line}");
            assert!(line.contains(&format!("\"proba\":{p:.6}")), "{line}");
            assert_eq!(line.matches("\"name\":").count(), 2, "{line}");
        }
    }

    #[test]
    fn output_order_is_stable_for_any_batch_size_and_worker_count() {
        let (input, _) = probe_lines(23);
        for proto in [Protocol::V1, Protocol::V2] {
            let (reference, _) = serve_to_string(&input, &no_cache(proto));
            for (batch, workers) in [(1, 1), (4, 3), (5, 2), (64, 4)] {
                for cache_bytes in [0usize, 8 << 20] {
                    let opts = ServeOptions {
                        proto,
                        scheduler: SchedulerOptions {
                            batch,
                            workers,
                            cache_bytes,
                            ..SchedulerOptions::default()
                        },
                    };
                    let (out, report) = serve_to_string(&input, &opts);
                    assert_eq!(
                        out, reference,
                        "batch={batch} workers={workers} cache={cache_bytes} {proto:?}"
                    );
                    assert_eq!(report.contracts, 23);
                }
            }
        }
    }

    #[test]
    fn v1_malformed_and_blank_lines() {
        let (mut input, codes) = probe_lines(3);
        input.push_str("zznothex\n\n   \n0x60\n");
        let (out, report) = serve_to_string(
            &input,
            &ServeOptions {
                proto: Protocol::V1,
                scheduler: SchedulerOptions {
                    batch: 2,
                    workers: 2,
                    ..SchedulerOptions::default()
                },
            },
        );
        let lines: Vec<&str> = out.lines().collect();
        // 3 contracts + 1 malformed + 1 tiny-but-valid; blanks are skipped.
        assert_eq!(lines.len(), codes.len() + 2);
        assert_eq!(lines[codes.len()], "error\tnot valid hex bytecode");
        assert!(
            lines[codes.len() + 1].starts_with("phishing\t")
                || lines[codes.len() + 1].starts_with("benign\t")
        );
        assert_eq!(report.errors, 1);
        assert_eq!(report.contracts, codes.len() as u64 + 1);
    }

    #[test]
    fn oversized_lines_are_rejected_without_unbounded_buffering() {
        // A line way past MAX_LINE_BYTES is answered with a typed error and
        // framing survives: the next line still gets its own response.
        let (input, codes) = probe_lines(1);
        let huge = "60".repeat(proto::MAX_LINE_BYTES / 2 + 77);
        let session = format!("{huge}\n{input}");
        let (out, report) = serve_to_string(&session, &ServeOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + codes.len());
        assert!(lines[0].contains("byte limit"), "{}", lines[0]);
        assert!(lines[0].contains("\"error\""), "{}", lines[0]);
        assert!(lines[1].contains("\"verdict\""), "{}", lines[1]);
        assert_eq!(report.errors, 1);
        assert_eq!(report.contracts, 1);
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let (out, report) = serve_to_string("", &ServeOptions::default());
        assert!(out.is_empty());
        assert_eq!(report.contracts, 0);
        let rendered = report.render("Random Forest");
        assert!(rendered.contains("0 contract(s)"), "{rendered}");
    }

    fn spawn_client(addr: std::net::SocketAddr, input: String) -> std::thread::JoinHandle<String> {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(input.as_bytes()).expect("send requests");
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut response = String::new();
            use std::io::Read;
            stream
                .read_to_string(&mut response)
                .expect("read responses");
            response
        })
    }

    #[test]
    fn tcp_connections_share_one_scheduler_and_one_cache() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("addr");
        let (input, codes) = probe_lines(5);

        // Client A scores 5 codes; once its responses are back, client B
        // sends the same codes plus a stats probe — B's requests must hit
        // the process-wide cache A populated.
        let input_b = format!("{input}stats\n");
        let scheduler = Scheduler::new(scanner(), &SchedulerOptions::default());
        let server = std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let handle = scope.spawn(move || {
                serve_tcp(
                    &listener,
                    scheduler,
                    Protocol::V2,
                    TcpLimits {
                        max_conns: Some(4),
                        accept_total: Some(2),
                    },
                )
                .expect("serves two conns")
            });
            let a = spawn_client(addr, input.clone());
            let response_a = a.join().expect("client a");
            assert_eq!(response_a.lines().count(), codes.len());
            let b = spawn_client(addr, input_b.clone());
            let response_b = b.join().expect("client b");
            let lines_b: Vec<&str> = response_b.lines().collect();
            assert_eq!(lines_b.len(), codes.len() + 1);
            // A's and B's verdict lines are identical (same ids, same bits).
            assert_eq!(
                response_a.lines().collect::<Vec<_>>(),
                &lines_b[..codes.len()]
            );
            let stats_line = lines_b.last().expect("stats");
            assert!(
                stats_line.contains(&format!("\"cache\":{{\"hits\":{}", codes.len())),
                "{stats_line}"
            );
            handle.join().expect("server thread")
        });
        assert_eq!(server.contracts, 2 * codes.len() as u64);
        assert_eq!(server.cache_hits, codes.len() as u64);
        let stats = scheduler.shutdown();
        assert_eq!(stats.scheduler.connections, 2);
        assert_eq!(stats.scheduler.scored, codes.len() as u64);
    }

    #[test]
    fn tcp_connection_limit_answers_typed_overload() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("addr");
        let scheduler = Scheduler::new(scanner(), &SchedulerOptions::default());
        let report = std::thread::scope(|scope| {
            let scheduler = &scheduler;
            let server = scope.spawn(move || {
                serve_tcp(
                    &listener,
                    scheduler,
                    Protocol::V2,
                    TcpLimits {
                        // No concurrent sessions allowed at all: every
                        // accept is refused with the typed overload line —
                        // deterministic, no timing involved.
                        max_conns: Some(0),
                        accept_total: Some(2),
                    },
                )
                .expect("serves")
            });
            for _ in 0..2 {
                let client = spawn_client(addr, String::new());
                let response = client.join().expect("client");
                assert_eq!(response.lines().count(), 1, "{response}");
                assert!(response.contains("\"code\":\"overloaded\""), "{response}");
            }
            server.join().expect("server thread")
        });
        assert_eq!(report.overloads, 2);
        assert_eq!(report.contracts, 0);
    }
}
