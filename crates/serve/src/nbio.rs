//! Nonblocking-readiness JSONL transport: one event-loop thread for every
//! TCP connection.
//!
//! The thread-per-connection accept loop costs one parked reader thread
//! per socket — 10k mostly-idle chain watchers would cost 10k threads
//! before the first request arrives. This module replaces it with a single
//! loop over `std` nonblocking sockets: the listener and every accepted
//! stream run with `set_nonblocking(true)`, `poll(2)` (a raw declaration —
//! std already links libc) reports which sockets turned ready, and the
//! loop sweeps write → route-responses → read over **only** the ready
//! connections plus those still awaiting in-process responses (which poll
//! cannot see). Each iteration is therefore O(ready + awaiting) socket
//! work, not O(connections), and serving threads are O(shards +
//! listeners) — both asserted by `tests/idle_conns.rs`.
//!
//! Two invariants keep a single-threaded loop safe against the scheduler's
//! blocking seams:
//!
//! * **Submit never blocks.** [`Connection::submit`] blocks in the
//!   flow-control window when a connection has
//!   [`SchedulerOptions::max_outstanding`](crate::SchedulerOptions::max_outstanding)
//!   responses outstanding; the loop stops *reading* a connection once its
//!   own in-flight count reaches a cap strictly below that, so the window
//!   can never park the loop (and with it, every other connection).
//! * **Writes never buffer without bound.** Response bytes wait in a
//!   per-connection buffer with a soft cap; past it the loop stops
//!   draining that connection's responses and stops reading it — the
//!   scheduler's window then backpressures the socket exactly like the
//!   threaded transport did.

use crate::proto::{self, Protocol};
use crate::scheduler::{
    Admission, Connection, PolledResponse, Responses, Scheduler, SubmitOutcome,
};
use crate::serve::{ServeReport, TcpLimits};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

/// Stop draining responses into a connection's write buffer past this many
/// pending bytes; the client must read before more responses render.
const WRITE_BUFFER_SOFT_CAP: usize = 256 << 10;

/// Per-`read(2)` scratch size.
const READ_CHUNK: usize = 16 << 10;

/// Never let one connection's in-flight count reach the scheduler window
/// (where submit would block the loop), and keep a global fairness bound.
const INFLIGHT_CAP: usize = 512;

/// One tracked connection in the event loop.
struct Conn {
    stream: TcpStream,
    peer: std::net::SocketAddr,
    submit: Connection,
    responses: Responses,
    /// Partial request line (capped at `MAX_LINE_BYTES + 1` bytes).
    rbuf: Vec<u8>,
    /// True byte length of the line being accumulated (keeps counting past
    /// the cap so the oversized rejection reports the real size).
    line_len: usize,
    /// Pending response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf` (compacted lazily).
    wpos: usize,
    /// Responses submitted but not yet routed back — the anti-wedge cap.
    inflight: usize,
    /// Client half-closed its write side: no more requests.
    eof: bool,
    /// `finish()` ran (exactly once, at EOF).
    finished: bool,
    /// The response stream closed: every response has been routed.
    drained: bool,
    /// Hard I/O error or vanished client: tear down without draining.
    dead: bool,
    t0: Instant,
}

impl Conn {
    fn inflight_cap(&self) -> usize {
        INFLIGHT_CAP.min(self.submit.max_outstanding()).max(1)
    }

    /// Whether the loop wants more request bytes from this socket.
    fn wants_read(&self) -> bool {
        !self.eof
            && !self.dead
            && self.inflight < self.inflight_cap()
            && self.pending_write() < WRITE_BUFFER_SOFT_CAP
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Flushes pending response bytes; returns bytes written.
    fn pump_write(&mut self) -> usize {
        let mut wrote = 0;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    wrote += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > (64 << 10) {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        wrote
    }

    /// Moves routed responses into the write buffer; returns lines moved.
    fn pump_responses(&mut self) -> usize {
        let mut moved = 0;
        while self.pending_write() < WRITE_BUFFER_SOFT_CAP {
            match self.responses.poll() {
                PolledResponse::Ready(line, _) => {
                    self.wbuf.extend_from_slice(line.as_bytes());
                    self.wbuf.push(b'\n');
                    self.inflight = self.inflight.saturating_sub(1);
                    moved += 1;
                }
                PolledResponse::Empty => break,
                PolledResponse::Closed => {
                    self.drained = true;
                    break;
                }
            }
        }
        moved
    }

    /// Reads request bytes and submits complete lines (shed admission);
    /// returns bytes read.
    fn pump_read(&mut self) -> usize {
        let mut scratch = [0u8; READ_CHUNK];
        let mut got = 0;
        while self.wants_read() {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    got += n;
                    self.ingest(&scratch[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.eof && !self.finished {
            // Trailing unterminated line: the capped reader semantics
            // treat EOF as end-of-line when any bytes arrived.
            if self.line_len > 0 {
                self.end_line();
            }
            self.submit.finish();
            self.finished = true;
        }
        got
    }

    /// Splits a chunk into request lines, keeping at most
    /// `MAX_LINE_BYTES + 1` buffered bytes per line (the `+ 1` proves the
    /// overflow; the oversized tail is discarded, framing preserved).
    fn ingest(&mut self, mut chunk: &[u8]) {
        while let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            let (head, tail) = chunk.split_at(pos);
            self.buffer_line_bytes(head);
            self.end_line();
            chunk = &tail[1..];
        }
        self.buffer_line_bytes(chunk);
    }

    fn buffer_line_bytes(&mut self, part: &[u8]) {
        self.line_len += part.len();
        let room = (proto::MAX_LINE_BYTES + 1).saturating_sub(self.rbuf.len());
        self.rbuf.extend_from_slice(&part[..part.len().min(room)]);
    }

    /// Submits the accumulated line (or rejects it as oversized).
    fn end_line(&mut self) {
        let outcome = if self.line_len > proto::MAX_LINE_BYTES {
            self.submit.reject_oversized(self.line_len)
        } else {
            let line = String::from_utf8_lossy(&self.rbuf).into_owned();
            self.submit.submit(&line, Admission::Shed)
        };
        self.rbuf.clear();
        self.line_len = 0;
        match outcome {
            SubmitOutcome::Ignored => {}
            SubmitOutcome::Disconnected => self.dead = true,
            _ => self.inflight += 1,
        }
    }

    /// Finished serving: either torn down, or EOF reached with every
    /// response routed and written.
    fn complete(&self) -> bool {
        self.dead || (self.eof && self.drained && self.pending_write() == 0)
    }
}

#[cfg(unix)]
mod park {
    //! Readiness parking via a raw `poll(2)` declaration (std links libc).

    use super::Conn;
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Waits until a tracked socket is ready or `timeout_ms` elapses, and
    /// returns the indices of the connections poll reported ready (any
    /// revents, so errors and hangups surface too). In-process response
    /// channels cannot wake `poll`, so callers keep the timeout short
    /// whenever responses are still in flight.
    pub(super) fn wait(
        listener: Option<&TcpListener>,
        conns: &[Conn],
        timeout_ms: i32,
    ) -> Vec<usize> {
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 1);
        let mut owner: Vec<usize> = Vec::with_capacity(conns.len());
        if let Some(listener) = listener {
            fds.push(PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            owner.push(usize::MAX); // sentinel: the accept pass handles it
        }
        for (index, conn) in conns.iter().enumerate() {
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.pending_write() > 0 {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                owner.push(index);
            }
        }
        if fds.is_empty() {
            if timeout_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
            }
            return Vec::new();
        }
        let ready = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if ready <= 0 {
            return Vec::new();
        }
        fds.iter()
            .zip(&owner)
            .filter(|(fd, &index)| fd.revents != 0 && index != usize::MAX)
            .map(|(_, &index)| index)
            .collect()
    }
}

#[cfg(not(unix))]
mod park {
    //! Portable fallback: a short sleep, then sweep every connection.

    use super::Conn;
    use std::net::TcpListener;

    pub(super) fn wait(
        _listener: Option<&TcpListener>,
        conns: &[Conn],
        timeout_ms: i32,
    ) -> Vec<usize> {
        if timeout_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                timeout_ms.clamp(1, 20) as u64
            ));
        }
        (0..conns.len()).collect()
    }
}

/// The nonblocking JSONL accept-and-serve loop: every connection is
/// multiplexed onto the calling thread. Semantics match the old
/// thread-per-connection loop — shed admission per request, `max_conns`
/// refusals with one typed overload line, per-connection reports on
/// stderr, aggregate report returned once `accept_total` connections have
/// been accepted and drained (`None` serves forever).
pub(crate) fn serve_nonblocking(
    listener: &TcpListener,
    scheduler: &Scheduler,
    proto: Protocol,
    limits: TcpLimits,
) -> io::Result<ServeReport> {
    listener.set_nonblocking(true)?;
    let model = scheduler.model_name().to_owned();
    let mut total = ServeReport::default();
    let mut conns: Vec<Conn> = Vec::new();
    let mut accepted = 0usize;

    let mut last_progress = 1usize;
    loop {
        let accepting = limits.accept_total.is_none_or(|m| accepted < m);
        let mut progress = 0usize;

        // Readiness first: a zero timeout just collects what is already
        // ready while work is flowing; once an iteration moves nothing,
        // park until a socket wakes us. Responses arrive over in-process
        // channels that cannot wake poll(2), so tick fast while any are
        // expected and slowly when fully idle (the 10k-idle-watchers case).
        let awaiting: usize = conns
            .iter()
            .map(|c| c.inflight + usize::from(c.finished && !c.drained))
            .sum();
        let timeout_ms = if last_progress > 0 {
            0
        } else if awaiting > 0 {
            1
        } else {
            250
        };
        let woken = park::wait(accepting.then_some(listener), &conns, timeout_ms);

        // Accept every pending connection (or refuse it, typed).
        let mut newly_accepted = 0usize;
        while accepting && limits.accept_total.is_none_or(|m| accepted < m) {
            match listener.accept() {
                Ok((mut stream, peer)) => {
                    accepted += 1;
                    progress += 1;
                    if limits.max_conns.is_some_and(|m| conns.len() >= m) {
                        // Connection-level admission control: one typed
                        // overload line, then close. The just-accepted
                        // socket is still blocking (accept does not
                        // inherit O_NONBLOCK), so the one-line write is
                        // safe without buffering.
                        let mut line = String::new();
                        match proto {
                            Protocol::V1 => proto::render_overload_v1(&mut line),
                            Protocol::V2 => proto::render_overload_v2(&mut line, "connect"),
                        }
                        line.push('\n');
                        let _ = stream.write_all(line.as_bytes());
                        eprintln!(
                            "[{peer}] refused: {} concurrent connection(s) reached",
                            conns.len()
                        );
                        total.overloads += 1;
                        scheduler.metrics().inc_overloads();
                        continue;
                    }
                    stream.set_nonblocking(true)?;
                    let (submit, responses) = scheduler.connect(proto);
                    newly_accepted += 1;
                    conns.push(Conn {
                        stream,
                        peer,
                        submit,
                        responses,
                        rbuf: Vec::new(),
                        line_len: 0,
                        wbuf: Vec::new(),
                        wpos: 0,
                        inflight: 0,
                        eof: false,
                        finished: false,
                        drained: false,
                        dead: false,
                        t0: Instant::now(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        // Sweep only the connections with something to do — poll-ready
        // sockets, lanes still owed in-process responses, buffered writes,
        // and the just-accepted batch: write → route responses → write →
        // read. Idle watchers cost nothing here.
        let first_new = conns.len() - newly_accepted;
        let mut sweep = woken;
        for (index, conn) in conns.iter().enumerate() {
            if index >= first_new
                || conn.inflight > 0
                || (conn.finished && !conn.drained)
                || conn.pending_write() > 0
            {
                sweep.push(index);
            }
        }
        sweep.sort_unstable();
        sweep.dedup();
        for index in sweep {
            let conn = &mut conns[index];
            progress += conn.pump_write();
            progress += conn.pump_responses();
            if conn.pending_write() > 0 {
                progress += conn.pump_write();
            }
            progress += conn.pump_read();
        }

        // Retire completed connections.
        let mut i = 0;
        while i < conns.len() {
            if !conns[i].complete() {
                i += 1;
                continue;
            }
            let conn = conns.swap_remove(i);
            let secs = conn.t0.elapsed().as_secs_f64();
            let peer = conn.peer;
            let id = conn.submit.id();
            // Drop the submit/response halves first: dropping `submit`
            // finishes the connection, so the report below is final.
            drop(conn);
            let report = ServeReport::from_conn(scheduler.take_report(id), secs);
            eprint!("[{peer}] {}", report.render(&model));
            total.absorb(&report);
            progress += 1;
        }

        if conns.is_empty() && limits.accept_total.is_some_and(|m| accepted >= m) {
            return Ok(total);
        }
        last_progress = progress;
    }
}
