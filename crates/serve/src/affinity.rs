//! Best-effort CPU affinity for shard workers.
//!
//! Shard-per-core serving wants each lane's scoring threads parked on
//! their own core so a shard's queue, cache slice and scratch matrices
//! stay in one core's cache domain. Affinity is strictly an optimization:
//! on Linux it is a raw `sched_setaffinity(2)` call (std already links
//! libc, so no new dependency), and a failure — containers and cpusets
//! routinely forbid it — is silently ignored. On every other platform
//! [`pin_to_core`] is a documented no-op that reports `false`.

/// The number of CPUs available to this process, at least 1. Shard → core
/// assignment wraps modulo this, so oversubscribed layouts (more shards
/// than cores) still pin deterministically.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pins the calling thread to `core` (an index into the affinity mask).
/// Returns whether the kernel accepted the mask; `false` on non-Linux
/// platforms, for out-of-range cores, or when the scheduler refuses.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    // One u64 word covers 64 CPUs; 16 words cover 1024, the kernel's
    // conventional CPU_SETSIZE. std links libc, so declaring the one
    // symbol we need keeps the crate dependency-free.
    const WORDS: usize = 16;
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    if core >= WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    // pid 0 = the calling thread.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Pins the calling thread to `core`. Not supported off Linux: always
/// returns `false` and changes nothing.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn out_of_range_core_is_refused_not_crashed() {
        assert!(!pin_to_core(1 << 20));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 always exists; run in a scratch thread so this test's
        // own scheduling is left untouched.
        let pinned = std::thread::spawn(|| pin_to_core(0)).join().expect("join");
        assert!(pinned, "sched_setaffinity(core 0) should succeed");
    }
}
