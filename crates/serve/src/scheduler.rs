//! The cross-connection micro-batching scheduler.
//!
//! PR 2 measured a 3.7× inference win for 64-row batches — but the old
//! daemon gave every connection a private serving loop, so batches only
//! formed *within* one client and a swarm of single-request connections
//! (the chain-watch workload) scored one row at a time. This module inverts
//! that design around one shared pipeline:
//!
//! ```text
//!  conn readers ──┐                      ┌─ worker 0 ─┐   per-conn
//!  (decode, cache │   bounded MPMC       │  batch ≤ B │   ordered
//!   lookup, seq#) ├──▶ submit queue ────▶│  score via ├──▶ routers ──▶ writers
//!  conn readers ──┘   (admission        │  Scanner    │   (seq-sorted)
//!                      control)          └─ worker N ─┘
//! ```
//!
//! * **Micro-batching** — workers drain the queue into batches of up to
//!   `batch` rows *across connections*, flushing on size or on a `linger`
//!   deadline, and score them through one shared [`Scanner`] snapshot.
//! * **Verdict cache** — in front of the queue sits a keccak-keyed
//!   [`VerdictCache`]: a redeployed bytecode is answered at submit time
//!   without ever occupying a batch slot, bit-identically to a cold score.
//! * **Admission control** — the queue is bounded; shed-mode submission
//!   ([`Admission::Shed`], the TCP path) answers queue-full with a typed
//!   overload response instead of buffering without limit, while
//!   [`Admission::Block`] (the stdin bulk path) applies backpressure.
//! * **Ordered responses** — every request takes a per-connection sequence
//!   number at submit; a per-connection router reassembles responses in
//!   that order no matter how cache hits, inline errors and scored batches
//!   interleave.
//! * **Graceful shutdown** — [`Scheduler::shutdown`] closes the queue (the
//!   sentinel), workers drain every in-flight job, and only then join; no
//!   admitted request is ever dropped.
//!
//! PR 7 adds the fault-tolerance layer:
//!
//! * **Worker supervision** — scoring runs under `catch_unwind`; a panicked
//!   batch answers every in-flight request with a typed internal error, and
//!   the supervisor respawns a fresh worker sibling (panic counter in
//!   `/metrics`). One model bug never wedges the per-connection routers.
//! * **Deadlines** — [`SchedulerOptions::deadline_ms`] is enforced at
//!   dequeue: a request that waited past its budget answers a typed
//!   timeout without occupying model time.
//! * **Retry/backoff** — address resolution through the chain runs under a
//!   seeded [`RetryPolicy`] with decorrelated-jitter backoff, so transient
//!   chain faults don't fail requests.
//! * **Brownout ladder** — queue fill drives
//!   [`DegradationTier`]: `Full → CacheFirst` (ensembles answer from their
//!   cheapest member) `→ CacheOnly` (misses shed typed overload)
//!   `→ Shed` (queue full refuses). Lossless [`Admission::Block`]
//!   submissions never degrade.
//! * **Fault injection** — an optional seeded
//!   [`FaultPlan`] injects worker panics and
//!   chain faults at exactly the seams above; `None` costs nothing.
//!
//! PR 8 shards the core. With [`SchedulerOptions::shards`] = N, the single
//! `(queue, worker pool, cache)` triple becomes N independent lanes:
//!
//! ```text
//!                      ┌─ shard 0: queue ─▶ workers ─▶ cache slice ─┐
//!  conn readers ──────▶│  shard 1: queue ─▶ workers ─▶ cache slice  ├─▶ routers
//!  (keccak digest      │  …                                         │
//!   % N routing)       └─ shard N-1: …                              ┘
//! ```
//!
//! Requests route by [`shard_of`] over the keccak-256 digest already
//! computed for cache keying, so a given bytecode always lands on the same
//! shard — its cache slice stays hot and no lock is shared across lanes.
//! Workers are optionally core-pinned ([`SchedulerOptions::pin_cores`],
//! best-effort on Linux, a no-op elsewhere). Because scoring is a pure
//! function of the bytecode, verdicts are `f64::to_bits`-identical across
//! every shard layout — asserted by the determinism harness in
//! `tests/shard_determinism.rs` and by the bench binary.

use crate::cache::{CacheStats, CachedVerdict, VerdictCache};
use crate::fault::{FaultConfig, FaultPlan};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::proto::{self, Protocol};
use phishinghook_data::{Address, CodeSource, RetryPolicy, SharedChain};
use phishinghook_evm::keccak::Digest;
use phishinghook_models::{ResolveError, Scanner, Target};
use std::collections::{BTreeMap, HashMap};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one scheduler (one serving process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerOptions {
    /// Maximum rows per scored batch (≥ 1).
    pub batch: usize,
    /// Scoring worker threads **per shard** (≥ 1).
    pub workers: usize,
    /// Independent serving lanes (≥ 1). Each shard owns a bounded queue of
    /// `queue_depth / shards` slots, `workers` scoring threads, and a
    /// `cache_bytes / shards` slice of the verdict cache; requests route by
    /// keccak digest ([`shard_of`]), so a given bytecode always lands on
    /// the same shard and no queue or cache lock is shared across lanes.
    pub shards: usize,
    /// Pin each shard's workers to a CPU core (round-robin over the
    /// available cores). Best-effort: on Linux a failed
    /// `sched_setaffinity` is ignored; elsewhere this is a no-op.
    pub pin_cores: bool,
    /// Bounded submit-queue capacity — the admission-control knob. Split
    /// evenly across shards (each lane gets `queue_depth / shards`,
    /// rounded up).
    pub queue_depth: usize,
    /// How long a worker tops up a partial batch before flushing it (µs).
    pub linger_micros: u64,
    /// Verdict-cache byte budget; `0` disables the cache. Split evenly
    /// across shards — each lane owns a `cache_bytes / shards` slice keyed
    /// by the digests that route to it, so slices never duplicate entries.
    pub cache_bytes: usize,
    /// Per-connection flow-control window: the maximum responses a
    /// connection may have outstanding (allocated but not yet received by
    /// its writer). When reached, [`Connection::submit`] blocks — the
    /// reader stops consuming the socket, so a client that never reads its
    /// responses is back-pressured by TCP instead of growing daemon memory
    /// without bound. Must exceed any burst a driver submits before
    /// draining (the `watch` driver submits one block at a time).
    pub max_outstanding: usize,
    /// Per-request deadline in milliseconds, enforced at dequeue: a job
    /// that waited longer answers a typed timeout instead of being scored.
    /// `0` disables the deadline.
    pub deadline_ms: u64,
    /// Bounded graceful drain: once [`Scheduler::begin_drain`] has run for
    /// this long, workers answer still-queued jobs with typed timeouts
    /// instead of scoring them. `0` drains without bound (score everything).
    pub drain_ms: u64,
    /// Queue-fill percentage at which shed-mode submissions degrade to the
    /// cheapest ensemble member ([`DegradationTier::CacheFirst`]). `0`
    /// forces the tier (a bench knob); above `100` it can never trigger.
    pub cache_first_pct: u32,
    /// Queue-fill percentage at which shed-mode cache misses are refused
    /// with a typed overload ([`DegradationTier::CacheOnly`]).
    pub cache_only_pct: u32,
    /// Backoff policy for transient chain faults during address resolution.
    pub retry: RetryPolicy,
    /// Optional deterministic fault schedule (the chaos harness). `None`
    /// injects nothing and costs nothing.
    pub fault: Option<FaultConfig>,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        // 64-row batches keep the scratch matrix hot; a 1 ms linger is far
        // below human-visible latency but long enough for concurrent
        // single-line clients to coalesce; 8 MiB caches ~80k single-model
        // verdicts — plenty for the few thousand live phishing templates
        // the paper observes. 8192 outstanding responses bound a
        // never-reading connection to a couple of MB.
        // Brownout thresholds sit above any healthy steady state: a queue
        // half full means the workers are already behind.
        SchedulerOptions {
            batch: 64,
            workers: 1,
            shards: 1,
            pin_cores: false,
            queue_depth: 1024,
            linger_micros: 1000,
            cache_bytes: 8 << 20,
            max_outstanding: 8192,
            deadline_ms: 0,
            drain_ms: 0,
            cache_first_pct: 50,
            cache_only_pct: 75,
            retry: RetryPolicy::default(),
            fault: None,
        }
    }
}

/// Where the scheduler is in its life, reported on `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Accepting and scoring requests.
    Running,
    /// [`Scheduler::begin_drain`] ran: finish what's queued, then stop.
    Draining,
}

/// The brownout ladder: how much quality the scheduler is currently
/// trading for headroom, driven by queue fill. The implicit fourth rung —
/// Shed — is the queue-full refusal that always existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationTier {
    /// Normal operation: full-ensemble scoring.
    Full = 0,
    /// Shed-mode submissions score on the cheapest ensemble member only
    /// (cache hits still replay full-ensemble verdicts).
    CacheFirst = 1,
    /// Shed-mode cache misses answer a typed overload; only cache hits are
    /// served.
    CacheOnly = 2,
}

impl DegradationTier {
    /// Stable lower-case name, used in `/healthz` bodies and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationTier::Full => "full",
            DegradationTier::CacheFirst => "cache-first",
            DegradationTier::CacheOnly => "cache-only",
        }
    }
}

/// How a submission behaves when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Wait for space (lossless backpressure — the stdin bulk path).
    Block,
    /// Refuse with a typed overload response (the TCP path).
    Shed,
}

/// Monotonic scheduler counters (see the `stats` wire command).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Valid scoring requests admitted to the queue (cache hits excluded —
    /// they never occupy a queue slot).
    pub submitted: u64,
    /// Requests scored by workers (completed batches only).
    pub scored: u64,
    /// Malformed request lines answered with an error response.
    pub errors: u64,
    /// Requests shed with a typed overload response.
    pub overloads: u64,
    /// Batches scored.
    pub batches: u64,
    /// Connections accepted over the scheduler's lifetime.
    pub connections: u64,
    /// Jobs queued right now.
    pub queue_depth: u64,
}

/// Everything the `stats` wire command reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Scheduler counters.
    pub scheduler: SchedulerStats,
    /// Cache counters (`None` when the cache is disabled).
    pub cache: Option<CacheStats>,
}

/// Per-connection tallies, returned by [`Scheduler::take_report`] once a
/// connection's responses have all been written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnReport {
    /// Scored requests (cold and cached).
    pub contracts: u64,
    /// Malformed lines answered with an error response.
    pub errors: u64,
    /// Requests shed with an overload response.
    pub overloads: u64,
    /// Requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Requests that missed the cache (or ran with the cache disabled).
    pub cache_misses: u64,
    /// Total bytecode bytes scored.
    pub bytes: u64,
}

/// One queued scoring job.
struct Job {
    conn: u64,
    seq: u64,
    id: String,
    /// The resolved address, echoed in the v2 response for address-form
    /// requests.
    address: Option<Address>,
    code: Vec<u8>,
    /// Precomputed at submit when the cache is on (reused for the insert).
    hash: Option<Digest>,
    proto: Protocol,
    /// Submit time, for the request-latency histogram.
    t0: Instant,
    /// Admitted under [`DegradationTier::CacheFirst`]: score on the
    /// cheapest ensemble member only, and never insert into the cache.
    degraded: bool,
}

/// What kind of response a routed line settles, for per-conn tallies.
enum Settle {
    Scored { bytes: u64, cached: bool },
    Error,
    Overload,
    Timeout,
    Internal,
    Stats,
}

/// The transport-facing classification of one routed response line.
///
/// JSONL writers only need the line; the HTTP gateway reads the kind via
/// [`Responses::recv_with_kind`] to map deferred verdict slots to their
/// status (200 verdict, 500 worker panic, 504 deadline, 503 overload)
/// *after* the response is known, since the status line is written when
/// the response routes — not when the request was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// A scored or cache-replayed verdict.
    Verdict,
    /// An inline body whose status the transport fixed at submit time
    /// (stats, health, metrics, pre-rendered rejects).
    Inline,
    /// A malformed or unresolvable request, answered at submit time.
    Error,
    /// A typed overload response.
    Overload,
    /// The request's deadline expired before a worker scored it.
    Timeout,
    /// The scoring worker panicked on the batch carrying this request.
    Internal,
}

struct ConnState {
    /// `Some` while the writer is attached; dropped (closing the writer's
    /// channel) once the connection is finished and fully drained.
    tx: Option<mpsc::Sender<(String, ResponseKind)>>,
    next_seq: u64,
    submitted_seqs: u64,
    pending: BTreeMap<u64, (String, ResponseKind)>,
    eof: bool,
    report: ConnReport,
}

/// Per-connection flow-control window: counts responses allocated but not
/// yet received from the connection's [`Responses`] stream, and remembers
/// whether that stream is still alive.
struct Window {
    state: Mutex<WindowState>,
    changed: Condvar,
}

struct WindowState {
    outstanding: usize,
    receiver_alive: bool,
}

impl Window {
    fn new() -> Self {
        Window {
            state: Mutex::new(WindowState {
                outstanding: 0,
                receiver_alive: true,
            }),
            changed: Condvar::new(),
        }
    }

    /// Claims one response slot, blocking while the window is full. `false`
    /// when the receiver is gone (responses would go nowhere).
    fn claim(&self, max_outstanding: usize) -> bool {
        let mut state = self.state.lock().expect("window lock");
        while state.receiver_alive && state.outstanding >= max_outstanding {
            state = self.changed.wait(state).expect("window lock");
        }
        if !state.receiver_alive {
            return false;
        }
        state.outstanding += 1;
        true
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("window lock");
        state.outstanding = state.outstanding.saturating_sub(1);
        drop(state);
        self.changed.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("window lock").receiver_alive = false;
        self.changed.notify_all();
    }
}

/// The in-order response stream of one connection (the writer side of
/// [`Scheduler::connect`]). Receiving a line credits the connection's
/// flow-control window; dropping the stream unblocks and disconnects the
/// submit side.
pub struct Responses {
    rx: mpsc::Receiver<(String, ResponseKind)>,
    window: Arc<Window>,
}

impl Responses {
    /// The next response line, in request order; `None` once the
    /// connection is finished and fully drained.
    pub fn recv(&self) -> Option<String> {
        self.recv_with_kind().map(|(line, _)| line)
    }

    /// Like [`Responses::recv`], with the line's [`ResponseKind`] — how
    /// the HTTP gateway types 500s and 504s it only learns at route time.
    pub fn recv_with_kind(&self) -> Option<(String, ResponseKind)> {
        let routed = self.rx.recv().ok()?;
        self.window.release();
        Some(routed)
    }

    /// A response line only if one is already routed (never blocks).
    pub fn try_recv(&self) -> Option<String> {
        let (line, _) = self.rx.try_recv().ok()?;
        self.window.release();
        Some(line)
    }

    /// Nonblocking receive that distinguishes "nothing yet" from "stream
    /// ended" — what an event loop needs, where [`Responses::try_recv`]'s
    /// single `None` would conflate an idle connection with a finished one.
    pub fn poll(&self) -> PolledResponse {
        match self.rx.try_recv() {
            Ok((line, kind)) => {
                self.window.release();
                PolledResponse::Ready(line, kind)
            }
            Err(mpsc::TryRecvError::Empty) => PolledResponse::Empty,
            Err(mpsc::TryRecvError::Disconnected) => PolledResponse::Closed,
        }
    }

    /// Iterates responses in request order until the stream ends.
    pub fn iter(&self) -> impl Iterator<Item = String> + '_ {
        std::iter::from_fn(|| self.recv())
    }
}

/// One [`Responses::poll`] outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolledResponse {
    /// A routed response line and its transport-facing kind.
    Ready(String, ResponseKind),
    /// Nothing routed yet; the connection is still live.
    Empty,
    /// The stream ended: the connection finished and fully drained.
    Closed,
}

impl std::fmt::Debug for Responses {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responses").finish_non_exhaustive()
    }
}

impl Drop for Responses {
    fn drop(&mut self) {
        self.window.close();
    }
}

struct Router {
    conns: Mutex<HashMap<u64, ConnState>>,
    next_id: AtomicU64,
}

impl Router {
    /// Routes one response line, releasing every line that is now in
    /// per-connection order, and tallies it into the connection's report.
    fn complete(&self, conn: u64, seq: u64, line: String, settle: Settle) {
        let kind = match &settle {
            Settle::Scored { .. } => ResponseKind::Verdict,
            Settle::Error => ResponseKind::Error,
            Settle::Overload => ResponseKind::Overload,
            Settle::Timeout => ResponseKind::Timeout,
            Settle::Internal => ResponseKind::Internal,
            Settle::Stats => ResponseKind::Inline,
        };
        let mut conns = self.conns.lock().expect("router lock");
        let Some(state) = conns.get_mut(&conn) else {
            return; // report already taken (connection torn down)
        };
        match settle {
            Settle::Scored { bytes, cached } => {
                state.report.contracts += 1;
                state.report.bytes += bytes;
                if cached {
                    state.report.cache_hits += 1;
                } else {
                    state.report.cache_misses += 1;
                }
            }
            Settle::Error | Settle::Timeout | Settle::Internal => state.report.errors += 1,
            Settle::Overload => state.report.overloads += 1,
            Settle::Stats => {}
        }
        state.pending.insert(seq, (line, kind));
        while let Some(ready) = state.pending.remove(&state.next_seq) {
            if let Some(tx) = &state.tx {
                // A dead writer only means the lines go nowhere; ordering
                // bookkeeping still advances so shutdown can drain.
                let _ = tx.send(ready);
            }
            state.next_seq += 1;
        }
        if state.eof && state.next_seq == state.submitted_seqs {
            state.tx = None; // closes the writer's channel
        }
    }
}

/// Maps a keccak-256 digest to its serving lane: the first 8 digest bytes
/// as a little-endian `u64`, modulo the shard count. Keccak output is
/// uniformly distributed, so lanes load-balance without any extra hashing;
/// with one shard every digest maps to lane 0.
pub fn shard_of(digest: &Digest, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let mut prefix = [0u8; 8];
    prefix.copy_from_slice(&digest.0[..8]);
    (u64::from_le_bytes(prefix) % n_shards as u64) as usize
}

/// One serving lane: a bounded queue and a verdict-cache slice, owned
/// exclusively by this shard's workers and the submitters that route here.
struct Shard {
    queue: crate::queue::BoundedQueue<Job>,
    cache: Option<VerdictCache>,
}

/// Live per-shard observability, exported as `shard="<i>"`-labelled
/// Prometheus families and by [`Scheduler::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// The shard index (the `shard_of` routing target).
    pub shard: usize,
    /// Jobs queued on this shard right now.
    pub queue_depth: u64,
    /// This shard's queue capacity.
    pub queue_capacity: u64,
    /// This shard's cache-slice counters (`None` when the cache is off).
    pub cache: Option<CacheStats>,
}

struct Shared {
    shards: Vec<Shard>,
    router: Router,
    /// Model names in per-model order — fixed for the process lifetime.
    names: Vec<String>,
    model_version: String,
    model_name: String,
    /// Whether tree models score through the quantized engine.
    quantize: bool,
    /// Widest per-feature bin count across the model's quantized mirrors
    /// (`None` for non-tree models or `quantize=off` reporting no mirror).
    quant_bins: Option<usize>,
    max_outstanding: usize,
    /// Every serving counter, behind one consistent snapshot path.
    metrics: Metrics,
    /// Chain handle for resolving address-form requests; `None` serves
    /// bytecode-only (address requests answer a typed error).
    chain: Option<SharedChain>,
    /// Per-request deadline (`None` = no deadline), enforced at dequeue.
    deadline: Option<Duration>,
    /// Bounded-drain budget in milliseconds (`0` = unbounded).
    drain_ms: u64,
    /// 0 = running, 1 = draining (see [`Lifecycle`]).
    lifecycle: AtomicU8,
    /// Set by [`Scheduler::begin_drain`] when `drain_ms > 0`; past this
    /// instant workers answer queued jobs with typed timeouts.
    drain_deadline: Mutex<Option<Instant>>,
    /// Brownout thresholds (percent of queue capacity).
    cache_first_pct: u32,
    cache_only_pct: u32,
    /// Backoff policy for transient chain faults.
    retry: RetryPolicy,
    /// Seeded fault schedule; `None` injects nothing.
    fault: Option<Arc<FaultPlan>>,
}

impl Shared {
    /// Jobs queued across every shard.
    fn queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Total queue capacity across every shard.
    fn queue_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.queue.capacity()).sum()
    }

    /// Cache counters summed across every shard's slice (`None` when the
    /// cache is disabled). Slices never share keys — a digest routes to
    /// exactly one shard — so plain sums stay exact.
    fn cache_stats(&self) -> Option<CacheStats> {
        self.shards[0].cache.as_ref()?;
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let stats = shard.cache.as_ref().map(VerdictCache::stats)?;
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
            total.insertions += stats.insertions;
            total.entries += stats.entries;
            total.bytes += stats.bytes;
            total.capacity_bytes += stats.capacity_bytes;
        }
        Some(total)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.queue_len() as u64,
            self.queue_capacity() as u64,
            self.cache_stats(),
        )
    }

    /// Per-shard depth/capacity/cache view for `/metrics` and the CLI.
    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardStats {
                shard: i,
                queue_depth: shard.queue.len() as u64,
                queue_capacity: shard.queue.capacity() as u64,
                cache: shard.cache.as_ref().map(VerdictCache::stats),
            })
            .collect()
    }

    /// The brownout tier a queue at `len` of `cap` slots sits in. Pure —
    /// callers that report the tier push it to the gauge themselves.
    fn tier_from_fill(&self, len: usize, cap: usize) -> DegradationTier {
        let fill = len * 100;
        if fill >= self.cache_only_pct as usize * cap {
            DegradationTier::CacheOnly
        } else if fill >= self.cache_first_pct as usize * cap {
            DegradationTier::CacheFirst
        } else {
            DegradationTier::Full
        }
    }

    /// The brownout tier for one shard's current fill, pushed to the
    /// metrics tier gauge / degraded-time clock as a side effect — each
    /// lane degrades on its own backlog, so one hot shard browning out
    /// never sheds traffic from its idle siblings.
    fn tier_for(&self, shard: usize) -> DegradationTier {
        let queue = &self.shards[shard].queue;
        let tier = self.tier_from_fill(queue.len(), queue.capacity());
        self.metrics.set_tier(tier as u8);
        tier
    }

    /// The deepest brownout tier across all shards (the process-level
    /// answer `/healthz` and the CLI report), also pushed to the gauge.
    fn current_tier(&self) -> DegradationTier {
        let tier = (0..self.shards.len())
            .map(|i| {
                let queue = &self.shards[i].queue;
                self.tier_from_fill(queue.len(), queue.capacity())
            })
            .max()
            .unwrap_or(DegradationTier::Full);
        self.metrics.set_tier(tier as u8);
        tier
    }

    fn is_draining(&self) -> bool {
        self.lifecycle.load(Ordering::SeqCst) == 1
    }

    /// True once a bounded drain's deadline has passed: queued jobs should
    /// answer typed timeouts instead of being scored.
    fn drain_expired(&self) -> bool {
        self.is_draining()
            && self
                .drain_deadline
                .lock()
                .expect("drain lock")
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    fn stats(&self) -> StatsSnapshot {
        let snap = self.metrics_snapshot();
        StatsSnapshot {
            scheduler: snap.scheduler,
            cache: snap.cache,
        }
    }
}

/// The shared serving core: one scheduler per process, many connections.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("model", &self.shared.model_name)
            .field("workers", &self.workers.len())
            .field("stats", &self.shared.stats())
            .finish()
    }
}

impl Scheduler {
    /// Spawns the worker pool around `scanner`'s shared model. The snapshot
    /// behind `scanner` is restored once by the caller; every worker is an
    /// `Arc`-sharing [`Scanner::worker`] sibling with its own scratch
    /// matrix. Serves bytecode-only: address-form requests answer a typed
    /// error (attach a chain with [`Scheduler::with_chain`]).
    pub fn new(scanner: &Scanner, opts: &SchedulerOptions) -> Self {
        Scheduler::with_chain(scanner, opts, None)
    }

    /// Like [`Scheduler::new`], with a chain handle: address-form requests
    /// resolve to bytecode through `chain` at submit time, so HTTP and
    /// JSONL clients can ask about a deployed contract by address alone.
    pub fn with_chain(
        scanner: &Scanner,
        opts: &SchedulerOptions,
        chain: Option<SharedChain>,
    ) -> Self {
        let n_shards = opts.shards.max(1);
        // Each lane gets an even split of the queue and cache budgets —
        // rounded up for queues (so `shards > queue_depth` still admits),
        // rounded down for caches (a 0-byte slice disables caching, which
        // keeps `cache_bytes: 0` meaning "off" for any shard count).
        let lane_depth = opts.queue_depth.max(1).div_ceil(n_shards);
        let lane_cache_bytes = opts.cache_bytes / n_shards;
        let shards = (0..n_shards)
            .map(|_| Shard {
                queue: crate::queue::BoundedQueue::new(lane_depth),
                cache: (lane_cache_bytes > 0).then(|| VerdictCache::new(lane_cache_bytes)),
            })
            .collect();
        let shared = Arc::new(Shared {
            shards,
            router: Router {
                conns: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(0),
            },
            names: scanner.model_names(),
            model_version: scanner.model_version().to_owned(),
            model_name: scanner.model_name().to_owned(),
            quantize: scanner.quantize(),
            quant_bins: scanner.quant_bins(),
            max_outstanding: opts.max_outstanding.max(1),
            metrics: Metrics::new(),
            chain,
            deadline: (opts.deadline_ms > 0).then(|| Duration::from_millis(opts.deadline_ms)),
            drain_ms: opts.drain_ms,
            lifecycle: AtomicU8::new(0),
            drain_deadline: Mutex::new(None),
            cache_first_pct: opts.cache_first_pct,
            cache_only_pct: opts.cache_only_pct,
            retry: opts.retry.clone(),
            fault: opts
                .fault
                .filter(|config| !config.is_inert())
                .map(|config| Arc::new(FaultPlan::new(config))),
        });
        let batch = opts.batch.max(1);
        let linger = Duration::from_micros(opts.linger_micros);
        let workers_per_shard = opts.workers.max(1);
        let pin = opts.pin_cores;
        let cores = crate::affinity::available_cores();
        let mut workers = Vec::with_capacity(n_shards * workers_per_shard);
        for shard_idx in 0..n_shards {
            for w in 0..workers_per_shard {
                let shared = Arc::clone(&shared);
                let seed = scanner.worker();
                let core = (shard_idx * workers_per_shard + w) % cores;
                // Supervisor: a clean (queue-closed) exit ends the thread;
                // a panicked batch respawns a fresh Arc-sharing sibling —
                // fresh scratch state, same shared model, same shard.
                workers.push(std::thread::spawn(move || {
                    if pin {
                        crate::affinity::pin_to_core(core);
                    }
                    loop {
                        let worker = seed.worker();
                        if worker_loop(&shared, shard_idx, worker, batch, linger) {
                            return;
                        }
                    }
                }));
            }
        }
        Scheduler { shared, workers }
    }

    /// Registers a new connection: the returned [`Connection`] is the
    /// submit side (give it to the reader), the [`Responses`] stream yields
    /// response lines already in request order (give it to the writer).
    /// The stream ends once the connection is finished and every response
    /// routed. Outstanding responses are bounded by
    /// [`SchedulerOptions::max_outstanding`]: a writer that stops draining
    /// eventually blocks the submit side instead of growing memory.
    pub fn connect(&self, proto: Protocol) -> (Connection, Responses) {
        let (tx, rx) = mpsc::channel();
        let window = Arc::new(Window::new());
        let id = self.shared.router.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.inc_connections();
        self.shared
            .router
            .conns
            .lock()
            .expect("router lock")
            .insert(
                id,
                ConnState {
                    tx: Some(tx),
                    next_seq: 0,
                    submitted_seqs: 0,
                    pending: BTreeMap::new(),
                    eof: false,
                    report: ConnReport::default(),
                },
            );
        (
            Connection {
                shared: Arc::clone(&self.shared),
                window: Arc::clone(&window),
                id,
                proto,
                seq: 0,
                finished: false,
            },
            Responses { rx, window },
        )
    }

    /// Removes a finished connection's state and returns its tallies. Call
    /// after the writer has drained (the response channel closed).
    pub fn take_report(&self, conn_id: u64) -> ConnReport {
        self.shared
            .router
            .conns
            .lock()
            .expect("router lock")
            .remove(&conn_id)
            .map(|state| state.report)
            .unwrap_or_default()
    }

    /// Counter snapshot (what the `stats` wire command reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// The full metrics snapshot (what `/metrics` exports): scheduler and
    /// cache counters plus HTTP tallies and the latency histogram, all
    /// captured through one consistent read path.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics_snapshot()
    }

    /// The live counter block — the HTTP gateway records its
    /// request/response tallies here so `/metrics` sees both front-ends.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The number of serving lanes (≥ 1).
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Per-shard queue depth/capacity and cache-slice counters, one entry
    /// per lane in routing order (what `/metrics` labels `shard="i"`).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shared.shard_stats()
    }

    /// Reads the cached verdict for `digest` from whichever shard's cache
    /// slice owns it, without perturbing hit/miss counters or LRU order.
    /// `None` when the cache is off or the digest is not resident — the
    /// observation hook for the bit-equality harness.
    pub fn cached_verdict(&self, digest: &Digest) -> Option<CachedVerdict> {
        let shard = &self.shared.shards[shard_of(digest, self.shared.shards.len())];
        shard.cache.as_ref()?.peek(digest)
    }

    /// Marks the scheduler as draining: `/healthz` flips to 503, and when
    /// a drain budget is configured ([`SchedulerOptions::drain_ms`]),
    /// jobs still queued past the budget answer typed timeouts instead of
    /// being scored. Idempotent; call before [`Scheduler::shutdown`].
    pub fn begin_drain(&self) {
        let was = self.shared.lifecycle.swap(1, Ordering::SeqCst);
        if was == 0 && self.shared.drain_ms > 0 {
            *self.shared.drain_deadline.lock().expect("drain lock") =
                Some(Instant::now() + Duration::from_millis(self.shared.drain_ms));
        }
    }

    /// Running, or draining after [`Scheduler::begin_drain`].
    pub fn lifecycle(&self) -> Lifecycle {
        if self.shared.is_draining() {
            Lifecycle::Draining
        } else {
            Lifecycle::Running
        }
    }

    /// The brownout tier for the current queue fill.
    pub fn degradation_tier(&self) -> DegradationTier {
        self.shared.current_tier()
    }

    /// The attached fault schedule, when one was configured — the chaos
    /// suite reads its injection counters to assert exact recovery.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.shared.fault.as_deref()
    }

    /// Model names in per-model response order.
    pub fn model_names(&self) -> &[String] {
        &self.shared.names
    }

    /// Display name of the served model.
    pub fn model_name(&self) -> &str {
        &self.shared.model_name
    }

    /// `"<snapshot-kind>/v<format-version>"` of the served model.
    pub fn model_version(&self) -> &str {
        &self.shared.model_version
    }

    /// `true` when tree models score through the quantized engine.
    pub fn quantize(&self) -> bool {
        self.shared.quantize
    }

    /// Widest per-feature bin count across the served model's quantized
    /// mirrors (`None` for non-tree models).
    pub fn quant_bins(&self) -> Option<usize> {
        self.shared.quant_bins
    }

    /// Graceful shutdown: closes the queue (the shutdown sentinel), lets
    /// the workers drain and score every already-admitted job, joins them,
    /// and returns the final counters. In-flight requests are never
    /// dropped — their responses are routed before the workers exit.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_in_place();
        self.shared.stats()
    }

    fn shutdown_in_place(&mut self) {
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The submit side of one registered connection (single-reader).
pub struct Connection {
    shared: Arc<Shared>,
    window: Arc<Window>,
    id: u64,
    proto: Protocol,
    seq: u64,
    finished: bool,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("id", &self.id)
            .field("proto", &self.proto)
            .field("submitted", &self.seq)
            .finish()
    }
}

/// What one submitted line turned into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Blank line: ignored, no response will be produced.
    Ignored,
    /// Admitted to the batch queue; the response arrives asynchronously.
    Queued,
    /// Answered immediately from the verdict cache.
    CacheHit,
    /// Answered immediately with a malformed-request error response.
    Error,
    /// An address target that could not be resolved to bytecode (no chain
    /// attached, or no code at the address); answered with a typed error.
    Unresolved,
    /// Shed with a typed overload response (or refused because the
    /// scheduler is shutting down).
    Overloaded,
    /// The `stats` command: answered immediately with counters.
    Stats,
    /// The connection's [`Responses`] stream was dropped — responses would
    /// go nowhere, so nothing was routed. The reader should stop.
    Disconnected,
}

impl Connection {
    /// This connection's id (the key for [`Scheduler::take_report`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The scheduler's per-connection flow-control window — the poll loop
    /// caps its own in-flight count below this so [`Connection::submit`]
    /// can never block a single-threaded event loop in `Window::claim`.
    pub(crate) fn max_outstanding(&self) -> usize {
        self.shared.max_outstanding
    }

    /// Decodes one request line under the connection's protocol and routes
    /// it: blank lines are ignored; the `stats` command, malformed lines
    /// and cache hits are answered inline; everything else is admitted to
    /// the shared batch queue under the given [`Admission`] mode.
    ///
    /// Blocks while the connection's flow-control window is full (the
    /// writer has [`SchedulerOptions::max_outstanding`] responses it has
    /// not drained yet) — transport backpressure for clients that stop
    /// reading.
    pub fn submit(&mut self, line: &str, admission: Admission) -> SubmitOutcome {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return SubmitOutcome::Ignored;
        }
        let Some(seq) = self.allocate_seq() else {
            return SubmitOutcome::Disconnected;
        };
        if trimmed == proto::STATS_COMMAND {
            let snapshot = self.shared.stats();
            let engine = proto::EngineInfo {
                quantize: self.shared.quantize,
                quant_bins: self.shared.quant_bins,
            };
            let mut out = String::new();
            match self.proto {
                Protocol::V1 => proto::render_stats_v1(&mut out, &snapshot, engine),
                Protocol::V2 => proto::render_stats_v2(&mut out, &snapshot, engine),
            }
            self.shared
                .router
                .complete(self.id, seq, out, Settle::Stats);
            return SubmitOutcome::Stats;
        }

        // Decode to (id, target) under the connection's framing.
        let fallback = seq.to_string();
        let decoded: Result<(String, Target), (String, String)> = match self.proto {
            Protocol::V1 => match proto::check_line_len(line) {
                Err(msg) => Err((fallback.clone(), msg)),
                Ok(()) => match phishinghook_evm::keccak::from_hex(trimmed) {
                    Some(code) => Ok((fallback.clone(), Target::Bytecode(code))),
                    None => Err((fallback.clone(), "not valid hex bytecode".to_owned())),
                },
            },
            Protocol::V2 => match proto::parse_request_v2(line, &fallback) {
                Ok(req) => match req.payload {
                    proto::WirePayload::Bytecode(hex) => {
                        match phishinghook_evm::keccak::from_hex(hex.trim()) {
                            Some(code) => Ok((req.id, Target::Bytecode(code))),
                            None => Err((req.id, "not valid hex bytecode".to_owned())),
                        }
                    }
                    proto::WirePayload::Address(hex) => match proto::parse_address(hex.trim()) {
                        Ok(address) => Ok((req.id, Target::Address(address))),
                        Err(msg) => Err((req.id, msg)),
                    },
                },
                Err(msg) => Err((fallback.clone(), msg)),
            },
        };
        match decoded {
            Ok((id, target)) => self.route_target(seq, id, target, admission),
            Err((id, msg)) => self.route_error(seq, &id, &msg),
        }
    }

    /// Submits one already-decoded [`Target`] (the HTTP `/predict` path
    /// and embedding drivers — no wire framing to parse). Semantics match
    /// [`Connection::submit`]: cache hits and resolution failures answer
    /// inline, everything else is admitted under `admission`.
    pub fn submit_target(
        &mut self,
        id: impl Into<String>,
        target: Target,
        admission: Admission,
    ) -> SubmitOutcome {
        let Some(seq) = self.allocate_seq() else {
            return SubmitOutcome::Disconnected;
        };
        self.route_target(seq, id.into(), target, admission)
    }

    /// Routes one already-rendered response body through the connection's
    /// ordered stream (the HTTP gateway's `/healthz`, `/metrics` and
    /// immediate-reject paths — they must interleave in request order with
    /// scored verdicts on the same connection).
    pub(crate) fn submit_rendered(&mut self, line: String, is_error: bool) -> SubmitOutcome {
        let Some(seq) = self.allocate_seq() else {
            return SubmitOutcome::Disconnected;
        };
        if is_error {
            self.shared.metrics.inc_errors();
            self.shared
                .router
                .complete(self.id, seq, line, Settle::Error);
            SubmitOutcome::Error
        } else {
            self.shared
                .router
                .complete(self.id, seq, line, Settle::Stats);
            SubmitOutcome::Stats
        }
    }

    /// Answers a decode failure inline with the framing's error response.
    fn route_error(&mut self, seq: u64, id: &str, msg: &str) -> SubmitOutcome {
        self.shared.metrics.inc_errors();
        let mut out = String::new();
        match self.proto {
            Protocol::V1 => proto::render_error_v1(&mut out, msg),
            Protocol::V2 => proto::render_error_v2(&mut out, id, msg),
        }
        self.shared
            .router
            .complete(self.id, seq, out, Settle::Error);
        SubmitOutcome::Error
    }

    /// Resolves `target` to bytecode, answers from the cache when
    /// possible, and otherwise admits a job to the shared queue.
    fn route_target(
        &mut self,
        seq: u64,
        id: String,
        target: Target,
        admission: Admission,
    ) -> SubmitOutcome {
        let t0 = Instant::now();
        let address = target.address();
        let code = match target {
            Target::Bytecode(code) => code,
            Target::Address(addr) => {
                let Some(chain) = self.shared.chain.as_ref() else {
                    self.route_error(seq, &id, &ResolveError::NoSource(addr).to_string());
                    return SubmitOutcome::Unresolved;
                };
                // Address resolution runs under the scheduler's seeded
                // retry policy: transient chain faults back off and retry
                // instead of failing the request. The fault plan (when
                // attached) injects its faults and latency here, upstream
                // of the real lookup.
                let metrics = &self.shared.metrics;
                let fault = self.shared.fault.as_deref();
                let lookup = || {
                    if let Some(plan) = fault {
                        if let Some(err) = plan.chain_fault() {
                            return Err(err);
                        }
                    }
                    chain.try_code_at(addr)
                };
                let resolved = self
                    .shared
                    .retry
                    .run(lookup, |_, _, _| metrics.inc_chain_retries());
                match resolved {
                    Ok(Some(code)) => code,
                    Ok(None) => {
                        self.route_error(seq, &id, &ResolveError::NoCode(addr).to_string());
                        return SubmitOutcome::Unresolved;
                    }
                    Err(err) => {
                        self.route_error(seq, &id, &err.to_string());
                        return SubmitOutcome::Unresolved;
                    }
                }
            }
        };

        // The verdict cache sits in front of the queue: a redeployed
        // bytecode never occupies a batch slot. The digest doubles as the
        // shard router, so it is computed whenever either consumer needs
        // it (cache off + 1 shard skips the hash entirely).
        let n_shards = self.shared.shards.len();
        let cache_on = self.shared.shards[0].cache.is_some();
        let hash = (cache_on || n_shards > 1).then(|| Digest::of(&code));
        let shard_idx = hash.as_ref().map_or(0, |h| shard_of(h, n_shards));
        let shard = &self.shared.shards[shard_idx];
        if let (Some(cache), Some(hash)) = (&shard.cache, hash) {
            if let Some(verdict) = cache.lookup(&hash) {
                let line = render_verdict(
                    self.proto,
                    &id,
                    address.as_ref(),
                    verdict.proba,
                    &self.shared.model_version,
                    &self.shared.names,
                    &verdict.per_model,
                );
                self.shared.router.complete(
                    self.id,
                    seq,
                    line,
                    Settle::Scored {
                        bytes: code.len() as u64,
                        cached: true,
                    },
                );
                self.shared.metrics.record_latency(t0.elapsed());
                return SubmitOutcome::CacheHit;
            }
        }

        // Brownout ladder: the tier is computed on every admission (keeps
        // the gauge and degraded-time clock honest) but only applied to
        // lossy shed-mode submissions — Block is the lossless bulk path.
        // Each shard degrades on its own queue fill.
        let tier = self.shared.tier_for(shard_idx);
        let degraded = match admission {
            Admission::Block => false,
            Admission::Shed => match tier {
                DegradationTier::Full => false,
                DegradationTier::CacheFirst => true,
                DegradationTier::CacheOnly => {
                    // The cache already missed (or is off): refuse typed
                    // rather than deepen the queue the tier exists to save.
                    self.shared.metrics.inc_overloads();
                    let mut out = String::new();
                    match self.proto {
                        Protocol::V1 => proto::render_overload_v1(&mut out),
                        Protocol::V2 => proto::render_overload_v2(&mut out, &id),
                    }
                    self.shared
                        .router
                        .complete(self.id, seq, out, Settle::Overload);
                    return SubmitOutcome::Overloaded;
                }
            },
        };

        let job = Job {
            conn: self.id,
            seq,
            id,
            address,
            code,
            hash,
            proto: self.proto,
            t0,
            degraded,
        };
        // Counted before the push so a worker can never score a job whose
        // `submitted` increment is still pending (see `Metrics::snapshot`).
        self.shared.metrics.inc_submitted();
        let refused = match admission {
            Admission::Block => shard.queue.push(job).err(),
            Admission::Shed => shard.queue.try_push(job).err().map(|e| match e {
                crate::queue::PushError::Full(job) | crate::queue::PushError::Closed(job) => job,
            }),
        };
        match refused {
            None => SubmitOutcome::Queued,
            Some(job) => {
                self.shared.metrics.dec_submitted();
                self.shared.metrics.inc_overloads();
                let mut out = String::new();
                match self.proto {
                    Protocol::V1 => proto::render_overload_v1(&mut out),
                    Protocol::V2 => proto::render_overload_v2(&mut out, &job.id),
                }
                self.shared
                    .router
                    .complete(self.id, job.seq, out, Settle::Overload);
                SubmitOutcome::Overloaded
            }
        }
    }

    /// Answers one request slot with the typed oversized-line error —
    /// called by the transport layer when a line blew past
    /// [`proto::MAX_LINE_BYTES`] *during reading* (the tail was discarded,
    /// so the protocol layer never sees the line at all).
    pub fn reject_oversized(&mut self, line_bytes: usize) -> SubmitOutcome {
        let Some(seq) = self.allocate_seq() else {
            return SubmitOutcome::Disconnected;
        };
        let msg = format!(
            "request line of {line_bytes} bytes exceeds the {} byte limit",
            proto::MAX_LINE_BYTES
        );
        self.shared.metrics.inc_errors();
        let mut out = String::new();
        match self.proto {
            Protocol::V1 => proto::render_error_v1(&mut out, &msg),
            Protocol::V2 => proto::render_error_v2(&mut out, &seq.to_string(), &msg),
        }
        self.shared
            .router
            .complete(self.id, seq, out, Settle::Error);
        SubmitOutcome::Error
    }

    /// Marks the request stream as ended. Once every outstanding response
    /// has been routed, the writer's channel closes. Idempotent; also runs
    /// on drop.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut conns = self.shared.router.conns.lock().expect("router lock");
        if let Some(state) = conns.get_mut(&self.id) {
            state.eof = true;
            if state.next_seq == state.submitted_seqs {
                state.tx = None;
            }
        }
    }

    /// Claims a flow-control slot (blocking while the window is full) and
    /// allocates the next sequence number; `None` when the response stream
    /// is gone.
    fn allocate_seq(&mut self) -> Option<u64> {
        if !self.window.claim(self.shared.max_outstanding) {
            return None;
        }
        let seq = self.seq;
        self.seq += 1;
        let mut conns = self.shared.router.conns.lock().expect("router lock");
        if let Some(state) = conns.get_mut(&self.id) {
            state.submitted_seqs = self.seq;
        }
        Some(seq)
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.finish();
    }
}

fn render_verdict(
    proto: Protocol,
    id: &str,
    address: Option<&Address>,
    proba: f64,
    model_version: &str,
    names: &[String],
    per_model: &[f64],
) -> String {
    let mut out = String::with_capacity(64);
    match proto {
        Protocol::V1 => proto::render_verdict_v1(&mut out, proba),
        Protocol::V2 => proto::render_verdict_v2(
            &mut out,
            id,
            address,
            proba,
            model_version,
            names,
            per_model,
        ),
    }
    out
}

/// Answers one dequeued job with the framing's typed timeout response.
fn answer_timeout(shared: &Shared, job: &Job) {
    shared.metrics.inc_timeouts();
    let mut out = String::new();
    match job.proto {
        Protocol::V1 => proto::render_timeout_v1(&mut out),
        Protocol::V2 => proto::render_timeout_v2(&mut out, &job.id),
    }
    shared
        .router
        .complete(job.conn, job.seq, out, Settle::Timeout);
}

/// One worker, bound to one shard: drain that shard's queue into batches
/// (flush on size or linger deadline), score through the shared model,
/// insert into the shard's cache slice, route responses. Returns `true` on
/// the clean exit (queue closed **and** drained) and `false` after a
/// caught scoring panic — the supervisor in [`Scheduler::with_chain`]
/// respawns a fresh sibling on the same shard in that case, after every
/// job of the poisoned batch was answered with a typed internal error.
/// Requests that out-waited their deadline (or a bounded drain's budget)
/// answer typed timeouts at dequeue without being scored.
fn worker_loop(
    shared: &Shared,
    shard_idx: usize,
    mut scanner: Scanner,
    batch: usize,
    linger: Duration,
) -> bool {
    let shard = &shared.shards[shard_idx];
    loop {
        let Some(first) = shard.queue.pop() else {
            return true; // shutdown sentinel: closed and drained
        };
        let mut jobs = vec![first];
        if batch > 1 {
            let deadline = Instant::now() + linger;
            while jobs.len() < batch {
                match shard.queue.pop_until(deadline) {
                    crate::queue::Popped::Item(job) => jobs.push(job),
                    crate::queue::Popped::TimedOut | crate::queue::Popped::Closed => break,
                }
            }
        }

        // Deadline enforcement happens here, at dequeue: scoring a request
        // whose client budget already lapsed wastes the batch slot that
        // could serve a live one.
        let drain_expired = shared.drain_expired();
        if drain_expired || shared.deadline.is_some() {
            jobs.retain(|job| {
                let expired =
                    drain_expired || shared.deadline.is_some_and(|d| job.t0.elapsed() > d);
                if expired {
                    answer_timeout(shared, job);
                }
                !expired
            });
        }
        if jobs.is_empty() {
            continue;
        }

        // Degraded (CacheFirst-tier) rows score on the primary member
        // only; full rows keep the whole ensemble. Both passes run inside
        // one catch_unwind so a panic anywhere answers the whole batch.
        let full_rows: Vec<usize> = (0..jobs.len()).filter(|&i| !jobs[i].degraded).collect();
        let degraded_rows: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].degraded).collect();
        let scored = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &shared.fault {
                if plan.should_panic_batch(shard_idx) {
                    panic!("{}", crate::fault::INJECTED_PANIC);
                }
            }
            let full_codes: Vec<&[u8]> =
                full_rows.iter().map(|&i| jobs[i].code.as_slice()).collect();
            let degraded_codes: Vec<&[u8]> = degraded_rows
                .iter()
                .map(|&i| jobs[i].code.as_slice())
                .collect();
            let full = if full_codes.is_empty() {
                (Vec::new(), Vec::new())
            } else {
                scanner.score_with_members(&full_codes)
            };
            let degraded = if degraded_codes.is_empty() {
                (Vec::new(), String::new())
            } else {
                scanner.score_primary(&degraded_codes)
            };
            (full, degraded)
        }));
        let ((combined, per_model), (primary, primary_name)) = match scored {
            Ok(result) => result,
            Err(_) => {
                // The batch is poisoned; every rider gets a typed internal
                // error so no router slot is left waiting, and the
                // supervisor replaces this worker with a fresh sibling.
                shared.metrics.inc_worker_panics();
                for job in &jobs {
                    let mut out = String::new();
                    match job.proto {
                        Protocol::V1 => proto::render_internal_v1(&mut out),
                        Protocol::V2 => proto::render_internal_v2(&mut out, &job.id),
                    }
                    shared
                        .router
                        .complete(job.conn, job.seq, out, Settle::Internal);
                }
                return false;
            }
        };
        shared.metrics.inc_batches();
        shared.metrics.inc_scored(jobs.len() as u64);

        let mut member_probas = vec![0.0f64; per_model.len()];
        for (row, &i) in full_rows.iter().enumerate() {
            let job = &jobs[i];
            for (m, (_, probs)) in per_model.iter().enumerate() {
                member_probas[m] = probs[row];
            }
            if let (Some(cache), Some(hash)) = (&shard.cache, job.hash) {
                cache.insert(
                    hash,
                    CachedVerdict {
                        proba: combined[row],
                        per_model: member_probas.clone(),
                    },
                );
            }
            let line = render_verdict(
                job.proto,
                &job.id,
                job.address.as_ref(),
                combined[row],
                &shared.model_version,
                &shared.names,
                &member_probas,
            );
            shared.router.complete(
                job.conn,
                job.seq,
                line,
                Settle::Scored {
                    bytes: job.code.len() as u64,
                    cached: false,
                },
            );
            shared.metrics.record_latency(job.t0.elapsed());
        }
        // Degraded verdicts report the one member they ran and never enter
        // the cache: a later hit must replay full-ensemble bits.
        let degraded_names = [primary_name];
        for (row, &i) in degraded_rows.iter().enumerate() {
            let job = &jobs[i];
            let line = render_verdict(
                job.proto,
                &job.id,
                job.address.as_ref(),
                primary[row],
                &shared.model_version,
                &degraded_names,
                &primary[row..=row],
            );
            shared.router.complete(
                job.conn,
                job.seq,
                line,
                Settle::Scored {
                    bytes: job.code.len() as u64,
                    cached: false,
                },
            );
            shared.metrics.record_latency(job.t0.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{probe_lines, scanner};
    use phishinghook_evm::keccak::to_hex;

    fn opts() -> SchedulerOptions {
        SchedulerOptions::default()
    }

    fn no_cache() -> SchedulerOptions {
        SchedulerOptions {
            cache_bytes: 0,
            ..opts()
        }
    }

    /// Submits every line on one connection and returns the in-order
    /// response lines.
    fn roundtrip(scheduler: &Scheduler, proto: Protocol, lines: &str) -> Vec<String> {
        let (mut conn, rx) = scheduler.connect(proto);
        for line in lines.lines() {
            conn.submit(line, Admission::Block);
        }
        conn.finish();
        let out: Vec<String> = rx.iter().collect();
        scheduler.take_report(conn.id());
        out
    }

    #[test]
    fn per_connection_ordering_under_concurrent_clients() {
        // Three concurrent connections share one scheduler (and its cache);
        // the batches mix their rows, yet each connection's responses come
        // back in its own request order with its own ids.
        let (input, codes) = probe_lines(17);
        let scheduler = Scheduler::new(scanner(), &opts());
        let expected = scanner()
            .worker()
            .score_batch(&codes.iter().map(Vec::as_slice).collect::<Vec<_>>());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let scheduler = &scheduler;
                    let input = &input;
                    scope.spawn(move || roundtrip(scheduler, Protocol::V2, input))
                })
                .collect();
            for handle in handles {
                let lines = handle.join().expect("client");
                assert_eq!(lines.len(), codes.len());
                for (i, (line, p)) in lines.iter().zip(&expected).enumerate() {
                    // Bare-hex ids default to the per-connection sequence
                    // number — in-order delivery makes them 0..n.
                    assert!(
                        line.starts_with(&format!("{{\"proto\":2,\"id\":\"{i}\",")),
                        "{line}"
                    );
                    assert!(line.contains(&format!("\"proba\":{p:.6}")), "{line}");
                }
            }
        });
        let stats = scheduler.shutdown();
        // 3 × 17 requests were answered: every one either hit the shared
        // cache or was scored cold — nothing lost, nothing double-counted.
        // (How many hit depends on thread interleaving; the dedup
        // guarantee itself is asserted deterministically elsewhere.)
        let cache = stats.cache.expect("cache enabled");
        assert_eq!(cache.hits + stats.scheduler.scored, 51);
    }

    #[test]
    fn cache_on_and_off_agree_bit_identically() {
        let (input, codes) = probe_lines(12);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();

        let cold = Scheduler::new(scanner(), &no_cache());
        let cold_lines = roundtrip(&cold, Protocol::V2, &input);

        let cached = Scheduler::new(scanner(), &opts());
        let first_pass = roundtrip(&cached, Protocol::V2, &input);
        let second_pass = roundtrip(&cached, Protocol::V2, &input);

        // Rendered responses agree across cache-off, cache-miss and
        // cache-hit paths (ids are positional, so lines match exactly).
        assert_eq!(cold_lines, first_pass);
        assert_eq!(cold_lines, second_pass);
        let stats = cached.stats();
        assert_eq!(stats.cache.expect("enabled").hits, codes.len() as u64);

        // And below the rendering: the cached f64s are the scanner's own
        // bits, not a reformatted approximation.
        let expected = scanner().worker().score_batch(&refs);
        let cache = VerdictCache::new(1 << 20);
        for (code, p) in refs.iter().zip(&expected) {
            cache.insert(
                Digest::of(code),
                CachedVerdict {
                    proba: *p,
                    per_model: vec![*p],
                },
            );
        }
        for (code, p) in refs.iter().zip(&expected) {
            let hit = cache.lookup(&Digest::of(code)).expect("hit");
            assert_eq!(hit.proba.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn shed_admission_answers_overload_typed_and_drops_nothing() {
        // A tiny queue and deliberately slow draining (1-row batches) make
        // the fast producer outrun the worker; shed admission must answer
        // the surplus with typed overload responses while every admitted
        // request still gets scored.
        let (input, _) = probe_lines(4);
        let slow = SchedulerOptions {
            batch: 1,
            queue_depth: 1,
            cache_bytes: 0, // identical lines must not short-circuit
            ..opts()
        };
        let scheduler = Scheduler::new(scanner(), &slow);
        let (mut conn, rx) = scheduler.connect(Protocol::V2);
        let line = input.lines().next().expect("one probe");
        let mut outcomes = Vec::new();
        const SUBMITS: usize = 4000;
        for _ in 0..SUBMITS {
            outcomes.push(conn.submit(line, Admission::Shed));
            if outcomes
                .iter()
                .filter(|o| **o == SubmitOutcome::Overloaded)
                .count()
                >= 3
            {
                break;
            }
        }
        conn.finish();
        let lines: Vec<String> = rx.iter().collect();
        assert_eq!(lines.len(), outcomes.len(), "one response per request");
        let overloads = outcomes
            .iter()
            .filter(|o| **o == SubmitOutcome::Overloaded)
            .count();
        assert!(overloads >= 1, "queue never filled in {SUBMITS} submits");
        let mut typed = 0;
        for (line, outcome) in lines.iter().zip(&outcomes) {
            match outcome {
                SubmitOutcome::Overloaded => {
                    assert!(line.contains("\"code\":\"overloaded\""), "{line}");
                    typed += 1;
                }
                SubmitOutcome::Queued => {
                    assert!(line.contains("\"verdict\":"), "{line}");
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(typed, overloads);
        let report = scheduler.take_report(conn.id());
        assert_eq!(report.overloads, overloads as u64);
        assert_eq!(report.contracts + report.overloads, outcomes.len() as u64);
        let stats = scheduler.shutdown();
        assert_eq!(stats.scheduler.overloads, overloads as u64);
        assert_eq!(
            stats.scheduler.scored,
            (outcomes.len() - overloads) as u64,
            "every admitted request must be scored"
        );
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        // Queue a burst, end the stream, and shut down immediately: the
        // sentinel must let workers drain everything already admitted.
        let (input, codes) = probe_lines(30);
        let burst = SchedulerOptions {
            batch: 4,
            queue_depth: 64,
            cache_bytes: 0,
            linger_micros: 5000,
            ..opts()
        };
        let scheduler = Scheduler::new(scanner(), &burst);
        let (mut conn, rx) = scheduler.connect(Protocol::V1);
        for line in input.lines() {
            assert_eq!(conn.submit(line, Admission::Block), SubmitOutcome::Queued);
        }
        conn.finish();
        drop(conn);
        // Shut down while the burst may still be queued: the sentinel must
        // drain and score everything admitted before the workers exit.
        let stats = scheduler.shutdown();
        assert_eq!(stats.scheduler.scored, codes.len() as u64);
        assert_eq!(stats.scheduler.queue_depth, 0);
        let lines: Vec<String> = rx.iter().collect();
        assert_eq!(lines.len(), codes.len(), "no dropped in-flight requests");
    }

    #[test]
    fn stats_command_reports_counters_in_both_framings() {
        let (input, _) = probe_lines(2);
        let scheduler = Scheduler::new(scanner(), &opts());
        // Warm the cache in a completed first session so the second
        // session's hit counts are deterministic.
        roundtrip(&scheduler, Protocol::V2, &input);
        let v2 = roundtrip(&scheduler, Protocol::V2, &format!("{input}stats\n"));
        let stats_line = v2.last().expect("stats response");
        assert!(
            stats_line.starts_with("{\"proto\":2,\"stats\":{\"scheduler\":{"),
            "{stats_line}"
        );
        assert!(stats_line.contains("\"cache\":{\"hits\":2"), "{stats_line}");
        let v1 = roundtrip(&scheduler, Protocol::V1, "stats\n");
        assert!(v1[0].starts_with("stats\thits="), "{}", v1[0]);
    }

    #[test]
    fn flow_control_window_bounds_outstanding_responses() {
        // A tiny window: the submitter must block until the receiver
        // drains, yet every request still gets exactly one response —
        // bounded memory for a slow writer, no losses.
        let (input, codes) = probe_lines(20);
        let windowed = SchedulerOptions {
            max_outstanding: 3,
            cache_bytes: 0,
            ..opts()
        };
        let scheduler = Scheduler::new(scanner(), &windowed);
        let (mut conn, rx) = scheduler.connect(Protocol::V1);
        let lines = std::thread::scope(|scope| {
            let submitter = scope.spawn(move || {
                for line in input.lines() {
                    assert_ne!(
                        conn.submit(line, Admission::Block),
                        SubmitOutcome::Disconnected
                    );
                }
                conn.finish();
            });
            // Drain slowly from this thread; the submitter can never be
            // more than 3 responses ahead.
            let mut lines = Vec::new();
            while let Some(line) = rx.recv() {
                lines.push(line);
            }
            submitter.join().expect("submitter");
            lines
        });
        assert_eq!(lines.len(), codes.len());
    }

    #[test]
    fn dropped_response_stream_disconnects_the_submit_side() {
        let (input, _) = probe_lines(2);
        let scheduler = Scheduler::new(scanner(), &opts());
        let (mut conn, rx) = scheduler.connect(Protocol::V2);
        drop(rx); // the writer died
        let line = input.lines().next().expect("probe");
        assert_eq!(
            conn.submit(line, Admission::Block),
            SubmitOutcome::Disconnected
        );
        assert_eq!(conn.reject_oversized(1 << 30), SubmitOutcome::Disconnected);
        // Nothing was routed or counted for the dead connection.
        conn.finish();
        let report = scheduler.take_report(conn.id());
        assert_eq!(report, ConnReport::default());
    }

    #[test]
    fn v1_framing_is_preserved_end_to_end() {
        let (input, codes) = probe_lines(5);
        let scheduler = Scheduler::new(scanner(), &opts());
        let lines = roundtrip(&scheduler, Protocol::V1, &input);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let probs = scanner().worker().score_batch(&refs);
        for (line, p) in lines.iter().zip(&probs) {
            let verdict = if *p >= 0.5 { "phishing" } else { "benign" };
            assert_eq!(*line, format!("{verdict}\t{p:.6}"));
        }
        // Cache-hit replay renders the identical v1 line.
        assert_eq!(roundtrip(&scheduler, Protocol::V1, &input), lines);
        // A v2-style JSON object on a v1 session is simply invalid hex —
        // interleaved framings degrade to per-line errors, never a panic.
        let mixed = format!("{{\"bytecode\":\"0x{}\"}}\n", to_hex(&codes[0]));
        let out = roundtrip(&scheduler, Protocol::V1, &mixed);
        assert_eq!(out[0], "error\tnot valid hex bytecode");
    }

    #[test]
    fn address_requests_resolve_through_the_chain() {
        use phishinghook_data::SharedChain;

        let (_, codes) = probe_lines(2);
        let chain = SharedChain::new();
        let address: Address = [0x42; 20];
        chain.deploy(address, codes[0].clone());

        let scheduler = Scheduler::with_chain(scanner(), &opts(), Some(chain));
        let addr_hex = format!("0x{}", to_hex(&address));
        let input = format!(
            "{{\"id\":\"by-addr\",\"address\":\"{addr_hex}\"}}\n\
             {{\"id\":\"by-code\",\"bytecode\":\"0x{}\"}}\n\
             {{\"id\":\"eoa\",\"address\":\"0x{}\"}}\n",
            to_hex(&codes[0]),
            to_hex(&[0u8; 20]),
        );
        let lines = roundtrip(&scheduler, Protocol::V2, &input);
        assert_eq!(lines.len(), 3);
        // Address and bytecode forms agree bit-identically on the proba
        // (the address line also echoes the resolved address).
        assert!(
            lines[0].starts_with(&format!(
                "{{\"proto\":2,\"id\":\"by-addr\",\"address\":\"{addr_hex}\","
            )),
            "{}",
            lines[0]
        );
        let tail = |line: &str| line.split("\"verdict\"").nth(1).map(str::to_owned);
        assert_eq!(tail(&lines[0]), tail(&lines[1]));
        assert!(
            lines[2].contains("\"error\"") && lines[2].contains("no contract code at address"),
            "{}",
            lines[2]
        );

        // Without a chain, address requests answer a typed error.
        let bare = Scheduler::new(scanner(), &opts());
        let (mut conn, rx) = bare.connect(Protocol::V2);
        let outcome = conn.submit(
            &format!("{{\"id\":\"x\",\"address\":\"{addr_hex}\"}}"),
            Admission::Block,
        );
        assert_eq!(outcome, SubmitOutcome::Unresolved);
        conn.finish();
        let out: Vec<String> = rx.iter().collect();
        assert!(out[0].contains("no chain source attached"), "{}", out[0]);
    }

    #[test]
    fn submit_target_bypasses_wire_framing() {
        let (_, codes) = probe_lines(1);
        let scheduler = Scheduler::new(scanner(), &opts());
        let (mut conn, rx) = scheduler.connect(Protocol::V2);
        let outcome = conn.submit_target(
            "direct",
            Target::Bytecode(codes[0].clone()),
            Admission::Shed,
        );
        assert_eq!(outcome, SubmitOutcome::Queued);
        conn.finish();
        let out: Vec<String> = rx.iter().collect();
        assert!(
            out[0].starts_with("{\"proto\":2,\"id\":\"direct\","),
            "{}",
            out[0]
        );
    }

    #[test]
    fn metrics_snapshot_exposes_latency_and_queue_capacity() {
        let (input, codes) = probe_lines(3);
        let scheduler = Scheduler::new(scanner(), &opts());
        roundtrip(&scheduler, Protocol::V2, &input); // cold scores
        roundtrip(&scheduler, Protocol::V2, &input); // cache hits
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.scheduler.scored, codes.len() as u64);
        assert_eq!(snap.queue_capacity, opts().queue_depth as u64);
        // Both the cold and the cache-hit paths record a latency sample.
        assert_eq!(snap.latency.count(), 2 * codes.len() as u64);
        assert!(snap.latency.quantile(0.5) > 0.0);
        assert_eq!(snap.cache.expect("cache on").hits, codes.len() as u64);
    }

    #[test]
    fn worker_panics_answer_typed_internal_and_the_supervisor_respawns() {
        // One worker, one-row batches, and a fault plan that panics every
        // second batch: requests alternate verdict / internal, the panic
        // counter matches, and the scheduler keeps serving after every
        // crash — the supervisor respawned the worker.
        let opts = SchedulerOptions {
            batch: 1,
            workers: 1,
            cache_bytes: 0,
            fault: Some(FaultConfig {
                worker_panic_every: 2,
                ..FaultConfig::default()
            }),
            ..opts()
        };
        let (input, _) = probe_lines(4);
        let scheduler = Scheduler::new(scanner(), &opts);
        let lines = roundtrip(&scheduler, Protocol::V2, &input);
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            if i % 2 == 0 {
                assert!(line.contains("\"verdict\""), "{line}");
            } else {
                assert!(line.contains("\"code\":\"internal\""), "{line}");
                assert!(line.contains("scoring worker failed"), "{line}");
            }
        }
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.robustness.worker_panics, 2);
        assert_eq!(scheduler.fault_plan().expect("plan").panics_injected(), 2);
        let stats = scheduler.shutdown();
        assert_eq!(stats.scheduler.scored, 2);
    }

    #[test]
    fn deadline_expired_jobs_answer_typed_timeouts_at_dequeue() {
        // The worker pops the lone job, then lingers 300ms waiting for a
        // second row that never comes; by flush time the 10ms deadline has
        // long passed, so the job is answered as a typed timeout without
        // being scored.
        let opts = SchedulerOptions {
            batch: 2,
            workers: 1,
            linger_micros: 300_000,
            deadline_ms: 10,
            cache_bytes: 0,
            ..opts()
        };
        let (input, _) = probe_lines(1);
        let scheduler = Scheduler::new(scanner(), &opts);
        let lines = roundtrip(&scheduler, Protocol::V2, &input);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"code\":\"timeout\""), "{}", lines[0]);
        assert!(lines[0].contains("deadline exceeded"), "{}", lines[0]);
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.robustness.timeouts, 1);
        let stats = scheduler.shutdown();
        assert_eq!(stats.scheduler.scored, 0);
    }

    #[test]
    fn drain_budget_answers_queued_jobs_as_timeouts() {
        // Same linger trick, but expiry comes from the drain deadline:
        // once `begin_drain` has been called and the 1ms budget elapses,
        // still-queued work is answered as typed timeouts instead of
        // holding shutdown hostage.
        let opts = SchedulerOptions {
            batch: 2,
            workers: 1,
            linger_micros: 300_000,
            drain_ms: 1,
            cache_bytes: 0,
            ..opts()
        };
        let (input, _) = probe_lines(1);
        let scheduler = Scheduler::new(scanner(), &opts);
        assert_eq!(scheduler.lifecycle(), Lifecycle::Running);
        let (mut conn, rx) = scheduler.connect(Protocol::V2);
        for line in input.lines() {
            conn.submit(line, Admission::Block);
        }
        scheduler.begin_drain();
        assert_eq!(scheduler.lifecycle(), Lifecycle::Draining);
        conn.finish();
        let lines: Vec<String> = rx.iter().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"code\":\"timeout\""), "{}", lines[0]);
        let stats = scheduler.shutdown();
        assert_eq!(stats.scheduler.scored, 0);
    }

    #[test]
    fn brownout_cache_only_sheds_misses_but_serves_hits() {
        // `cache_only_pct: 0` pins the brownout ladder to its deepest
        // tier. Shedding traffic is answered from cache when possible and
        // refused typed otherwise; lossless (Block) traffic still scores.
        let opts = SchedulerOptions {
            cache_first_pct: 0,
            cache_only_pct: 0,
            ..opts()
        };
        let (input, _) = probe_lines(2);
        let lines: Vec<&str> = input.lines().collect();
        let scheduler = Scheduler::new(scanner(), &opts);
        assert_eq!(scheduler.degradation_tier(), DegradationTier::CacheOnly);

        // Warm the cache losslessly — Block admission never degrades —
        // and wait for the verdict so the insert has landed.
        let warm = roundtrip(&scheduler, Protocol::V2, lines[0]);
        assert!(warm[0].contains("\"verdict\""), "{}", warm[0]);

        let (mut conn, rx) = scheduler.connect(Protocol::V2);
        // A shed cache hit is still served under cache-only brownout...
        assert_eq!(
            conn.submit(lines[0], Admission::Shed),
            SubmitOutcome::CacheHit
        );
        // ...but a shed miss is refused typed instead of queued.
        assert_eq!(
            conn.submit(lines[1], Admission::Shed),
            SubmitOutcome::Overloaded
        );
        conn.finish();
        let out: Vec<String> = rx.iter().collect();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("\"verdict\""), "{}", out[0]);
        assert!(out[1].contains("\"code\":\"overloaded\""), "{}", out[1]);
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.scheduler.overloads, 1);
        assert_eq!(snap.robustness.tier, DegradationTier::CacheOnly as u8);
        scheduler.shutdown();
    }

    #[test]
    fn brownout_cache_first_scores_with_the_primary_member_and_skips_cache() {
        use crate::testutil::ensemble_scanner;
        // `cache_first_pct: 0` (with cache-only disabled at > 100%) pins
        // the middle tier: shed traffic is scored by the ensemble's first
        // member only, bit-identically to `score_primary`, and the result
        // is NOT cached — degraded verdicts must never poison replay.
        let opts = SchedulerOptions {
            cache_first_pct: 0,
            cache_only_pct: 101,
            ..opts()
        };
        let (input, codes) = probe_lines(1);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut primary = ensemble_scanner().worker();
        let (primary_probs, primary_name) = primary.score_primary(&refs);

        let scheduler = Scheduler::new(ensemble_scanner(), &opts);
        assert_eq!(scheduler.degradation_tier(), DegradationTier::CacheFirst);
        let (mut conn, rx) = scheduler.connect(Protocol::V2);
        let line = input.lines().next().expect("one probe");
        assert_eq!(conn.submit(line, Admission::Shed), SubmitOutcome::Queued);
        // The same line again, lossless: scored cold by the full ensemble,
        // proving the degraded pass did not populate the cache.
        assert_eq!(conn.submit(line, Admission::Block), SubmitOutcome::Queued);
        conn.finish();
        let out: Vec<String> = rx.iter().collect();
        assert_eq!(out.len(), 2);
        let degraded = &out[0];
        let full = &out[1];
        assert!(
            degraded.contains(&format!("\"proba\":{:.6}", primary_probs[0])),
            "{degraded}"
        );
        assert!(
            degraded.contains(&format!("\"{primary_name}\"")),
            "{degraded}"
        );
        // One per-model entry on the degraded row, two on the full row.
        assert_eq!(degraded.matches("\"name\":").count(), 1, "{degraded}");
        assert_eq!(full.matches("\"name\":").count(), 2, "{full}");
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.scheduler.scored, 2);
        assert_eq!(snap.cache.expect("cache on").hits, 0);
        scheduler.shutdown();
    }

    #[test]
    fn injected_chain_faults_exhaust_retries_into_a_typed_error() {
        use phishinghook_data::SharedChain;
        // Every chain lookup faults (1000‰); the retry policy burns its 3
        // attempts (2 retries, counted) and the request answers with the
        // transient-fault detail instead of wedging or panicking.
        let opts = SchedulerOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                base_micros: 10,
                cap_micros: 50,
                seed: 1,
            },
            fault: Some(FaultConfig {
                chain_fail_permille: 1000,
                ..FaultConfig::default()
            }),
            ..opts()
        };
        let chain = SharedChain::new();
        let address = [0x42u8; 20];
        let (_, codes) = probe_lines(1);
        chain.deploy(address, codes[0].clone());
        let scheduler = Scheduler::with_chain(scanner(), &opts, Some(chain));
        let (mut conn, rx) = scheduler.connect(Protocol::V2);
        let hex: String = address.iter().map(|b| format!("{b:02x}")).collect();
        let outcome = conn.submit(
            &format!("{{\"id\":\"x\",\"address\":\"0x{hex}\"}}"),
            Admission::Block,
        );
        assert_eq!(outcome, SubmitOutcome::Unresolved);
        conn.finish();
        let out: Vec<String> = rx.iter().collect();
        assert!(out[0].contains("transient chain fault"), "{}", out[0]);
        assert!(out[0].contains("injected chain fault"), "{}", out[0]);
        let snap = scheduler.metrics_snapshot();
        assert_eq!(snap.robustness.chain_retries, 2);
        assert_eq!(
            scheduler
                .fault_plan()
                .expect("plan")
                .chain_faults_injected(),
            3
        );
        scheduler.shutdown();
    }
}
