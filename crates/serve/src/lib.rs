#![warn(missing_docs)]

//! The PhishingHook production serving core.
//!
//! Everything between a fitted [`Scanner`](phishinghook_models::Scanner)
//! and the sockets: this crate turns the ROADMAP's "serve heavy traffic"
//! goal into one shared, admission-controlled pipeline instead of a
//! thread-per-connection free-for-all.
//!
//! | Module | Role |
//! |---|---|
//! | [`queue`] | Bounded blocking MPMC queue — the admission-control primitive |
//! | [`cache`] | Keccak-keyed LRU verdict cache with a byte budget |
//! | [`metrics`] | Lock-free counters + latency histograms, consistent snapshots, Prometheus text |
//! | [`scheduler`] | Cross-connection micro-batching scheduler + ordered response routing |
//! | [`proto`] | Wire framings v1/v2, hardened against adversarial input |
//! | [`http`] | std-only HTTP/1.1 parsing and response writing |
//! | [`router`] | The HTTP gateway: `/predict`, `/healthz`, `/metrics` over the scheduler |
//! | [`config`] | The typed [`ServeConfig`] builder — one config for every front-end |
//! | [`serve`] | stdin/TCP/HTTP session loops, overload shedding, graceful drain |
//! | [`fault`] | Deterministic fault injection: worker panics, chain faults, slow clients |
//! | [`watch`] | The chain-watch firehose scenario, end to end |
//!
//! The serving invariants, all covered by tests in this crate:
//!
//! 1. **Per-connection ordering** — responses arrive in request order on
//!    every connection, no matter how batches, cache hits and errors
//!    interleave across connections.
//! 2. **Bit-identical caching** — a cache hit replays the exact `f64`s the
//!    cold path produced (`f64::to_bits` equality).
//! 3. **Typed overload** — a full queue or connection limit answers with a
//!    machine-readable overload response; nothing is silently dropped or
//!    silently buffered without bound.
//! 4. **Graceful shutdown** — closing the scheduler drains every admitted
//!    request before the workers exit.
//! 5. **Exactly-one-response under faults** — with a seeded
//!    [`FaultPlan`] injecting worker panics, chain
//!    faults and slow clients, every submitted request still gets exactly
//!    one typed response and the scheduler never wedges.

pub mod cache;
pub mod config;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod router;
pub mod scheduler;
pub mod serve;
pub mod watch;

pub use cache::{entry_bytes, CacheStats, CachedVerdict, VerdictCache};
pub use config::{ConfigError, ServeConfig, ServeConfigBuilder};
pub use fault::{FaultConfig, FaultPlan};
pub use metrics::{HttpSnapshot, LatencySnapshot, Metrics, MetricsSnapshot};
pub use proto::{Protocol, MAX_LINE_BYTES, STATS_COMMAND};
pub use queue::BoundedQueue;
pub use router::serve_http;
pub use scheduler::{
    Admission, ConnReport, Connection, DegradationTier, Lifecycle, ResponseKind, Scheduler,
    SchedulerOptions, SchedulerStats, StatsSnapshot, SubmitOutcome,
};
pub use serve::{run, serve_lines, ServeReport, TcpLimits};
#[allow(deprecated)]
pub use serve::{serve_tcp, ServeOptions};
pub use watch::{run_watch, WatchOptions, WatchReport};

/// Shared fixtures for this crate's tests: training is the slow part, so
/// every test module reuses one fitted scanner per model shape.
#[cfg(test)]
pub(crate) mod testutil {
    use phishinghook_data::{Corpus, CorpusConfig};
    use phishinghook_evm::keccak::to_hex;
    use phishinghook_models::{Detector, DetectorRegistry, Scanner};
    use std::sync::OnceLock;

    /// One fitted single-model (Random Forest) scanner shared by all tests.
    pub fn scanner() -> &'static Scanner {
        static SCANNER: OnceLock<Scanner> = OnceLock::new();
        SCANNER.get_or_init(|| {
            let corpus = Corpus::generate(&CorpusConfig {
                n_contracts: 80,
                seed: 5,
                ..Default::default()
            });
            let (codes, labels) = corpus.as_dataset();
            let mut det = DetectorRegistry::global()
                .build_str("rf:seed=7", 7)
                .expect("valid spec");
            det.fit(&codes, &labels);
            Scanner::new(det).expect("fitted")
        })
    }

    /// A 2-member ensemble scanner for per-model wire assertions.
    pub fn ensemble_scanner() -> &'static Scanner {
        static SCANNER: OnceLock<Scanner> = OnceLock::new();
        SCANNER.get_or_init(|| {
            let corpus = Corpus::generate(&CorpusConfig {
                n_contracts: 80,
                seed: 5,
                ..Default::default()
            });
            let (codes, labels) = corpus.as_dataset();
            let mut det = DetectorRegistry::global()
                .build_str("ensemble:rf+lgbm:vote=soft", 7)
                .expect("valid spec");
            det.fit(&codes, &labels);
            Scanner::new(det).expect("fitted")
        })
    }

    /// `n` held-out probe bytecodes plus their hex request lines.
    pub fn probe_lines(n: usize) -> (String, Vec<Vec<u8>>) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: n,
            seed: 99,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.into_iter().map(|r| r.bytecode).collect();
        let text: String = codes.iter().map(|c| format!("0x{}\n", to_hex(c))).collect();
        (text, codes)
    }
}
