#![warn(missing_docs)]

//! The PhishingHook production serving core.
//!
//! Everything between a fitted [`Scanner`](phishinghook_models::Scanner)
//! and the sockets: this crate turns the ROADMAP's "serve heavy traffic"
//! goal into one shared, admission-controlled pipeline instead of a
//! thread-per-connection free-for-all.
//!
//! | Module | Role |
//! |---|---|
//! | [`queue`] | Bounded blocking MPMC queue — the admission-control primitive |
//! | [`cache`] | Keccak-keyed LRU verdict cache with a byte budget |
//! | [`metrics`] | Lock-free counters + latency histograms, consistent snapshots, Prometheus text |
//! | [`scheduler`] | Sharded micro-batching scheduler + ordered response routing |
//! | [`affinity`] | Best-effort core pinning for shard workers (Linux; no-op elsewhere) |
//! | [`proto`] | Wire framings v1/v2, hardened against adversarial input |
//! | [`http`] | std-only HTTP/1.1 parsing and response writing |
//! | [`router`] | The HTTP gateway: `/predict`, `/healthz`, `/metrics` over the scheduler |
//! | [`config`] | The typed [`ServeConfig`] builder — one config for every front-end |
//! | [`serve`] | stdin/TCP/HTTP session loops, overload shedding, graceful drain |
//! | [`nbio`] | Nonblocking-readiness JSONL transport: one thread for all connections |
//! | [`fault`] | Deterministic fault injection: worker panics, chain faults, slow clients |
//! | [`watch`] | The chain-watch firehose scenario, end to end |
//! | [`fixture`] | Shared train-once test fixtures (scanners, probe corpora) |
//!
//! The serving invariants, all covered by tests in this crate:
//!
//! 1. **Per-connection ordering** — responses arrive in request order on
//!    every connection, no matter how batches, cache hits and errors
//!    interleave across connections.
//! 2. **Bit-identical caching** — a cache hit replays the exact `f64`s the
//!    cold path produced (`f64::to_bits` equality).
//! 3. **Typed overload** — a full queue or connection limit answers with a
//!    machine-readable overload response; nothing is silently dropped or
//!    silently buffered without bound.
//! 4. **Graceful shutdown** — closing the scheduler drains every admitted
//!    request before the workers exit.
//! 5. **Exactly-one-response under faults** — with a seeded
//!    [`FaultPlan`] injecting worker panics, chain
//!    faults and slow clients, every submitted request still gets exactly
//!    one typed response and the scheduler never wedges.
//! 6. **Layout-independent verdicts** — sharding the scheduler
//!    ([`SchedulerOptions::shards`]) never changes a verdict:
//!    sharded outputs are `f64::to_bits`-identical to the 1-shard path
//!    for any shard count.

pub mod affinity;
pub mod cache;
pub mod config;
pub mod fault;
pub mod fixture;
pub mod http;
pub mod metrics;
pub mod nbio;
pub mod proto;
pub mod queue;
pub mod router;
pub mod scheduler;
pub mod serve;
pub mod watch;

pub use cache::{entry_bytes, CacheStats, CachedVerdict, VerdictCache};
pub use config::{ConfigError, ServeConfig, ServeConfigBuilder};
pub use fault::{FaultConfig, FaultPlan};
pub use metrics::{HttpSnapshot, LatencySnapshot, Metrics, MetricsSnapshot};
pub use proto::{Protocol, MAX_LINE_BYTES, STATS_COMMAND};
pub use queue::BoundedQueue;
pub use router::serve_http;
pub use scheduler::{
    shard_of, Admission, ConnReport, Connection, DegradationTier, Lifecycle, PolledResponse,
    ResponseKind, Responses, Scheduler, SchedulerOptions, SchedulerStats, ShardStats,
    StatsSnapshot, SubmitOutcome,
};
pub use serve::{run, serve_lines, ServeReport, TcpLimits};
#[allow(deprecated)]
pub use serve::{serve_tcp, ServeOptions};
pub use watch::{run_watch, WatchOptions, WatchReport};

/// Thin aliases over [`fixture`] for this crate's unit tests (the
/// fixtures themselves are public so integration suites and the umbrella
/// crate share the same train-once scanners).
#[cfg(test)]
pub(crate) mod testutil {
    use phishinghook_models::Scanner;

    /// The unit tests' probe-corpus seed (integration suites use others so
    /// per-process cache state never aliases across suites).
    const PROBE_SEED: u64 = 99;

    /// One fitted single-model (Random Forest) scanner shared by all tests.
    pub fn scanner() -> &'static Scanner {
        crate::fixture::rf_scanner()
    }

    /// A 2-member ensemble scanner for per-model wire assertions.
    pub fn ensemble_scanner() -> &'static Scanner {
        crate::fixture::ensemble_scanner()
    }

    /// `n` held-out probe bytecodes plus their hex request lines.
    pub fn probe_lines(n: usize) -> (String, Vec<Vec<u8>>) {
        crate::fixture::probe_lines(n, PROBE_SEED)
    }
}
