//! Lock-free serving metrics: counters and latency histograms shared by
//! the JSONL and HTTP front-ends, with one consistent snapshot path.
//!
//! Every counter lives in one [`Metrics`] struct owned by the scheduler,
//! incremented with atomics on the hot path (no locks, no contention with
//! scoring), and read through [`Metrics::snapshot`] — the **only** way
//! counters leave this module. Snapshotting through one struct fixes a
//! real bug in the earlier per-field reads: loading `submitted` and then
//! `scored` as independent relaxed loads could observe `scored >
//! submitted` (a worker finished a job between the two loads), so totals
//! disagreed across fields under load. [`Metrics::snapshot`] loads
//! *downstream counters first* under `SeqCst`: every `scored` increment is
//! preceded by its job's `submitted` increment, so reading `scored` before
//! `submitted` guarantees `scored ≤ submitted` in every snapshot.
//!
//! Request latency is recorded at the scheduler — submit to
//! response-routed, the span both protocols share — into a fixed
//! log-bucketed [`LatencyHistogram`]: 28 power-of-two buckets from 1 µs up
//! (~134 s) plus an overflow bucket, each an `AtomicU64`. Recording is a
//! bounded loop and two relaxed adds; quantiles come out of the snapshot
//! by cumulative bucket walk and are exported as `p50`/`p90`/`p99` gauges
//! next to the full Prometheus histogram.

use crate::cache::CacheStats;
use crate::scheduler::{SchedulerStats, ShardStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of finite latency buckets: powers of two from 1 µs to ~134 s.
pub const LATENCY_BUCKETS: usize = 28;

/// A fixed log-bucketed latency histogram with lock-free recording.
///
/// Bucket `i` counts observations with `elapsed ≤ 2^i µs`; one extra
/// overflow bucket catches anything slower than the last finite bound.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; LATENCY_BUCKETS + 1],
    sum_nanos: AtomicU64,
}

impl LatencyHistogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Upper bound of finite bucket `i`, in nanoseconds (`2^i` µs).
    pub fn bound_nanos(bucket: usize) -> u64 {
        1000u64 << bucket
    }

    /// Upper bound of finite bucket `i`, in seconds.
    pub fn bound_secs(bucket: usize) -> f64 {
        Self::bound_nanos(bucket) as f64 / 1e9
    }

    /// Records one observation (relaxed atomics; safe from any thread).
    pub fn record(&self, elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut bucket = 0;
        while bucket < LATENCY_BUCKETS && nanos > Self::bound_nanos(bucket) {
            bucket += 1;
        }
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and the observed sum.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut counts = [0u64; LATENCY_BUCKETS + 1];
        for (slot, count) in counts.iter_mut().zip(&self.counts) {
            *slot = count.load(Ordering::Relaxed);
        }
        LatencySnapshot {
            counts,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket observation counts; the last slot is the overflow bucket.
    pub counts: [u64; LATENCY_BUCKETS + 1],
    /// Sum of all observed latencies, in nanoseconds.
    pub sum_nanos: u64,
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        LatencySnapshot {
            counts: [0; LATENCY_BUCKETS + 1],
            sum_nanos: 0,
        }
    }
}

impl LatencySnapshot {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `q`-quantile latency estimate in seconds (`0 < q ≤ 1`): the
    /// upper bound of the bucket holding the rank-`⌈q·n⌉` observation, `0`
    /// when nothing was recorded. Overflow observations report the last
    /// finite bound — the histogram's resolution ceiling, not a fiction of
    /// precision.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (bucket, count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return LatencyHistogram::bound_secs(bucket.min(LATENCY_BUCKETS - 1));
            }
        }
        LatencyHistogram::bound_secs(LATENCY_BUCKETS - 1)
    }
}

/// HTTP gateway counters (zero when no HTTP listener is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpSnapshot {
    /// Requests parsed off HTTP connections.
    pub requests: u64,
    /// Responses answered with a 2xx status.
    pub responses_2xx: u64,
    /// Responses answered with a 4xx status.
    pub responses_4xx: u64,
    /// Responses answered with a 5xx status.
    pub responses_5xx: u64,
}

/// Fault-tolerance counters: what the robustness layer did to keep the
/// daemon answering (PR 7).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RobustnessStats {
    /// Scoring-worker panics caught and answered with typed internal
    /// errors (each one also respawned a fresh worker).
    pub worker_panics: u64,
    /// Chain-lookup retries taken under the backoff policy (attempts
    /// beyond the first, counted per retry).
    pub chain_retries: u64,
    /// Requests that out-waited their deadline and answered a typed
    /// timeout at dequeue.
    pub timeouts: u64,
    /// Cumulative wall-clock seconds spent at a degraded brownout tier
    /// (CacheFirst or deeper).
    pub degraded_seconds: f64,
    /// The current brownout tier (0 = full, 1 = cache-first,
    /// 2 = cache-only), as last observed by the scheduler.
    pub tier: u8,
}

/// Everything `/metrics` (and the JSONL `stats` command) reports, captured
/// by one [`Metrics::snapshot`] call — the single consistent read path for
/// every serving counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Scheduler counters (submitted/scored/errors/overloads/batches/
    /// connections + current queue depth).
    pub scheduler: SchedulerStats,
    /// Configured submit-queue capacity.
    pub queue_capacity: u64,
    /// Cache counters (`None` when the cache is disabled).
    pub cache: Option<CacheStats>,
    /// HTTP gateway counters.
    pub http: HttpSnapshot,
    /// Request-latency histogram (submit → response routed).
    pub latency: LatencySnapshot,
    /// Fault-tolerance counters (panics, retries, timeouts, brownout).
    pub robustness: RobustnessStats,
}

/// The scheduler's counter block: lock-free increments on the hot path,
/// one consistent snapshot on the way out (see the module docs).
#[derive(Debug, Default)]
pub struct Metrics {
    submitted: AtomicU64,
    scored: AtomicU64,
    errors: AtomicU64,
    overloads: AtomicU64,
    batches: AtomicU64,
    connections: AtomicU64,
    http_requests: AtomicU64,
    http_2xx: AtomicU64,
    http_4xx: AtomicU64,
    http_5xx: AtomicU64,
    latency: LatencyHistogram,
    worker_panics: AtomicU64,
    chain_retries: AtomicU64,
    timeouts: AtomicU64,
    /// Current brownout tier (0/1/2), a gauge.
    tier: AtomicU64,
    /// Completed degraded intervals, accumulated in nanoseconds.
    degraded_nanos: AtomicU64,
    /// Start of the still-open degraded interval, when one is open. A
    /// mutex (not an atomic) because `Instant` is opaque; tier flips are
    /// rare and never on the per-request hot path's common branch.
    degraded_since: Mutex<Option<Instant>>,
}

impl Metrics {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one request admitted to the batch queue.
    ///
    /// `SeqCst` so the snapshot's downstream-first read order (see module
    /// docs) gives cross-field consistency.
    pub fn inc_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::SeqCst);
    }

    /// Un-counts one submission whose queue push was refused. Submissions
    /// are counted *before* the push (so a worker can never score a job
    /// whose `submitted` increment is still pending — the snapshot
    /// invariant `scored ≤ submitted` depends on it); a refusal means the
    /// job never entered the queue and must be uncounted.
    pub fn dec_submitted(&self) {
        self.submitted.fetch_sub(1, Ordering::SeqCst);
    }

    /// Counts `n` requests scored by a worker.
    pub fn inc_scored(&self, n: u64) {
        self.scored.fetch_add(n, Ordering::SeqCst);
    }

    /// Counts one malformed request answered with an error response.
    pub fn inc_errors(&self) {
        self.errors.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one request shed with an overload response.
    pub fn inc_overloads(&self) {
        self.overloads.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one scored batch.
    pub fn inc_batches(&self) {
        self.batches.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one accepted connection.
    pub fn inc_connections(&self) {
        self.connections.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one parsed HTTP request.
    pub fn http_request(&self) {
        self.http_requests.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one HTTP response by status class.
    pub fn http_response(&self, status: u16) {
        match status {
            200..=299 => self.http_2xx.fetch_add(1, Ordering::SeqCst),
            400..=499 => self.http_4xx.fetch_add(1, Ordering::SeqCst),
            _ => self.http_5xx.fetch_add(1, Ordering::SeqCst),
        };
    }

    /// Records one request latency (submit → response routed).
    pub fn record_latency(&self, elapsed: Duration) {
        self.latency.record(elapsed);
    }

    /// Counts one caught scoring-worker panic.
    pub fn inc_worker_panics(&self) {
        self.worker_panics.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one chain-lookup retry (an attempt beyond the first).
    pub fn inc_chain_retries(&self) {
        self.chain_retries.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one request answered with a typed timeout at dequeue.
    pub fn inc_timeouts(&self) {
        self.timeouts.fetch_add(1, Ordering::SeqCst);
    }

    /// Records the current brownout tier (0 = full, 1 = cache-first,
    /// 2 = cache-only) and keeps the degraded-time clock: entering a
    /// degraded tier opens an interval, returning to full closes it into
    /// the cumulative `serve_degraded_seconds_total` counter.
    pub fn set_tier(&self, tier: u8) {
        let prev = self.tier.swap(u64::from(tier), Ordering::SeqCst) as u8;
        if prev == tier {
            return;
        }
        let was_degraded = prev > 0;
        let is_degraded = tier > 0;
        if was_degraded == is_degraded {
            return; // moved between degraded tiers: the clock keeps running
        }
        let mut since = self.degraded_since.lock().expect("degraded clock");
        if is_degraded {
            *since = Some(Instant::now());
        } else if let Some(t0) = since.take() {
            let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.degraded_nanos.fetch_add(nanos, Ordering::SeqCst);
        }
    }

    /// Total degraded time so far: closed intervals plus the open one.
    fn degraded_seconds(&self) -> f64 {
        let mut nanos = self.degraded_nanos.load(Ordering::SeqCst);
        if let Some(t0) = *self.degraded_since.lock().expect("degraded clock") {
            nanos = nanos.saturating_add(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        nanos as f64 / 1e9
    }

    /// One consistent snapshot of every counter.
    ///
    /// Loads run downstream-first under `SeqCst`: `scored` is read before
    /// `submitted`, and every scored job's `submitted` increment precedes
    /// its `scored` increment, so `scored ≤ submitted` holds in every
    /// snapshot — the cross-field consistency the old per-field relaxed
    /// reads lacked. Cache counters are internally consistent already
    /// (copied under the cache's own mutex).
    pub fn snapshot(
        &self,
        queue_depth: u64,
        queue_capacity: u64,
        cache: Option<CacheStats>,
    ) -> MetricsSnapshot {
        let latency = self.latency.snapshot();
        let robustness = RobustnessStats {
            worker_panics: self.worker_panics.load(Ordering::SeqCst),
            chain_retries: self.chain_retries.load(Ordering::SeqCst),
            timeouts: self.timeouts.load(Ordering::SeqCst),
            degraded_seconds: self.degraded_seconds(),
            tier: self.tier.load(Ordering::SeqCst) as u8,
        };
        let http = HttpSnapshot {
            responses_2xx: self.http_2xx.load(Ordering::SeqCst),
            responses_4xx: self.http_4xx.load(Ordering::SeqCst),
            responses_5xx: self.http_5xx.load(Ordering::SeqCst),
            requests: self.http_requests.load(Ordering::SeqCst),
        };
        // Downstream before upstream: scored before submitted, so a
        // concurrent worker can only make `submitted` read *larger*.
        let scored = self.scored.load(Ordering::SeqCst);
        let batches = self.batches.load(Ordering::SeqCst);
        let errors = self.errors.load(Ordering::SeqCst);
        let overloads = self.overloads.load(Ordering::SeqCst);
        let submitted = self.submitted.load(Ordering::SeqCst);
        let connections = self.connections.load(Ordering::SeqCst);
        MetricsSnapshot {
            scheduler: SchedulerStats {
                submitted,
                scored,
                errors,
                overloads,
                batches,
                connections,
                queue_depth,
            },
            queue_capacity,
            cache,
            http,
            latency,
            robustness,
        }
    }
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    metric(out, name, help, "counter", value as f64);
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    metric(out, name, help, "gauge", value);
}

fn metric(out: &mut String, name: &str, help: &str, kind: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition format
/// (version 0.0.4): cache hit/miss/eviction counters, queue depth,
/// overload count, the full request-latency histogram, and `p50`/`p90`/
/// `p99` gauges derived from it.
pub fn render_prometheus(
    snap: &MetricsSnapshot,
    model_name: &str,
    model_version: &str,
    engine: crate::proto::EngineInfo,
) -> String {
    let mut out = String::with_capacity(4096);
    let s = &snap.scheduler;
    counter(
        &mut out,
        "phishinghook_requests_submitted_total",
        "Requests admitted to the batch queue (cache hits excluded).",
        s.submitted,
    );
    counter(
        &mut out,
        "phishinghook_requests_scored_total",
        "Requests scored by the worker pool.",
        s.scored,
    );
    counter(
        &mut out,
        "phishinghook_request_errors_total",
        "Malformed requests answered with an error response.",
        s.errors,
    );
    counter(
        &mut out,
        "phishinghook_overloads_total",
        "Requests shed with an overload response (queue full or connection limit).",
        s.overloads,
    );
    counter(
        &mut out,
        "phishinghook_batches_total",
        "Micro-batches scored.",
        s.batches,
    );
    counter(
        &mut out,
        "phishinghook_connections_total",
        "Connections accepted over the scheduler's lifetime.",
        s.connections,
    );
    gauge(
        &mut out,
        "phishinghook_queue_depth",
        "Jobs in the submit queue right now.",
        s.queue_depth as f64,
    );
    gauge(
        &mut out,
        "phishinghook_queue_capacity",
        "Configured submit-queue capacity.",
        snap.queue_capacity as f64,
    );
    if let Some(cache) = &snap.cache {
        counter(
            &mut out,
            "phishinghook_cache_hits_total",
            "Verdict-cache lookups answered from the cache.",
            cache.hits,
        );
        counter(
            &mut out,
            "phishinghook_cache_misses_total",
            "Verdict-cache lookups that went to the scheduler.",
            cache.misses,
        );
        counter(
            &mut out,
            "phishinghook_cache_evictions_total",
            "Cache entries evicted to respect the byte budget.",
            cache.evictions,
        );
        counter(
            &mut out,
            "phishinghook_cache_insertions_total",
            "Cache entries inserted over the cache's lifetime.",
            cache.insertions,
        );
        gauge(
            &mut out,
            "phishinghook_cache_entries",
            "Cache entries currently resident.",
            cache.entries as f64,
        );
        gauge(
            &mut out,
            "phishinghook_cache_bytes",
            "Accounted cache bytes currently resident.",
            cache.bytes as f64,
        );
        gauge(
            &mut out,
            "phishinghook_cache_capacity_bytes",
            "Configured cache byte budget.",
            cache.capacity_bytes as f64,
        );
    }
    counter(
        &mut out,
        "phishinghook_worker_panics_total",
        "Scoring-worker panics caught, answered with typed internal errors, and respawned.",
        snap.robustness.worker_panics,
    );
    counter(
        &mut out,
        "phishinghook_chain_retries_total",
        "Chain-lookup retries taken under the backoff policy.",
        snap.robustness.chain_retries,
    );
    counter(
        &mut out,
        "phishinghook_request_timeouts_total",
        "Requests that out-waited their deadline and answered a typed timeout.",
        snap.robustness.timeouts,
    );
    metric(
        &mut out,
        "phishinghook_serve_degraded_seconds_total",
        "Cumulative seconds spent at a degraded brownout tier.",
        "counter",
        snap.robustness.degraded_seconds,
    );
    gauge(
        &mut out,
        "phishinghook_degradation_tier",
        "Current brownout tier: 0 full, 1 cache-first, 2 cache-only.",
        f64::from(snap.robustness.tier),
    );
    counter(
        &mut out,
        "phishinghook_http_requests_total",
        "HTTP requests parsed by the gateway.",
        snap.http.requests,
    );
    let name = "phishinghook_http_responses_total";
    out.push_str(&format!(
        "# HELP {name} HTTP responses by status class.\n# TYPE {name} counter\n"
    ));
    for (class, value) in [
        ("2xx", snap.http.responses_2xx),
        ("4xx", snap.http.responses_4xx),
        ("5xx", snap.http.responses_5xx),
    ] {
        out.push_str(&format!("{name}{{class=\"{class}\"}} {value}\n"));
    }

    let name = "phishinghook_request_latency_seconds";
    out.push_str(&format!(
        "# HELP {name} Request latency from submit to response routed.\n\
         # TYPE {name} histogram\n"
    ));
    let mut cumulative = 0u64;
    for bucket in 0..LATENCY_BUCKETS {
        cumulative += snap.latency.counts[bucket];
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            LatencyHistogram::bound_secs(bucket)
        ));
    }
    cumulative += snap.latency.counts[LATENCY_BUCKETS];
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    out.push_str(&format!(
        "{name}_sum {}\n{name}_count {cumulative}\n",
        snap.latency.sum_nanos as f64 / 1e9
    ));
    for (q, suffix) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
        gauge(
            &mut out,
            &format!("phishinghook_request_latency_{suffix}_seconds"),
            &format!("The {suffix} request latency (log-bucket upper bound)."),
            snap.latency.quantile(q),
        );
    }
    out.push_str(&format!(
        "# HELP phishinghook_build_info The served model, as labels.\n\
         # TYPE phishinghook_build_info gauge\n\
         phishinghook_build_info{{model=\"{}\",version=\"{}\",quantize=\"{}\",quant_bins=\"{}\"}} 1\n",
        escape_label(model_name),
        escape_label(model_version),
        if engine.quantize { "on" } else { "off" },
        engine.quant_bins.unwrap_or(0),
    ));
    out
}

/// Emits one `# HELP`/`# TYPE` header and a `{shard="i"}`-labelled sample
/// per shard, reading each sample through `value`.
fn shard_metric(
    out: &mut String,
    name: &str,
    help: &str,
    kind: &str,
    shards: &[ShardStats],
    value: impl Fn(&ShardStats) -> Option<f64>,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    for stat in shards {
        if let Some(v) = value(stat) {
            out.push_str(&format!("{name}{{shard=\"{}\"}} {v}\n", stat.shard));
        }
    }
}

/// Renders the per-shard metric families (PR 8) in the Prometheus text
/// exposition format: one `{shard="i"}`-labelled sample per lane for queue
/// depth/capacity and the lane's slice of the verdict cache. Appended to
/// [`render_prometheus`]'s aggregate output by the `/metrics` handler —
/// the aggregate names stay unchanged so existing dashboards keep working,
/// and the shard families make per-lane imbalance (a hot shard's queue
/// filling while its neighbours idle) visible without new plumbing.
pub fn render_prometheus_shards(shards: &[ShardStats]) -> String {
    if shards.is_empty() {
        return String::new();
    }
    let mut out = String::with_capacity(1024);
    shard_metric(
        &mut out,
        "phishinghook_shard_queue_depth",
        "Jobs in this shard's submit queue right now.",
        "gauge",
        shards,
        |s| Some(s.queue_depth as f64),
    );
    shard_metric(
        &mut out,
        "phishinghook_shard_queue_capacity",
        "Configured submit-queue capacity of this shard.",
        "gauge",
        shards,
        |s| Some(s.queue_capacity as f64),
    );
    if shards.iter().any(|s| s.cache.is_some()) {
        shard_metric(
            &mut out,
            "phishinghook_shard_cache_hits_total",
            "Verdict-cache lookups answered from this shard's cache slice.",
            "counter",
            shards,
            |s| s.cache.map(|c| c.hits as f64),
        );
        shard_metric(
            &mut out,
            "phishinghook_shard_cache_misses_total",
            "Verdict-cache lookups on this shard that went to its workers.",
            "counter",
            shards,
            |s| s.cache.map(|c| c.misses as f64),
        );
        shard_metric(
            &mut out,
            "phishinghook_shard_cache_evictions_total",
            "Entries evicted from this shard's cache slice.",
            "counter",
            shards,
            |s| s.cache.map(|c| c.evictions as f64),
        );
        shard_metric(
            &mut out,
            "phishinghook_shard_cache_entries",
            "Entries currently resident in this shard's cache slice.",
            "gauge",
            shards,
            |s| s.cache.map(|c| c.entries as f64),
        );
        shard_metric(
            &mut out,
            "phishinghook_shard_cache_bytes",
            "Accounted bytes currently resident in this shard's cache slice.",
            "gauge",
            shards,
            |s| s.cache.map(|c| c.bytes as f64),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn histogram_buckets_by_powers_of_two_micros() {
        let hist = LatencyHistogram::new();
        hist.record(Duration::from_nanos(500)); // ≤ 1 µs → bucket 0
        hist.record(Duration::from_micros(1)); // boundary → bucket 0
        hist.record(Duration::from_micros(3)); // ≤ 4 µs → bucket 2
        hist.record(Duration::from_secs(500)); // past the last bound → overflow
        let snap = hist.snapshot();
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[2], 1);
        assert_eq!(snap.counts[LATENCY_BUCKETS], 1);
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.sum_nanos, 500 + 1_000 + 3_000 + 500 * 1_000_000_000u64);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let hist = LatencyHistogram::new();
        for _ in 0..90 {
            hist.record(Duration::from_micros(2)); // bucket 1, bound 2 µs
        }
        for _ in 0..10 {
            hist.record(Duration::from_millis(1)); // bucket 10, bound ~1.05 ms
        }
        let snap = hist.snapshot();
        assert_eq!(snap.quantile(0.5), LatencyHistogram::bound_secs(1));
        assert_eq!(snap.quantile(0.9), LatencyHistogram::bound_secs(1));
        assert_eq!(snap.quantile(0.99), LatencyHistogram::bound_secs(10));
        assert_eq!(snap.quantile(1.0), LatencyHistogram::bound_secs(10));
        assert_eq!(LatencySnapshot::default().quantile(0.5), 0.0);
        // Overflow-only data reports the resolution ceiling, not infinity.
        let slow = LatencyHistogram::new();
        slow.record(Duration::from_secs(1000));
        assert_eq!(
            slow.snapshot().quantile(0.5),
            LatencyHistogram::bound_secs(LATENCY_BUCKETS - 1)
        );
    }

    #[test]
    fn snapshot_never_observes_scored_ahead_of_submitted() {
        // The bugfix regression test: under a producer racing
        // submitted→scored increments, every snapshot must satisfy
        // scored ≤ submitted (the old independent relaxed reads, loading
        // submitted first, could see the opposite).
        let metrics = Arc::new(Metrics::new());
        let producer = {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                for _ in 0..200_000 {
                    metrics.inc_submitted();
                    metrics.inc_scored(1);
                }
            })
        };
        let mut snapshots = 0u64;
        while !producer.is_finished() {
            let snap = metrics.snapshot(0, 0, None);
            assert!(
                snap.scheduler.scored <= snap.scheduler.submitted,
                "inconsistent snapshot: scored {} > submitted {}",
                snap.scheduler.scored,
                snap.scheduler.submitted
            );
            snapshots += 1;
        }
        producer.join().expect("producer");
        assert!(snapshots > 0);
        let final_snap = metrics.snapshot(3, 64, None);
        assert_eq!(final_snap.scheduler.submitted, 200_000);
        assert_eq!(final_snap.scheduler.scored, 200_000);
        assert_eq!(final_snap.scheduler.queue_depth, 3);
        assert_eq!(final_snap.queue_capacity, 64);
    }

    #[test]
    fn http_counters_classify_by_status() {
        let metrics = Metrics::new();
        metrics.http_request();
        metrics.http_request();
        metrics.http_response(200);
        metrics.http_response(404);
        metrics.http_response(503);
        let snap = metrics.snapshot(0, 0, None);
        assert_eq!(snap.http.requests, 2);
        assert_eq!(snap.http.responses_2xx, 1);
        assert_eq!(snap.http.responses_4xx, 1);
        assert_eq!(snap.http.responses_5xx, 1);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let metrics = Metrics::new();
        metrics.inc_submitted();
        metrics.inc_scored(1);
        metrics.inc_batches();
        metrics.record_latency(Duration::from_micros(700));
        metrics.http_request();
        metrics.http_response(200);
        let cache = CacheStats {
            hits: 7,
            misses: 3,
            evictions: 1,
            insertions: 4,
            entries: 3,
            bytes: 408,
            capacity_bytes: 8 << 20,
        };
        let snap = metrics.snapshot(0, 1024, Some(cache));
        let engine = crate::proto::EngineInfo {
            quantize: true,
            quant_bins: Some(256),
        };
        let text = render_prometheus(&snap, "Random Forest", "hsc-detector/v1", engine);

        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name_part.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
        for expected in [
            "phishinghook_cache_hits_total 7",
            "phishinghook_cache_misses_total 3",
            "phishinghook_cache_evictions_total 1",
            "phishinghook_queue_depth 0",
            "phishinghook_overloads_total 0",
            "phishinghook_worker_panics_total 0",
            "phishinghook_chain_retries_total 0",
            "phishinghook_request_timeouts_total 0",
            "phishinghook_serve_degraded_seconds_total 0",
            "phishinghook_degradation_tier 0",
            "phishinghook_http_responses_total{class=\"2xx\"} 1",
            "phishinghook_request_latency_seconds_count 1",
            "phishinghook_request_latency_p50_seconds 0.001024",
            "phishinghook_request_latency_p99_seconds 0.001024",
            "phishinghook_build_info{model=\"Random Forest\",version=\"hsc-detector/v1\",quantize=\"on\",quant_bins=\"256\"} 1",
        ] {
            assert!(text.contains(expected), "missing `{expected}` in:\n{text}");
        }
        // Histogram buckets are cumulative and end at +Inf.
        let inf_line = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf bucket");
        assert!(inf_line.ends_with(" 1"), "{inf_line}");
        // Each TYPE is declared exactly once per metric name.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        let mut seen = std::collections::HashSet::new();
        for line in &type_lines {
            assert!(seen.insert(*line), "duplicate {line}");
        }
    }

    #[test]
    fn shard_families_are_labelled_per_lane() {
        let shards = vec![
            ShardStats {
                shard: 0,
                queue_depth: 3,
                queue_capacity: 512,
                cache: Some(CacheStats {
                    hits: 5,
                    misses: 2,
                    evictions: 1,
                    insertions: 3,
                    entries: 2,
                    bytes: 272,
                    capacity_bytes: 4 << 20,
                }),
            },
            ShardStats {
                shard: 1,
                queue_depth: 0,
                queue_capacity: 512,
                cache: Some(CacheStats::default()),
            },
        ];
        let text = render_prometheus_shards(&shards);
        for expected in [
            "phishinghook_shard_queue_depth{shard=\"0\"} 3",
            "phishinghook_shard_queue_depth{shard=\"1\"} 0",
            "phishinghook_shard_queue_capacity{shard=\"0\"} 512",
            "phishinghook_shard_cache_hits_total{shard=\"0\"} 5",
            "phishinghook_shard_cache_hits_total{shard=\"1\"} 0",
            "phishinghook_shard_cache_bytes{shard=\"0\"} 272",
        ] {
            assert!(text.contains(expected), "missing `{expected}` in:\n{text}");
        }
        // Each TYPE header appears once, above its labelled samples.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        let mut seen = std::collections::HashSet::new();
        for line in &type_lines {
            assert!(seen.insert(*line), "duplicate {line}");
        }
        // Cache-off shards emit no cache families at all.
        let off = render_prometheus_shards(&[ShardStats {
            shard: 0,
            queue_depth: 0,
            queue_capacity: 8,
            cache: None,
        }]);
        assert!(off.contains("phishinghook_shard_queue_depth{shard=\"0\"} 0"));
        assert!(!off.contains("cache"));
        assert!(render_prometheus_shards(&[]).is_empty());
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn robustness_counters_and_degraded_clock_accumulate() {
        let metrics = Metrics::new();
        metrics.inc_worker_panics();
        metrics.inc_chain_retries();
        metrics.inc_chain_retries();
        metrics.inc_timeouts();
        let snap = metrics.snapshot(0, 0, None);
        assert_eq!(snap.robustness.worker_panics, 1);
        assert_eq!(snap.robustness.chain_retries, 2);
        assert_eq!(snap.robustness.timeouts, 1);
        assert_eq!(snap.robustness.tier, 0);
        assert_eq!(snap.robustness.degraded_seconds, 0.0);

        // Entering a degraded tier opens the clock; the open interval is
        // visible in snapshots before the tier returns to full.
        metrics.set_tier(1);
        std::thread::sleep(Duration::from_millis(5));
        let open = metrics.snapshot(0, 0, None);
        assert_eq!(open.robustness.tier, 1);
        assert!(open.robustness.degraded_seconds > 0.0);
        // Moving deeper keeps the same interval running.
        metrics.set_tier(2);
        metrics.set_tier(0);
        let closed = metrics.snapshot(0, 0, None);
        assert_eq!(closed.robustness.tier, 0);
        assert!(closed.robustness.degraded_seconds >= open.robustness.degraded_seconds);
        // Back at full the clock stands still.
        let later = metrics.snapshot(0, 0, None);
        assert_eq!(
            later.robustness.degraded_seconds,
            closed.robustness.degraded_seconds
        );
    }
}
