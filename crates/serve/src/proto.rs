//! The serve daemon's wire protocols (moved here from `phishinghook-cli`
//! when serving grew its own crate).
//!
//! # Protocol v2 (default): versioned JSONL
//!
//! One JSON object per line in each direction, hand-rolled (this workspace
//! is dependency-free by policy — see the README's dependency section).
//!
//! **Requests** are either a JSON object or, for convenience, a bare hex
//! line (the id then defaults to the 0-based request sequence number).
//! The object form carries *either* raw `bytecode` *or* a 20-byte
//! `address` the daemon resolves through its attached chain source
//! (`eth_getCode`) — the shared [`Target`](phishinghook_models::Target)
//! shape every request surface speaks:
//!
//! ```text
//! {"id":"tx-9","bytecode":"0x6080604052"}
//! {"id":"tx-10","address":"0xd8dA6BF26964aF9D7eEd9e03E53415D37aA96045"}
//! {"proto":"2","id":"tx-11","bytecode":"0x6080"}
//! 6080604052
//! stats
//! ```
//!
//! The optional `proto` request field lets clients pin the version they
//! speak; any value other than `2` is answered with a typed
//! `unsupported proto version` error. The literal line `stats` (see
//! [`STATS_COMMAND`]) is a command, not a bytecode: it returns the daemon's
//! scheduler/cache counters. Responses to address-form requests
//! additionally echo the resolved `"address"` — an additive field;
//! bytecode-request framing is byte-for-byte unchanged.
//!
//! **Responses** echo the id and carry the combined verdict plus one
//! `per_model` entry per underlying model — the field that makes ensembles
//! observable over the wire:
//!
//! ```text
//! {"proto":2,"id":"tx-9","verdict":"phishing","proba":0.934211,"model_version":"hsc-ensemble/v1","per_model":[{"name":"Random Forest","proba":0.941023},{"name":"LightGBM","proba":0.927399}]}
//! {"proto":2,"id":"4","error":"not valid hex bytecode"}
//! {"proto":2,"id":"7","error":"server overloaded: the scheduler queue is full","code":"overloaded"}
//! ```
//!
//! `proto` is always the first field, so clients can dispatch on the
//! protocol version before touching anything else. Probabilities are
//! printed with six decimal places (same precision as protocol v1). The
//! overload response additionally carries `"code":"overloaded"` so clients
//! can distinguish *retry later* from *your request is malformed*.
//!
//! # Protocol v1 (`--proto v1`): bare lines
//!
//! The original ad-hoc framing, kept verbatim for old clients: hex in,
//! `verdict\tproba` out, `error\t…` for malformed lines. Two typed
//! additions ride along without disturbing old parsers: overload is
//! signalled by an `ERR\toverloaded: …` line and the `stats` command
//! answers with a single `stats\tkey=value\t…` line.
//!
//! # Hardening invariants
//!
//! Decoding adversarial input never panics and never disconnects:
//!
//! * request lines longer than [`MAX_LINE_BYTES`] are refused with a typed
//!   error before any parsing;
//! * malformed JSON, nested values, unknown fields and unknown `proto`
//!   versions all produce descriptive per-line error responses;
//! * blank lines are ignored (no response, no sequence number);
//! * interleaved framings degrade gracefully — a JSON object sent to a v1
//!   session is merely invalid hex, a bare hex line sent to a v2 session is
//!   the documented convenience form.

use crate::cache::CacheStats;
use crate::scheduler::StatsSnapshot;
use phishinghook_models::Verdict;
use std::fmt::Write as _;

/// Hard ceiling on one request line, pre-parse (1 MiB). Real deployed
/// bytecode tops out below 24 KiB hex (EIP-170: 24,576 bytes of code), so
/// the ceiling is generous for legitimate traffic while bounding what one
/// line can make the daemon buffer or hash.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The line-protocol command (both framings) answering with scheduler and
/// cache counters instead of a verdict.
pub const STATS_COMMAND: &str = "stats";

/// Which framing a serving loop speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Bare `verdict\tproba` lines (legacy).
    V1,
    /// Versioned JSONL with ids and per-model probabilities.
    #[default]
    V2,
}

impl Protocol {
    /// Parses a `--proto` flag value (`"v1"` / `"1"` / `"v2"` / `"2"`).
    pub fn parse(s: &str) -> Option<Protocol> {
        match s.trim().to_ascii_lowercase().as_str() {
            "v1" | "1" => Some(Protocol::V1),
            "v2" | "2" => Some(Protocol::V2),
            _ => None,
        }
    }
}

/// Pre-parse admission check: refuses lines longer than [`MAX_LINE_BYTES`].
///
/// # Errors
/// The typed error message to send back on the matching response line.
pub fn check_line_len(line: &str) -> Result<(), String> {
    if line.len() > MAX_LINE_BYTES {
        return Err(format!(
            "request line of {} bytes exceeds the {} byte limit",
            line.len(),
            MAX_LINE_BYTES
        ));
    }
    Ok(())
}

/// The still-hex payload of one decoded request line: what the client sent
/// before any validation or resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePayload {
    /// Hex bytecode text (possibly `0x`-prefixed), not yet decoded.
    Bytecode(String),
    /// Hex account address text (possibly `0x`-prefixed), not yet decoded;
    /// resolves to bytecode through the daemon's chain source.
    Address(String),
}

/// One decoded request line: the caller-visible id plus the raw payload
/// still to be validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Echoed in the response (v2); v1 responses are purely positional.
    pub id: String,
    /// What the request asks to score.
    pub payload: WirePayload,
}

/// Decodes one v2 request line: a JSON object with `bytecode` *or*
/// `address` (exactly one required), `id` (optional, defaulting to
/// `fallback_id`) and `proto` (optional, must be version 2) — or a bare
/// hex line (bytecode).
///
/// # Errors
/// A human-readable message describing the malformed line (sent back to the
/// client as an error object; the daemon never disconnects on bad input).
pub fn parse_request_v2(line: &str, fallback_id: &str) -> Result<WireRequest, String> {
    check_line_len(line)?;
    let trimmed = line.trim();
    if !trimmed.starts_with('{') {
        // Bare hex convenience form.
        return Ok(WireRequest {
            id: fallback_id.to_owned(),
            payload: WirePayload::Bytecode(trimmed.to_owned()),
        });
    }
    let fields = parse_flat_object(trimmed)?;
    let mut id = None;
    let mut hex = None;
    let mut address = None;
    for (key, value) in fields {
        match key.as_str() {
            // Numeric ids (JSON-RPC style) are accepted and echoed as text.
            "id" => id = Some(value.text),
            "bytecode" => {
                if !value.quoted {
                    return Err("field `bytecode` must be a JSON string".to_owned());
                }
                hex = Some(value.text);
            }
            "address" => {
                if !value.quoted {
                    return Err("field `address` must be a JSON string".to_owned());
                }
                address = Some(value.text);
            }
            "proto" => {
                if !matches!(value.text.as_str(), "2" | "v2") {
                    return Err(format!(
                        "unsupported proto version `{}` (this endpoint speaks v2)",
                        value.text
                    ));
                }
            }
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    let payload = match (hex, address) {
        (Some(_), Some(_)) => {
            return Err(
                "request carries both `bytecode` and `address`; send exactly one".to_owned(),
            )
        }
        (Some(hex), None) => WirePayload::Bytecode(hex),
        (None, Some(addr)) => WirePayload::Address(addr),
        (None, None) => return Err("request object is missing `bytecode` or `address`".to_owned()),
    };
    Ok(WireRequest {
        id: id.unwrap_or_else(|| fallback_id.to_owned()),
        payload,
    })
}

/// Decodes a hex account address (`0x`-optional, exactly 40 hex digits)
/// into its 20 bytes.
///
/// # Errors
/// The typed per-line error message.
pub fn parse_address(text: &str) -> Result<phishinghook_data::Address, String> {
    let bytes = phishinghook_evm::keccak::from_hex(text.trim())
        .ok_or_else(|| "not a valid hex address".to_owned())?;
    let address: phishinghook_data::Address = bytes
        .try_into()
        .map_err(|_| "address must be exactly 20 bytes of hex".to_owned())?;
    Ok(address)
}

/// Renders an address as the `0x`-prefixed lowercase hex the wire speaks.
pub fn format_address(address: &phishinghook_data::Address) -> String {
    format!("0x{}", phishinghook_evm::keccak::to_hex(address))
}

/// Renders one v2 verdict line (without trailing newline) from scoring
/// results: the shared shape behind both the cold path and the cache-hit
/// path (`names` and `probas` must have equal length). `address` — set for
/// address-form requests — is echoed as an additive field right after the
/// id; bytecode-request responses are rendered byte-for-byte as before.
pub fn render_verdict_v2(
    out: &mut String,
    id: &str,
    address: Option<&phishinghook_data::Address>,
    proba: f64,
    model_version: &str,
    names: &[String],
    probas: &[f64],
) {
    debug_assert_eq!(names.len(), probas.len());
    out.push_str("{\"proto\":2,\"id\":");
    push_json_string(out, id);
    if let Some(address) = address {
        out.push_str(",\"address\":");
        push_json_string(out, &format_address(address));
    }
    let _ = write!(
        out,
        ",\"verdict\":\"{}\",\"proba\":{proba:.6},\"model_version\":",
        Verdict::from_proba(proba)
    );
    push_json_string(out, model_version);
    out.push_str(",\"per_model\":[");
    for (i, (name, p)) in names.iter().zip(probas).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(out, name);
        let _ = write!(out, ",\"proba\":{p:.6}}}");
    }
    out.push_str("]}");
}

/// Renders one v1 verdict line (without trailing newline).
pub fn render_verdict_v1(out: &mut String, proba: f64) {
    let _ = write!(out, "{}\t{proba:.6}", Verdict::from_proba(proba));
}

/// Renders one v2 error line (without trailing newline).
pub fn render_error_v2(out: &mut String, id: &str, message: &str) {
    out.push_str("{\"proto\":2,\"id\":");
    push_json_string(out, id);
    out.push_str(",\"error\":");
    push_json_string(out, message);
    out.push('}');
}

/// Renders one v1 error line (without trailing newline).
pub fn render_error_v1(out: &mut String, message: &str) {
    out.push_str("error\t");
    out.push_str(message);
}

/// The human-readable overload detail shared by both framings.
pub const OVERLOAD_DETAIL: &str = "server overloaded: the scheduler queue is full";

/// Renders the typed v2 overload response: an error object carrying
/// `"code":"overloaded"` so clients can tell *retry later* apart from
/// *malformed request*.
pub fn render_overload_v2(out: &mut String, id: &str) {
    out.push_str("{\"proto\":2,\"id\":");
    push_json_string(out, id);
    out.push_str(",\"error\":");
    push_json_string(out, OVERLOAD_DETAIL);
    out.push_str(",\"code\":\"overloaded\"}");
}

/// Renders the typed v1 overload response (`ERR\t…`, distinct from the
/// `error\t…` malformed-line response old clients already parse).
pub fn render_overload_v1(out: &mut String) {
    out.push_str("ERR\toverloaded: ");
    out.push_str(OVERLOAD_DETAIL);
}

/// The human-readable deadline-exceeded detail shared by both framings.
pub const TIMEOUT_DETAIL: &str = "deadline exceeded before the request was scored";

/// Renders the typed v2 timeout response: an error object carrying
/// `"code":"timeout"` — the request expired in the queue and was answered
/// without being scored (HTTP maps this to `504`).
pub fn render_timeout_v2(out: &mut String, id: &str) {
    out.push_str("{\"proto\":2,\"id\":");
    push_json_string(out, id);
    out.push_str(",\"error\":");
    push_json_string(out, TIMEOUT_DETAIL);
    out.push_str(",\"code\":\"timeout\"}");
}

/// Renders the typed v1 timeout response (`ERR\ttimeout: …`).
pub fn render_timeout_v1(out: &mut String) {
    out.push_str("ERR\ttimeout: ");
    out.push_str(TIMEOUT_DETAIL);
}

/// The human-readable worker-failure detail shared by both framings.
pub const INTERNAL_DETAIL: &str = "internal error: the scoring worker failed on this batch";

/// Renders the typed v2 internal-error response: an error object carrying
/// `"code":"internal"` — a worker panicked while scoring the batch holding
/// this request (HTTP maps this to `500`). The worker is respawned; the
/// request may be retried.
pub fn render_internal_v2(out: &mut String, id: &str) {
    out.push_str("{\"proto\":2,\"id\":");
    push_json_string(out, id);
    out.push_str(",\"error\":");
    push_json_string(out, INTERNAL_DETAIL);
    out.push_str(",\"code\":\"internal\"}");
}

/// Renders the typed v1 internal-error response (`ERR\tinternal: …`).
pub fn render_internal_v1(out: &mut String) {
    out.push_str("ERR\tinternal: ");
    out.push_str(INTERNAL_DETAIL);
}

/// Execution-engine facts the `stats` command reports alongside the
/// counters: whether tree models score through the quantized engine and the
/// widest per-feature bin count of the fitted quantized mirror.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineInfo {
    /// `true` when the quantized scoring path is enabled.
    pub quantize: bool,
    /// Widest per-feature bin count (`None` for non-tree models).
    pub quant_bins: Option<usize>,
}

/// Renders the v2 `stats` command response (without trailing newline).
pub fn render_stats_v2(out: &mut String, stats: &StatsSnapshot, engine: EngineInfo) {
    let s = &stats.scheduler;
    let _ = write!(
        out,
        "{{\"proto\":2,\"stats\":{{\"scheduler\":{{\"submitted\":{},\"scored\":{},\"errors\":{},\"overloads\":{},\"batches\":{},\"connections\":{},\"queue_depth\":{}}},\"cache\":",
        s.submitted, s.scored, s.errors, s.overloads, s.batches, s.connections, s.queue_depth
    );
    match &stats.cache {
        Some(c) => render_cache_stats_json(out, c),
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"engine\":{{\"quantize\":{},\"quant_bins\":",
        engine.quantize
    );
    match engine.quant_bins {
        Some(bins) => {
            let _ = write!(out, "{bins}");
        }
        None => out.push_str("null"),
    }
    out.push_str("}}}");
}

fn render_cache_stats_json(out: &mut String, c: &CacheStats) {
    let _ = write!(
        out,
        "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"insertions\":{},\"entries\":{},\"bytes\":{},\"capacity_bytes\":{},\"hit_rate\":{:.6}}}",
        c.hits, c.misses, c.evictions, c.insertions, c.entries, c.bytes, c.capacity_bytes,
        c.hit_rate()
    );
}

/// Renders the v1 `stats` command response: one `stats\tkey=value\t…` line.
/// Engine fields ride at the end so older clients that read a fixed prefix
/// keep parsing.
pub fn render_stats_v1(out: &mut String, stats: &StatsSnapshot, engine: EngineInfo) {
    let s = &stats.scheduler;
    let c = stats.cache.unwrap_or_default();
    let _ = write!(
        out,
        "stats\thits={}\tmisses={}\tevictions={}\tentries={}\tsubmitted={}\tscored={}\terrors={}\toverloads={}\tbatches={}\tquantize={}\tquant_bins={}",
        c.hits,
        c.misses,
        c.evictions,
        c.entries,
        s.submitted,
        s.scored,
        s.errors,
        s.overloads,
        s.batches,
        if engine.quantize { "on" } else { "off" },
        engine.quant_bins.unwrap_or(0),
    );
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One flat JSON value: its text plus whether it arrived as a quoted
/// string (scalars like `2`, `true`, `null` keep their literal spelling).
#[derive(Debug, Clone, PartialEq, Eq)]
struct JsonValue {
    text: String,
    quoted: bool,
}

/// Parses a flat JSON object whose values are strings or bare scalars —
/// `{"key":"value","proto":2, …}` — which is everything a v2 *request* may
/// carry. Nested objects/arrays are rejected with a descriptive message.
fn parse_flat_object(text: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = text.chars().peekable();
    let mut fields = Vec::new();

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("request is not a JSON object".to_owned());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            skip_ws(&mut chars);
            let value = parse_value(&mut chars).map_err(|e| format!("field `{key}`: {e}"))?;
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}` in request object".to_owned()),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after request object".to_owned());
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

/// Parses one flat JSON value: a string literal or a bare scalar (number,
/// `true`, `false`, `null`). Nested containers are rejected.
fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<JsonValue, String> {
    match chars.peek() {
        Some('"') => Ok(JsonValue {
            text: parse_string(chars)?,
            quoted: true,
        }),
        Some('{') | Some('[') => {
            Err("nested objects/arrays are not accepted in requests".to_owned())
        }
        Some(c) if c.is_ascii_digit() || matches!(c, '-' | 't' | 'f' | 'n') => {
            let mut text = String::new();
            while chars
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '+' | '.'))
            {
                text.push(chars.next().expect("peeked"));
            }
            Ok(JsonValue {
                text,
                quoted: false,
            })
        }
        _ => Err("expected a JSON string or scalar value".to_owned()),
    }
}

/// Parses one JSON string literal, cursor positioned at the opening quote.
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected a JSON string".to_owned());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_owned()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000C}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    // Surrogates and other invalid scalars degrade to U+FFFD
                    // rather than failing the whole request.
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                _ => return Err("unknown escape sequence".to_owned()),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerStats;
    use proptest::prelude::*;

    #[test]
    fn protocol_flag_parses() {
        assert_eq!(Protocol::parse("v1"), Some(Protocol::V1));
        assert_eq!(Protocol::parse("2"), Some(Protocol::V2));
        assert_eq!(Protocol::parse("V2"), Some(Protocol::V2));
        assert_eq!(Protocol::parse("v3"), None);
        assert_eq!(Protocol::default(), Protocol::V2);
    }

    fn hex_of(req: &WireRequest) -> &str {
        match &req.payload {
            WirePayload::Bytecode(hex) => hex,
            WirePayload::Address(_) => panic!("expected bytecode payload: {req:?}"),
        }
    }

    #[test]
    fn bare_hex_requests_get_the_fallback_id() {
        let req = parse_request_v2("  0x6080  ", "7").expect("parses");
        assert_eq!(req.id, "7");
        assert_eq!(hex_of(&req), "0x6080");
    }

    #[test]
    fn json_requests_carry_their_own_id() {
        let req = parse_request_v2(r#"{"id":"tx-1","bytecode":"0x60"}"#, "0").expect("parses");
        assert_eq!(req.id, "tx-1");
        assert_eq!(hex_of(&req), "0x60");
        // Field order and whitespace don't matter; id is optional.
        let req = parse_request_v2(r#" { "bytecode" : "60" } "#, "fallback").expect("parses");
        assert_eq!(req.id, "fallback");
        assert_eq!(hex_of(&req), "60");
        // JSON-RPC-style numeric ids are accepted and echoed as text.
        let req = parse_request_v2(r#"{"id":41,"bytecode":"60"}"#, "0").expect("parses");
        assert_eq!(req.id, "41");
    }

    #[test]
    fn address_requests_parse_and_decode() {
        let line = r#"{"id":"a-1","address":"0x0101010101010101010101010101010101010101"}"#;
        let req = parse_request_v2(line, "0").expect("parses");
        assert_eq!(req.id, "a-1");
        let WirePayload::Address(hex) = &req.payload else {
            panic!("expected address payload: {req:?}");
        };
        assert_eq!(parse_address(hex), Ok([1u8; 20]));
        assert_eq!(format_address(&[1u8; 20]), format!("0x{}", "01".repeat(20)));

        // Address validation is strict about length and hex-ness.
        assert!(parse_address("0x01").unwrap_err().contains("20 bytes"));
        assert!(parse_address("zz").unwrap_err().contains("hex"));

        // Exactly one of bytecode/address, as a string.
        assert!(
            parse_request_v2(r#"{"bytecode":"60","address":"0x01"}"#, "0")
                .unwrap_err()
                .contains("exactly one")
        );
        assert!(parse_request_v2(r#"{"address":42}"#, "0")
            .unwrap_err()
            .contains("must be a JSON string"));
    }

    #[test]
    fn request_proto_field_is_validated() {
        assert!(parse_request_v2(r#"{"proto":2,"bytecode":"60"}"#, "0").is_ok());
        assert!(parse_request_v2(r#"{"proto":"2","bytecode":"60"}"#, "0").is_ok());
        assert!(parse_request_v2(r#"{"proto":"v2","bytecode":"60"}"#, "0").is_ok());
        for bad in [
            r#"{"proto":1,"bytecode":"60"}"#,
            r#"{"proto":"v1","bytecode":"60"}"#,
            r#"{"proto":3,"bytecode":"60"}"#,
            r#"{"proto":null,"bytecode":"60"}"#,
        ] {
            let err = parse_request_v2(bad, "0").unwrap_err();
            assert!(err.contains("unsupported proto version"), "{bad}: {err}");
        }
    }

    #[test]
    fn malformed_json_requests_are_descriptive_errors() {
        assert!(parse_request_v2(r#"{"bytecode":}"#, "0").is_err());
        assert!(parse_request_v2(r#"{"id":"x"}"#, "0")
            .unwrap_err()
            .contains("missing `bytecode`"));
        assert!(parse_request_v2(r#"{"surprise":"y","bytecode":"60"}"#, "0")
            .unwrap_err()
            .contains("unknown request field"));
        assert!(parse_request_v2(r#"{"bytecode":42}"#, "0")
            .unwrap_err()
            .contains("must be a JSON string"));
        assert!(parse_request_v2(r#"{"bytecode":{"hex":"60"}}"#, "0")
            .unwrap_err()
            .contains("nested"));
        assert!(parse_request_v2(r#"{"bytecode":["60"]}"#, "0")
            .unwrap_err()
            .contains("nested"));
        assert!(parse_request_v2(r#"{"bytecode":"60"} extra"#, "0")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_request_v2(r#"{"bytecode":"60""#, "0").is_err());
        assert!(parse_request_v2("{", "0").is_err());
        assert!(parse_request_v2(r#"{"a"}"#, "0").is_err());
    }

    #[test]
    fn oversized_lines_are_refused_before_parsing() {
        let line = "6".repeat(MAX_LINE_BYTES + 2);
        let err = parse_request_v2(&line, "0").unwrap_err();
        assert!(err.contains("byte limit"), "{err}");
        assert!(check_line_len(&line).is_err());
        assert!(check_line_len(&"6".repeat(MAX_LINE_BYTES)).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let req = parse_request_v2(r#"{"id":"a\"b\\c\ndA","bytecode":"60"}"#, "0").expect("parses");
        assert_eq!(req.id, "a\"b\\c\ndA");
        let mut line = String::new();
        render_error_v2(&mut line, &req.id, "nope");
        assert_eq!(line, r#"{"proto":2,"id":"a\"b\\c\ndA","error":"nope"}"#);
    }

    #[test]
    fn verdict_rendering_is_stable() {
        let mut line = String::new();
        render_verdict_v2(
            &mut line,
            "tx-9",
            None,
            0.75,
            "hsc-ensemble/v1",
            &["Random Forest".to_owned(), "LightGBM".to_owned()],
            &[0.8, 0.7],
        );
        assert_eq!(
            line,
            "{\"proto\":2,\"id\":\"tx-9\",\"verdict\":\"phishing\",\"proba\":0.750000,\
             \"model_version\":\"hsc-ensemble/v1\",\"per_model\":[\
             {\"name\":\"Random Forest\",\"proba\":0.800000},\
             {\"name\":\"LightGBM\",\"proba\":0.700000}]}"
        );
        assert!(line.starts_with("{\"proto\":2,"));
        let mut v1 = String::new();
        render_verdict_v1(&mut v1, 0.25);
        assert_eq!(v1, "benign\t0.250000");
    }

    #[test]
    fn address_echo_is_additive_and_after_the_id() {
        // Same scoring results, with and without the echoed address: the
        // address form only *inserts* one field right after the id —
        // bytecode-request framing is untouched.
        let names = ["Random Forest".to_owned()];
        let mut bare = String::new();
        render_verdict_v2(
            &mut bare,
            "tx-9",
            None,
            0.75,
            "hsc-detector/v1",
            &names,
            &[0.75],
        );
        let mut echoed = String::new();
        render_verdict_v2(
            &mut echoed,
            "tx-9",
            Some(&[0xAB; 20]),
            0.75,
            "hsc-detector/v1",
            &names,
            &[0.75],
        );
        let inserted = format!(",\"address\":\"0x{}\"", "ab".repeat(20));
        let expected = bare.replacen("\"id\":\"tx-9\"", &format!("\"id\":\"tx-9\"{inserted}"), 1);
        assert_eq!(echoed, expected);
    }

    #[test]
    fn overload_rendering_is_typed_in_both_framings() {
        let mut v2 = String::new();
        render_overload_v2(&mut v2, "9");
        assert!(
            v2.starts_with("{\"proto\":2,\"id\":\"9\",\"error\":"),
            "{v2}"
        );
        assert!(v2.ends_with(",\"code\":\"overloaded\"}"), "{v2}");
        let mut v1 = String::new();
        render_overload_v1(&mut v1);
        assert!(v1.starts_with("ERR\toverloaded: "), "{v1}");
    }

    #[test]
    fn timeout_and_internal_rendering_is_typed_in_both_framings() {
        let mut v2 = String::new();
        render_timeout_v2(&mut v2, "late-1");
        assert!(
            v2.starts_with("{\"proto\":2,\"id\":\"late-1\",\"error\":"),
            "{v2}"
        );
        assert!(v2.ends_with(",\"code\":\"timeout\"}"), "{v2}");
        let mut v1 = String::new();
        render_timeout_v1(&mut v1);
        assert!(v1.starts_with("ERR\ttimeout: "), "{v1}");

        let mut v2 = String::new();
        render_internal_v2(&mut v2, "boom");
        assert!(v2.ends_with(",\"code\":\"internal\"}"), "{v2}");
        assert!(v2.contains(INTERNAL_DETAIL), "{v2}");
        let mut v1 = String::new();
        render_internal_v1(&mut v1);
        assert!(v1.starts_with("ERR\tinternal: "), "{v1}");
    }

    #[test]
    fn stats_rendering_covers_both_framings() {
        let snapshot = StatsSnapshot {
            scheduler: SchedulerStats {
                submitted: 10,
                scored: 8,
                errors: 1,
                overloads: 1,
                batches: 3,
                connections: 2,
                queue_depth: 0,
            },
            cache: Some(CacheStats {
                hits: 4,
                misses: 6,
                evictions: 1,
                insertions: 6,
                entries: 5,
                bytes: 680,
                capacity_bytes: 1024,
            }),
        };
        let engine = EngineInfo {
            quantize: true,
            quant_bins: Some(256),
        };
        let mut v2 = String::new();
        render_stats_v2(&mut v2, &snapshot, engine);
        assert!(
            v2.starts_with("{\"proto\":2,\"stats\":{\"scheduler\":{"),
            "{v2}"
        );
        assert!(v2.contains("\"submitted\":10"), "{v2}");
        assert!(v2.contains("\"cache\":{\"hits\":4,\"misses\":6"), "{v2}");
        assert!(v2.contains("\"hit_rate\":0.400000"), "{v2}");
        assert!(
            v2.ends_with(",\"engine\":{\"quantize\":true,\"quant_bins\":256}}}"),
            "{v2}"
        );
        let mut v1 = String::new();
        render_stats_v1(&mut v1, &snapshot, engine);
        assert!(v1.starts_with("stats\thits=4\tmisses=6"), "{v1}");
        assert!(v1.contains("scored=8"), "{v1}");
        assert!(v1.ends_with("\tquantize=on\tquant_bins=256"), "{v1}");

        // Cache disabled: v2 renders null, v1 renders zeros. A model with
        // no quantized mirror reports null/0 bins.
        let disabled = StatsSnapshot {
            cache: None,
            ..snapshot
        };
        let no_mirror = EngineInfo {
            quantize: false,
            quant_bins: None,
        };
        let mut v2 = String::new();
        render_stats_v2(&mut v2, &disabled, no_mirror);
        assert!(v2.contains("\"cache\":null"), "{v2}");
        assert!(
            v2.ends_with(",\"engine\":{\"quantize\":false,\"quant_bins\":null}}}"),
            "{v2}"
        );
        let mut v1 = String::new();
        render_stats_v1(&mut v1, &disabled, no_mirror);
        assert!(v1.contains("hits=0"), "{v1}");
        assert!(v1.ends_with("\tquantize=off\tquant_bins=0"), "{v1}");
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic_the_v2_parser(
            bytes in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            // The decoder fronts a public socket: any byte soup that
            // happens to be UTF-8 must come back as a typed error or a
            // request — never a panic.
            if let Ok(line) = std::str::from_utf8(&bytes) {
                let _ = parse_request_v2(line, "0");
            }
        }

        #[test]
        fn mutated_valid_v2_requests_never_panic(pos in 0usize..64, byte in any::<u8>()) {
            // Single-byte corruption of a well-formed request: the parser
            // either still accepts it or rejects it typed.
            let mut line = br#"{"id":"probe","bytecode":"0x6001600255"}"#.to_vec();
            let i = pos % line.len();
            line[i] = byte;
            if let Ok(text) = std::str::from_utf8(&line) {
                if let Err(detail) = parse_request_v2(text, "7") {
                    prop_assert!(!detail.is_empty());
                }
            }
        }
    }
}
