//! std-only HTTP/1.1 framing: request parsing and response writing for
//! the gateway in [`router`](crate::router).
//!
//! This is deliberately a *small* HTTP/1.1, hardened rather than
//! featureful — the gateway fronts one JSON-in/JSON-out prediction
//! endpoint plus two GET probes, so the parser supports exactly what
//! those need and rejects the rest with typed statuses:
//!
//! * **Framing**: `Content-Length` bodies only. `Transfer-Encoding`
//!   (chunked included) answers `501`; a `POST` without `Content-Length`
//!   answers `411`.
//! * **Keep-alive and pipelining**: HTTP/1.1 defaults to keep-alive
//!   (HTTP/1.0 to close), `Connection: close` is honored, and because
//!   requests are read strictly in sequence off one buffered reader,
//!   pipelined requests parse and answer in order for free.
//! * **Bounds everywhere**: request line and each header line are capped
//!   at [`MAX_HEADER_LINE`] bytes (`431` beyond), header count at
//!   [`MAX_HEADER_COUNT`], and declared bodies at [`MAX_BODY_BYTES`]
//!   (`413` beyond) — the same 1 MiB cap as a JSONL request line, so no
//!   front-end can smuggle a larger payload than the other.
//! * **`Expect: 100-continue` is not implemented**: any `Expect` header
//!   answers `417` up front instead of stalling the client. (`curl`
//!   sends it for large POSTs; pass `-H 'Expect:'` to suppress.)
//!
//! Malformed input is never fatal to the process: every parse failure is
//! a [`RequestOutcome::Reject`] the session answers and then closes on
//! (framing after a parse error is unknowable), and an abrupt disconnect
//! mid-request surfaces as [`RequestOutcome::Disconnected`].

use std::io::{self, BufRead, Write};

/// Byte cap for the request line and each header line (`431` beyond).
pub const MAX_HEADER_LINE: usize = 8192;
/// Maximum header count per request (`431` beyond).
pub const MAX_HEADER_COUNT: usize = 100;
/// Byte cap for a request body — the same 1 MiB as a JSONL request line.
pub const MAX_BODY_BYTES: usize = crate::proto::MAX_LINE_BYTES;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target verbatim (`/predict`, `/metrics?x=1`, …).
    pub target: String,
    /// Whether the connection stays open after this exchange.
    pub keep_alive: bool,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// What one attempt to read a request produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// A complete, well-formed request.
    Request(HttpRequest),
    /// Clean EOF at a request boundary (client done; not an error).
    Eof,
    /// The peer vanished mid-request (EOF inside the head or body).
    Disconnected,
    /// A malformed request: answer with `status` and close the
    /// connection (framing after a parse error is unknowable).
    Reject {
        /// The status to answer with (`400`, `411`, `413`, `417`, `431`,
        /// `501`, `505`).
        status: u16,
        /// Human-readable reason, echoed in the JSON error body.
        detail: String,
    },
}

fn reject(status: u16, detail: impl Into<String>) -> RequestOutcome {
    RequestOutcome::Reject {
        status,
        detail: detail.into(),
    }
}

/// Reads one CRLF (or bare-LF) terminated line, capped at
/// [`MAX_HEADER_LINE`] bytes. `Ok(None)` on EOF before any byte;
/// `Err` with `InvalidData` marks an overlong line.
fn read_head_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut raw = Vec::with_capacity(64);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte)? {
            0 => {
                if raw.is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if raw.last() == Some(&b'\r') {
                        raw.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&raw).into_owned()));
                }
                if raw.len() >= MAX_HEADER_LINE {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
                }
                raw.push(byte[0]);
            }
        }
    }
}

/// Reads and validates one request off `reader` (see the module docs for
/// the supported subset and the rejection statuses).
///
/// # Errors
/// Propagates only genuine transport errors; EOFs and malformed input are
/// encoded in the [`RequestOutcome`].
pub fn read_request(reader: &mut impl BufRead) -> io::Result<RequestOutcome> {
    // Request line.
    let line = match read_head_line(reader) {
        Ok(None) => return Ok(RequestOutcome::Eof),
        Ok(Some(line)) => line,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            return Ok(RequestOutcome::Disconnected)
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Ok(reject(431, "request line too long"));
        }
        Err(e) => return Err(e),
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Ok(reject(400, format!("malformed request line: {line:?}"))),
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Ok(reject(
                505,
                format!("unsupported protocol version {version:?}"),
            ))
        }
    };

    // Headers.
    let mut content_length: Option<usize> = None;
    let mut keep_alive = keep_alive_default;
    let mut headers = 0usize;
    loop {
        let line = match read_head_line(reader) {
            Ok(None) => return Ok(RequestOutcome::Disconnected),
            Ok(Some(line)) => line,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Ok(RequestOutcome::Disconnected)
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(reject(431, "header line too long"));
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADER_COUNT {
            return Ok(reject(431, format!("more than {MAX_HEADER_COUNT} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(reject(400, format!("malformed header line: {line:?}")));
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if content_length.is_none() || content_length == Some(n) => {
                    content_length = Some(n);
                }
                _ => return Ok(reject(400, format!("invalid Content-Length: {value:?}"))),
            },
            "transfer-encoding" => {
                return Ok(reject(
                    501,
                    "transfer encodings (chunked included) not supported",
                ));
            }
            "expect" => {
                return Ok(reject(
                    417,
                    "Expect (including 100-continue) not supported; send the body directly",
                ));
            }
            "connection" => {
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => keep_alive = false,
                        "keep-alive" => keep_alive = true,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }

    // Body.
    let needs_body = matches!(method, "POST" | "PUT" | "PATCH");
    let length = match content_length {
        Some(n) if n > MAX_BODY_BYTES => {
            return Ok(reject(
                413,
                format!("body of {n} bytes exceeds the {MAX_BODY_BYTES} byte limit"),
            ));
        }
        Some(n) => n,
        None if needs_body => {
            return Ok(reject(411, format!("{method} requires Content-Length")));
        }
        None => 0,
    };
    let mut body = vec![0u8; length];
    if length > 0 {
        match reader.read_exact(&mut body) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Ok(RequestOutcome::Disconnected);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(RequestOutcome::Request(HttpRequest {
        method: method.to_owned(),
        target: target.to_owned(),
        keep_alive,
        body,
    }))
}

/// The standard reason phrase for the statuses this gateway emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        417 => "Expectation Failed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Everything one response needs besides its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHead {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Emits `Retry-After: <secs>` when set (the overload answer).
    pub retry_after: Option<u32>,
    /// `Connection: keep-alive` vs `close`.
    pub keep_alive: bool,
}

/// Writes one complete `Content-Length`-framed response.
///
/// # Errors
/// Propagates transport write errors.
pub fn write_response(out: &mut impl Write, head: ResponseHead, body: &[u8]) -> io::Result<()> {
    let mut text = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        head.status,
        reason_phrase(head.status),
        head.content_type,
        body.len(),
    );
    if let Some(secs) = head.retry_after {
        text.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    text.push_str(if head.keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    out.write_all(text.as_bytes())?;
    out.write_all(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> RequestOutcome {
        read_request(&mut BufReader::new(raw)).expect("no transport error")
    }

    #[test]
    fn get_and_post_parse_with_keep_alive_defaults() {
        let out = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let RequestOutcome::Request(req) = out else {
            panic!("{out:?}");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());

        let out = parse(b"POST /predict HTTP/1.0\r\nContent-Length: 4\r\n\r\n0x60");
        let RequestOutcome::Request(req) = out else {
            panic!("{out:?}");
        };
        assert_eq!(req.body, b"0x60");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");

        let out = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        let RequestOutcome::Request(req) = out else {
            panic!("{out:?}");
        };
        assert!(!req.keep_alive);
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw: &[u8] =
            b"POST /predict HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw);
        let RequestOutcome::Request(first) = read_request(&mut reader).expect("io") else {
            panic!("first");
        };
        assert_eq!(first.body, b"hi");
        let RequestOutcome::Request(second) = read_request(&mut reader).expect("io") else {
            panic!("second");
        };
        assert_eq!(second.target, "/metrics");
        assert_eq!(read_request(&mut reader).expect("io"), RequestOutcome::Eof);
    }

    #[test]
    fn malformed_request_lines_reject_400() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            b"GET/predict HTTP/1.1\r\n\r\n",
            b"GET predict HTTP/1.1\r\n\r\n", // target must start with /
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            match parse(raw) {
                RequestOutcome::Reject { status: 400, .. } => {}
                other => panic!("{raw:?} -> {other:?}"),
            }
        }
        match parse(b"GET /x SPDY/3\r\n\r\n") {
            RequestOutcome::Reject { status: 505, .. } => {}
            other => panic!("{other:?}"),
        }
        match parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n") {
            RequestOutcome::Reject { status: 400, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn content_length_edge_cases() {
        // Missing on POST.
        match parse(b"POST /predict HTTP/1.1\r\n\r\n") {
            RequestOutcome::Reject { status: 411, .. } => {}
            other => panic!("{other:?}"),
        }
        // Unparsable.
        match parse(b"POST /p HTTP/1.1\r\nContent-Length: banana\r\n\r\n") {
            RequestOutcome::Reject { status: 400, .. } => {}
            other => panic!("{other:?}"),
        }
        // Conflicting duplicates.
        match parse(b"POST /p HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n") {
            RequestOutcome::Reject { status: 400, .. } => {}
            other => panic!("{other:?}"),
        }
        // Over the cap: rejected from the header alone, no body read.
        let huge = format!(
            "POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(huge.as_bytes()) {
            RequestOutcome::Reject {
                status: 413,
                detail,
            } => {
                assert!(detail.contains("byte limit"), "{detail}");
            }
            other => panic!("{other:?}"),
        }
        // Exactly at the cap is fine.
        let mut raw =
            format!("POST /p HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES}\r\n\r\n").into_bytes();
        raw.extend(vec![b'a'; MAX_BODY_BYTES]);
        match parse(&raw) {
            RequestOutcome::Request(req) => assert_eq!(req.body.len(), MAX_BODY_BYTES),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsupported_framings_reject_typed() {
        match parse(b"POST /p HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") {
            RequestOutcome::Reject { status: 501, .. } => {}
            other => panic!("{other:?}"),
        }
        match parse(b"POST /p HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi") {
            RequestOutcome::Reject { status: 417, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_head_lines_reject_431() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEADER_LINE));
        match parse(long_target.as_bytes()) {
            RequestOutcome::Reject { status: 431, .. } => {}
            other => panic!("{other:?}"),
        }
        let long_header = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE)
        );
        match parse(long_header.as_bytes()) {
            RequestOutcome::Reject { status: 431, .. } => {}
            other => panic!("{other:?}"),
        }
        let many_headers = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            "X-N: 1\r\n".repeat(MAX_HEADER_COUNT + 1)
        );
        match parse(many_headers.as_bytes()) {
            RequestOutcome::Reject { status: 431, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abrupt_disconnects_are_typed_not_errors() {
        // Mid request line, mid headers, mid body: all Disconnected.
        for raw in [
            &b"GET /heal"[..],
            b"GET /x HTTP/1.1\r\nHost: x",
            b"GET /x HTTP/1.1\r\nHost: x\r\n",
            b"POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nonly5",
        ] {
            assert_eq!(parse(raw), RequestOutcome::Disconnected, "{raw:?}");
        }
        // A clean EOF at the boundary is Eof, not Disconnected.
        assert_eq!(parse(b""), RequestOutcome::Eof);
    }

    #[test]
    fn responses_are_content_length_framed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            ResponseHead {
                status: 503,
                content_type: "application/json",
                retry_after: Some(1),
                keep_alive: false,
            },
            b"{\"error\":\"overloaded\"}",
        )
        .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 22\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(
            text.contains("Connection: close\r\n\r\n{\"error\""),
            "{text}"
        );

        let mut ok = Vec::new();
        write_response(
            &mut ok,
            ResponseHead {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                retry_after: None,
                keep_alive: true,
            },
            b"x 1\n",
        )
        .expect("write");
        let text = String::from_utf8(ok).expect("utf8");
        assert!(
            text.contains("Connection: keep-alive\r\n\r\nx 1\n"),
            "{text}"
        );
        assert!(!text.contains("Retry-After"), "{text}");
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic_the_parser(
            bytes in proptest::collection::vec(any::<u8>(), 0..768),
        ) {
            // Whatever a client throws at the socket, the parser answers
            // with an outcome or an I/O error — never a panic, never an
            // unbounded loop (the cap mirrors a keep-alive session).
            let mut reader = BufReader::new(&bytes[..]);
            for _ in 0..4 {
                match read_request(&mut reader) {
                    Ok(RequestOutcome::Request(_)) => {}
                    _ => break,
                }
            }
        }

        #[test]
        fn truncated_requests_never_panic(cut in 0usize..64) {
            // A client that disconnects mid-request (any prefix of a valid
            // exchange) must yield Eof/Disconnected/Reject — not a panic.
            let raw: &[u8] = b"POST /predict HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
            let cut = cut % (raw.len() + 1);
            let mut reader = BufReader::new(&raw[..cut]);
            let _ = read_request(&mut reader);
        }
    }
}
