//! The typed serving configuration: one validated [`ServeConfig`] feeds
//! every front-end (stdin, TCP JSONL, HTTP).
//!
//! The old surface grew a knob at a time — [`SchedulerOptions`] here, a
//! `TcpLimits` there, a protocol flag on the side — and every caller
//! (CLI, bench, watch, tests) assembled them by hand with its own
//! defaults. [`ServeConfig`] centralises that: construct through
//! [`ServeConfig::builder`], which validates sizes (`batch`, `workers`,
//! `queue_depth` must be ≥ 1) and cross-field coherence (`max_conns` /
//! `accept` without a listener is a configuration bug, not a silent
//! no-op), and hand the result to [`run`](crate::serve::run). The CLI is
//! a thin parser over this builder; embedding callers skip the strings
//! entirely.
//!
//! ```
//! use phishinghook_serve::{Protocol, ServeConfig};
//!
//! let config = ServeConfig::builder()
//!     .batch(32)
//!     .workers(2)
//!     .tcp("127.0.0.1:0")
//!     .http("127.0.0.1:0")
//!     .max_conns(64)
//!     .build()
//!     .expect("valid config");
//! assert_eq!(config.scheduler().batch, 32);
//! assert_eq!(config.proto(), Protocol::V2);
//!
//! // Limits without any listener are rejected, not ignored:
//! assert!(ServeConfig::builder().max_conns(8).build().is_err());
//! ```

use crate::fault::FaultConfig;
use crate::proto::Protocol;
use crate::scheduler::SchedulerOptions;
use crate::serve::TcpLimits;
use phishinghook_data::RetryPolicy;

/// Why a [`ServeConfigBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A size knob that must be at least 1 was set to 0.
    Zero(&'static str),
    /// `max_conns` / `accept` was set but neither `tcp` nor `http` is
    /// bound — connection limits without a listener guard nothing.
    LimitsWithoutListener(&'static str),
    /// The brownout ladder is inverted: `cache_first_pct` must not
    /// exceed `cache_only_pct`, or the tiers would engage out of order.
    BrownoutOrder {
        /// The configured cache-first threshold (percent of queue depth).
        cache_first_pct: u32,
        /// The configured cache-only threshold (percent of queue depth).
        cache_only_pct: u32,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Zero(field) => write!(f, "`{field}` must be at least 1"),
            ConfigError::LimitsWithoutListener(field) => {
                write!(f, "`{field}` requires a tcp or http listener")
            }
            ConfigError::BrownoutOrder {
                cache_first_pct,
                cache_only_pct,
            } => write!(
                f,
                "`cache_first_pct` ({cache_first_pct}) must not exceed \
                 `cache_only_pct` ({cache_only_pct})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A validated serving configuration (see the module docs). Construct
/// through [`ServeConfig::builder`]; read through the accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    scheduler: SchedulerOptions,
    proto: Protocol,
    tcp: Option<String>,
    http: Option<String>,
    max_conns: Option<usize>,
    accept: Option<usize>,
}

impl Default for ServeConfig {
    /// The validated defaults: stdin/stdout, v2 JSONL, default scheduler
    /// tuning, no listeners, no limits.
    fn default() -> Self {
        ServeConfig::builder().build().expect("defaults are valid")
    }
}

impl ServeConfig {
    /// A builder seeded with the validated defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// Scheduler tuning (batching, workers, queue, cache, window).
    pub fn scheduler(&self) -> &SchedulerOptions {
        &self.scheduler
    }

    /// Wire framing for the stdin and TCP JSONL front-ends.
    pub fn proto(&self) -> Protocol {
        self.proto
    }

    /// JSONL listener bind address, when TCP serving is on.
    pub fn tcp(&self) -> Option<&str> {
        self.tcp.as_deref()
    }

    /// HTTP gateway bind address, when HTTP serving is on.
    pub fn http(&self) -> Option<&str> {
        self.http.as_deref()
    }

    /// Connection-acceptance limits, in the shape the listener loops use.
    /// `accept` bounds *each* listener's accepted-connection total.
    pub fn limits(&self) -> TcpLimits {
        TcpLimits {
            max_conns: self.max_conns,
            accept_total: self.accept,
        }
    }
}

/// Builds a [`ServeConfig`]; every setter is chainable and
/// [`build`](ServeConfigBuilder::build) validates the whole shape at once.
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    scheduler: SchedulerOptions,
    proto: Protocol,
    tcp: Option<String>,
    http: Option<String>,
    max_conns: Option<usize>,
    accept: Option<usize>,
}

impl ServeConfigBuilder {
    /// Maximum rows per scored batch (≥ 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.scheduler.batch = batch;
        self
    }

    /// Scoring worker threads per shard (≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.scheduler.workers = workers;
        self
    }

    /// Independent serving lanes (≥ 1); each shard owns its own queue
    /// slice, worker(s) and verdict-cache slice, routed by keccak digest
    /// (see [`SchedulerOptions::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.scheduler.shards = shards;
        self
    }

    /// Pin shard workers to CPU cores, round-robin (best-effort on Linux,
    /// a no-op elsewhere).
    pub fn pin_cores(mut self, pin_cores: bool) -> Self {
        self.scheduler.pin_cores = pin_cores;
        self
    }

    /// Bounded submit-queue capacity (≥ 1) — the admission-control knob.
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.scheduler.queue_depth = queue_depth;
        self
    }

    /// Partial-batch linger before a worker flushes, in microseconds.
    pub fn linger_micros(mut self, linger_micros: u64) -> Self {
        self.scheduler.linger_micros = linger_micros;
        self
    }

    /// Verdict-cache byte budget; `0` disables the cache.
    pub fn cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.scheduler.cache_bytes = cache_bytes;
        self
    }

    /// Per-connection flow-control window (≥ 1); see
    /// [`SchedulerOptions::max_outstanding`].
    pub fn max_outstanding(mut self, max_outstanding: usize) -> Self {
        self.scheduler.max_outstanding = max_outstanding;
        self
    }

    /// Per-request deadline in milliseconds; `0` (the default) disables
    /// deadline enforcement. Expired requests are answered with a typed
    /// timeout instead of being scored.
    pub fn deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.scheduler.deadline_ms = deadline_ms;
        self
    }

    /// Drain budget in milliseconds once shutdown begins; `0` (the
    /// default) drains without a deadline. Queued requests past the
    /// budget are answered as typed timeouts.
    pub fn drain_ms(mut self, drain_ms: u64) -> Self {
        self.scheduler.drain_ms = drain_ms;
        self
    }

    /// Queue-fill percentage at which brownout drops shedding traffic to
    /// cheapest-member scoring (see
    /// [`SchedulerOptions::cache_first_pct`]).
    pub fn cache_first_pct(mut self, cache_first_pct: u32) -> Self {
        self.scheduler.cache_first_pct = cache_first_pct;
        self
    }

    /// Queue-fill percentage at which brownout answers from cache only
    /// (see [`SchedulerOptions::cache_only_pct`]).
    pub fn cache_only_pct(mut self, cache_only_pct: u32) -> Self {
        self.scheduler.cache_only_pct = cache_only_pct;
        self
    }

    /// Retry policy for chain-backed address resolution.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.scheduler.retry = retry;
        self
    }

    /// Installs a deterministic fault-injection plan (tests, chaos runs).
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.scheduler.fault = Some(fault);
        self
    }

    /// Wire framing for the stdin and TCP JSONL front-ends.
    pub fn proto(mut self, proto: Protocol) -> Self {
        self.proto = proto;
        self
    }

    /// Binds the JSONL TCP listener at `addr` (e.g. `127.0.0.1:9000`).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    /// Binds the HTTP gateway at `addr` (e.g. `127.0.0.1:8080`).
    pub fn http(mut self, addr: impl Into<String>) -> Self {
        self.http = Some(addr.into());
        self
    }

    /// Maximum concurrent connections per listener; surplus accepts are
    /// refused with a typed overload (JSONL) or `503` (HTTP).
    pub fn max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = Some(max_conns);
        self
    }

    /// Total connections each listener accepts before draining and
    /// returning (test/CI runs); unset = serve forever.
    pub fn accept(mut self, accept: usize) -> Self {
        self.accept = Some(accept);
        self
    }

    /// Validates the whole configuration and returns it.
    ///
    /// # Errors
    /// [`ConfigError::Zero`] for a size knob set to 0;
    /// [`ConfigError::LimitsWithoutListener`] for connection limits with
    /// neither `tcp` nor `http` bound.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        for (field, value) in [
            ("batch", self.scheduler.batch),
            ("workers", self.scheduler.workers),
            ("shards", self.scheduler.shards),
            ("queue_depth", self.scheduler.queue_depth),
            ("max_outstanding", self.scheduler.max_outstanding),
        ] {
            if value == 0 {
                return Err(ConfigError::Zero(field));
            }
        }
        if self.scheduler.retry.max_attempts == 0 {
            return Err(ConfigError::Zero("retry.max_attempts"));
        }
        if self.scheduler.cache_first_pct > self.scheduler.cache_only_pct {
            return Err(ConfigError::BrownoutOrder {
                cache_first_pct: self.scheduler.cache_first_pct,
                cache_only_pct: self.scheduler.cache_only_pct,
            });
        }
        if self.tcp.is_none() && self.http.is_none() {
            if self.max_conns.is_some() {
                return Err(ConfigError::LimitsWithoutListener("max_conns"));
            }
            if self.accept.is_some() {
                return Err(ConfigError::LimitsWithoutListener("accept"));
            }
        }
        Ok(ServeConfig {
            scheduler: self.scheduler,
            proto: self.proto,
            tcp: self.tcp,
            http: self.http,
            max_conns: self.max_conns,
            accept: self.accept,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_and_match_scheduler_defaults() {
        let config = ServeConfig::default();
        assert_eq!(*config.scheduler(), SchedulerOptions::default());
        assert_eq!(config.proto(), Protocol::V2);
        assert_eq!(config.tcp(), None);
        assert_eq!(config.http(), None);
        let limits = config.limits();
        assert_eq!(limits.max_conns, None);
        assert_eq!(limits.accept_total, None);
    }

    #[test]
    fn builder_threads_every_knob_through() {
        let config = ServeConfig::builder()
            .batch(8)
            .workers(3)
            .shards(4)
            .pin_cores(true)
            .queue_depth(17)
            .linger_micros(250)
            .cache_bytes(0)
            .max_outstanding(5)
            .proto(Protocol::V1)
            .tcp("127.0.0.1:9000")
            .http("127.0.0.1:8080")
            .max_conns(9)
            .accept(2)
            .build()
            .expect("valid");
        assert_eq!(config.scheduler().batch, 8);
        assert_eq!(config.scheduler().workers, 3);
        assert_eq!(config.scheduler().shards, 4);
        assert!(config.scheduler().pin_cores);
        assert_eq!(config.scheduler().queue_depth, 17);
        assert_eq!(config.scheduler().linger_micros, 250);
        assert_eq!(config.scheduler().cache_bytes, 0);
        assert_eq!(config.scheduler().max_outstanding, 5);
        assert_eq!(config.proto(), Protocol::V1);
        assert_eq!(config.tcp(), Some("127.0.0.1:9000"));
        assert_eq!(config.http(), Some("127.0.0.1:8080"));
        assert_eq!(config.limits().max_conns, Some(9));
        assert_eq!(config.limits().accept_total, Some(2));
    }

    #[test]
    fn zero_sizes_are_rejected_by_field_name() {
        for (field, builder) in [
            ("batch", ServeConfig::builder().batch(0)),
            ("workers", ServeConfig::builder().workers(0)),
            ("shards", ServeConfig::builder().shards(0)),
            ("queue_depth", ServeConfig::builder().queue_depth(0)),
            ("max_outstanding", ServeConfig::builder().max_outstanding(0)),
        ] {
            let err = builder.build().expect_err(field);
            assert_eq!(err, ConfigError::Zero(field));
            assert!(err.to_string().contains(field), "{err}");
        }
        // cache_bytes = 0 is meaningful (cache off), not an error.
        assert!(ServeConfig::builder().cache_bytes(0).build().is_ok());
    }

    #[test]
    fn robustness_knobs_thread_through_and_validate() {
        let retry = RetryPolicy {
            max_attempts: 5,
            base_micros: 10,
            cap_micros: 100,
            seed: 42,
        };
        let fault = FaultConfig {
            worker_panic_every: 3,
            ..FaultConfig::default()
        };
        let config = ServeConfig::builder()
            .deadline_ms(250)
            .drain_ms(1_000)
            .cache_first_pct(40)
            .cache_only_pct(80)
            .retry(retry.clone())
            .fault(fault)
            .build()
            .expect("valid");
        assert_eq!(config.scheduler().deadline_ms, 250);
        assert_eq!(config.scheduler().drain_ms, 1_000);
        assert_eq!(config.scheduler().cache_first_pct, 40);
        assert_eq!(config.scheduler().cache_only_pct, 80);
        assert_eq!(config.scheduler().retry, retry);
        assert_eq!(config.scheduler().fault, Some(fault));

        // An inverted brownout ladder is a configuration bug.
        let err = ServeConfig::builder()
            .cache_first_pct(90)
            .cache_only_pct(60)
            .build()
            .expect_err("inverted ladder");
        assert_eq!(
            err,
            ConfigError::BrownoutOrder {
                cache_first_pct: 90,
                cache_only_pct: 60
            }
        );
        assert!(err.to_string().contains("cache_first_pct"), "{err}");

        // A retry policy that never attempts anything is a zero knob.
        let err = ServeConfig::builder()
            .retry(RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            })
            .build()
            .expect_err("zero attempts");
        assert_eq!(err, ConfigError::Zero("retry.max_attempts"));
    }

    #[test]
    fn limits_require_a_listener() {
        let err = ServeConfig::builder()
            .max_conns(4)
            .build()
            .expect_err("no listener");
        assert_eq!(err, ConfigError::LimitsWithoutListener("max_conns"));
        let err = ServeConfig::builder()
            .accept(1)
            .build()
            .expect_err("no listener");
        assert_eq!(err, ConfigError::LimitsWithoutListener("accept"));
        assert!(err.to_string().contains("listener"), "{err}");
        // Either listener satisfies the requirement.
        assert!(ServeConfig::builder()
            .tcp("127.0.0.1:0")
            .max_conns(4)
            .build()
            .is_ok());
        assert!(ServeConfig::builder()
            .http("127.0.0.1:0")
            .accept(1)
            .build()
            .is_ok());
    }
}
